"""Tests for the extended builtin function library."""

import pytest

from repro.interp import run_php


def out(source):
    return run_php("<?php " + source).response_body()


class TestArrayBuiltins:
    def test_array_push(self):
        assert out("$a = array('x'); array_push($a, 'y', 'z'); echo implode(',', $a);") == "x,y,z"

    def test_array_push_returns_count(self):
        assert out("$a = array(); echo array_push($a, 'x');") == "1"

    def test_array_pop(self):
        assert out("$a = array('x', 'y'); echo array_pop($a); echo count($a);") == "y1"

    def test_array_pop_empty(self):
        assert out("$a = array(); echo array_pop($a) === null ? 'n' : 'v';") == "n"

    def test_array_shift(self):
        assert out("$a = array('x', 'y'); echo array_shift($a); echo count($a);") == "x1"

    def test_array_slice(self):
        assert out("$a = array(1, 2, 3, 4); echo implode(',', array_slice($a, 1, 2));") == "2,3"

    def test_array_slice_to_end(self):
        assert out("$a = array(1, 2, 3); echo implode(',', array_slice($a, 1));") == "2,3"

    def test_array_reverse(self):
        assert out("$a = array(1, 2, 3); echo implode(',', array_reverse($a));") == "3,2,1"

    def test_array_unique(self):
        assert out("$a = array('x', 'y', 'x'); echo count(array_unique($a));") == "2"

    def test_sort(self):
        assert out("$a = array(3, 1, 2); sort($a); echo implode(',', $a);") == "1,2,3"

    def test_range(self):
        assert out("echo implode(',', range(2, 5));") == "2,3,4,5"


class TestStringBuiltins:
    def test_str_pad_right(self):
        assert out("echo str_pad('ab', 5, '-');") == "ab---"

    def test_str_pad_left(self):
        assert out("echo str_pad('ab', 5, '-', 0);") == "---ab"

    def test_str_pad_noop_when_wide_enough(self):
        assert out("echo str_pad('abcdef', 3);") == "abcdef"

    def test_strpos_found(self):
        assert out("echo strpos('hello', 'll');") == "2"

    def test_strpos_not_found_is_false(self):
        assert out("echo strpos('hello', 'z') === false ? 'F' : 'T';") == "F"

    def test_strpos_with_offset(self):
        assert out("echo strpos('aXaX', 'X', 2);") == "3"

    def test_ucwords(self):
        assert out("echo ucwords('hello php world');") == "Hello Php World"

    def test_lcfirst(self):
        assert out("echo lcfirst('Hello');") == "hello"

    def test_htmlspecialchars_decode(self):
        assert out("echo htmlspecialchars_decode('&lt;b&gt;&amp;');") == "<b>&"


class TestMathBuiltins:
    def test_max_min(self):
        assert out("echo max(3, 9, 1); echo min(3, 9, 1);") == "91"

    def test_abs(self):
        assert out("echo abs(-5);") == "5"

    def test_round_floor_ceil(self):
        assert out("echo round(2.6); echo floor(2.6); echo ceil(2.2);") == "323"

    def test_gettype(self):
        assert out("echo gettype('x'); echo '/'; echo gettype(1);") == "string/integer"
