"""Tests for the PHP parser."""

import pytest

from repro.php import ParseError, parse
from repro.php import ast_nodes as ast


def parse_php(source):
    return parse("<?php " + source)


def first_stmt(source):
    return parse_php(source).statements[0]


def expr_of(source):
    stmt = first_stmt(source)
    assert isinstance(stmt, ast.ExpressionStatement)
    return stmt.expression


class TestStatements:
    def test_empty_program(self):
        assert parse("").statements == ()

    def test_inline_html_statement(self):
        program = parse("<h1>title</h1>")
        assert isinstance(program.statements[0], ast.InlineHTML)

    def test_expression_statement(self):
        stmt = first_stmt("$x = 1;")
        assert isinstance(stmt, ast.ExpressionStatement)
        assert isinstance(stmt.expression, ast.Assign)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_php("$x = 1 $y = 2;")

    def test_close_tag_terminates_statement(self):
        program = parse("<?php $x = 1 ?>done")
        assert isinstance(program.statements[0], ast.ExpressionStatement)
        assert isinstance(program.statements[1], ast.InlineHTML)

    def test_echo_single(self):
        stmt = first_stmt("echo $x;")
        assert isinstance(stmt, ast.Echo)
        assert len(stmt.arguments) == 1

    def test_echo_multiple(self):
        stmt = first_stmt("echo $a, $b, 'c';")
        assert len(stmt.arguments) == 3

    def test_block(self):
        stmt = first_stmt("{ $a = 1; $b = 2; }")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.statements) == 2

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_php("{ $a = 1;")

    def test_global_statement(self):
        stmt = first_stmt("global $db, $cfg;")
        assert isinstance(stmt, ast.GlobalStatement)
        assert stmt.names == ("db", "cfg")

    def test_static_statement(self):
        stmt = first_stmt("static $count = 0;")
        assert isinstance(stmt, ast.StaticStatement)
        assert stmt.variables[0].name == "count"

    def test_unset_statement(self):
        stmt = first_stmt("unset($a, $b['k']);")
        assert isinstance(stmt, ast.UnsetStatement)
        assert len(stmt.operands) == 2


class TestIf:
    def test_if_only(self):
        stmt = first_stmt("if ($x) { $y = 1; }")
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is None
        assert stmt.elseifs == ()

    def test_if_else(self):
        stmt = first_stmt("if ($x) $a = 1; else $a = 2;")
        assert isinstance(stmt.orelse, ast.ExpressionStatement)

    def test_elseif_chain(self):
        stmt = first_stmt("if ($x) {} elseif ($y) {} elseif ($z) {} else {}")
        assert len(stmt.elseifs) == 2
        assert stmt.orelse is not None

    def test_else_if_two_words(self):
        stmt = first_stmt("if ($x) {} else if ($y) {} else {}")
        assert len(stmt.elseifs) == 1
        assert stmt.orelse is not None

    def test_paper_figure7_line1(self):
        # $sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
        program = parse_php("$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}")
        cond = program.statements[1].condition
        assert isinstance(cond, ast.Unary) and cond.op == "!"


class TestLoops:
    def test_while(self):
        stmt = first_stmt("while ($row = mysql_fetch_array($r)) { echo $row; }")
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.condition, ast.Assign)

    def test_do_while(self):
        stmt = first_stmt("do { $i = $i + 1; } while ($i < 10);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for(self):
        stmt = first_stmt("for ($i = 0; $i < 10; $i++) { echo $i; }")
        assert isinstance(stmt, ast.For)
        assert len(stmt.init) == 1
        assert len(stmt.condition) == 1
        assert len(stmt.update) == 1

    def test_for_empty_clauses(self):
        stmt = first_stmt("for (;;) { break; }")
        assert stmt.init == () and stmt.condition == () and stmt.update == ()

    def test_foreach_value(self):
        stmt = first_stmt("foreach ($rows as $row) { echo $row; }")
        assert isinstance(stmt, ast.Foreach)
        assert stmt.key_var is None
        assert stmt.value_var.name == "row"

    def test_foreach_key_value(self):
        stmt = first_stmt("foreach ($rows as $k => $v) {}")
        assert stmt.key_var.name == "k"
        assert stmt.value_var.name == "v"

    def test_foreach_by_reference(self):
        stmt = first_stmt("foreach ($rows as &$row) {}")
        assert stmt.by_reference

    def test_break_continue_levels(self):
        program = parse_php("while (1) { break 2; continue; }")
        body = program.statements[0].body
        assert isinstance(body.statements[0], ast.Break)
        assert body.statements[0].level == 2
        assert isinstance(body.statements[1], ast.Continue)


class TestSwitch:
    def test_switch_cases(self):
        stmt = first_stmt(
            "switch ($x) { case 1: echo 'a'; break; case 2: echo 'b'; break; default: echo 'c'; }"
        )
        assert isinstance(stmt, ast.Switch)
        assert len(stmt.cases) == 3
        assert stmt.cases[2].test is None

    def test_switch_semicolon_label(self):
        stmt = first_stmt("switch ($x) { case 1; echo 'a'; }")
        assert len(stmt.cases) == 1

    def test_malformed_switch(self):
        with pytest.raises(ParseError):
            parse_php("switch ($x) { $y = 1; }")


class TestFunctions:
    def test_function_declaration(self):
        stmt = first_stmt("function DoSQL($query) { return mysql_query($query); }")
        assert isinstance(stmt, ast.FunctionDecl)
        assert stmt.name == "DoSQL"
        assert stmt.parameters[0].name == "query"

    def test_default_parameters(self):
        stmt = first_stmt("function f($a, $b = 3) {}")
        assert stmt.parameters[1].default.value == 3

    def test_by_reference_parameter(self):
        stmt = first_stmt("function f(&$out) {}")
        assert stmt.parameters[0].by_reference

    def test_return_value(self):
        stmt = first_stmt("function f() { return 1; }")
        body_stmt = stmt.body.statements[0]
        assert isinstance(body_stmt, ast.Return)
        assert body_stmt.value.value == 1

    def test_bare_return(self):
        stmt = first_stmt("function f() { return; }")
        assert stmt.body.statements[0].value is None


class TestExpressions:
    def test_assignment_right_associative(self):
        expr = expr_of("$a = $b = 5;")
        assert isinstance(expr.value, ast.Assign)
        assert expr.target.name == "a"

    def test_compound_assignments(self):
        for op_text, op in ((".=", "."), ("+=", "+"), ("*=", "*")):
            expr = expr_of(f"$a {op_text} $b;")
            assert expr.op == op

    def test_reference_assignment(self):
        expr = expr_of("$a =& $b;")
        assert expr.by_reference

    def test_concatenation_left_associative(self):
        expr = expr_of("$a . $b . $c;")
        assert expr.op == "."
        assert isinstance(expr.left, ast.Binary)

    def test_precedence_mul_over_add(self):
        expr = expr_of("$a + $b * $c;")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_bool(self):
        expr = expr_of("$a < 3 && $b > 4;")
        assert expr.op == "&&"

    def test_word_operators_lowest(self):
        # `$x = $a or die()` parses as `($x = $a) or die()`.
        expr = expr_of("$x = $a or exit;")
        assert expr.op == "or"
        assert isinstance(expr.left, ast.Assign)

    def test_ternary(self):
        expr = expr_of("$a ? $b : $c;")
        assert isinstance(expr, ast.Ternary)
        assert expr.then is not None

    def test_short_ternary(self):
        expr = expr_of("$a ?: $c;")
        assert isinstance(expr, ast.Ternary)
        assert expr.then is None

    def test_unary_not(self):
        expr = expr_of("!$a;")
        assert isinstance(expr, ast.Unary) and expr.op == "!"

    def test_negative_literal(self):
        expr = expr_of("-5;")
        assert isinstance(expr, ast.Unary) and expr.op == "-"

    def test_cast(self):
        expr = expr_of("(int)$x;")
        assert isinstance(expr, ast.Cast)
        assert expr.target == "int"

    def test_error_suppression(self):
        expr = expr_of("@mysql_query($q);")
        assert isinstance(expr, ast.ErrorSuppress)
        assert isinstance(expr.operand, ast.FunctionCall)

    def test_increment_postfix(self):
        expr = expr_of("$i++;")
        assert isinstance(expr, ast.IncDec) and not expr.prefix

    def test_increment_prefix(self):
        expr = expr_of("++$i;")
        assert expr.prefix


class TestCallsAndAccess:
    def test_function_call(self):
        expr = expr_of("htmlspecialchars($tmp);")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "htmlspecialchars"
        assert len(expr.args) == 1

    def test_nested_calls(self):
        expr = expr_of("a(b(c($x)));")
        assert expr.args[0].args[0].name == "c"

    def test_array_dim(self):
        expr = expr_of("$_GET['sid'];")
        assert isinstance(expr, ast.ArrayDim)
        assert expr.base.name == "_GET"
        assert expr.index.value == "sid"

    def test_nested_array_dim(self):
        expr = expr_of("$a['x']['y'];")
        assert isinstance(expr.base, ast.ArrayDim)

    def test_array_push_form(self):
        expr = expr_of("$a[] = 1;")
        assert isinstance(expr.target, ast.ArrayDim)
        assert expr.target.index is None

    def test_method_call(self):
        expr = expr_of("$db->query($sql);")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "query"

    def test_property_fetch(self):
        expr = expr_of("$row->name;")
        assert isinstance(expr, ast.PropertyFetch)

    def test_static_call(self):
        expr = expr_of("DB::connect($dsn);")
        assert isinstance(expr, ast.StaticCall)
        assert expr.class_name == "DB"

    def test_static_property(self):
        expr = expr_of("Config::$instance;")
        assert isinstance(expr, ast.StaticPropertyFetch)

    def test_new(self):
        expr = expr_of("new Mailer($cfg);")
        assert isinstance(expr, ast.New)
        assert expr.class_name == "Mailer"

    def test_new_without_args(self):
        expr = expr_of("new Mailer;")
        assert expr.args == ()

    def test_bare_constant(self):
        expr = expr_of("PHP_EOL;")
        assert isinstance(expr, ast.Literal)
        assert expr.value == "PHP_EOL"


class TestSpecialExpressions:
    def test_isset(self):
        expr = expr_of("isset($a, $b);")
        assert isinstance(expr, ast.IssetExpr)
        assert len(expr.operands) == 2

    def test_empty(self):
        expr = expr_of("empty($a);")
        assert isinstance(expr, ast.EmptyExpr)

    def test_exit_forms(self):
        assert isinstance(expr_of("exit;"), ast.ExitExpr)
        assert isinstance(expr_of("die();"), ast.ExitExpr)
        expr = expr_of("die('bye');")
        assert expr.argument.value == "bye"

    def test_print_is_expression(self):
        expr = expr_of("print $x;")
        assert isinstance(expr, ast.PrintExpr)

    def test_include_forms(self):
        for kind in ("include", "include_once", "require", "require_once"):
            expr = expr_of(f"{kind} 'lib.php';")
            assert isinstance(expr, ast.IncludeExpr)
            assert expr.kind == kind

    def test_array_literal(self):
        expr = expr_of("array('a' => 1, 2);")
        assert isinstance(expr, ast.ArrayLiteral)
        assert expr.items[0].key.value == "a"
        assert expr.items[1].key is None

    def test_list_assign(self):
        expr = expr_of("list($a, , $c) = $parts;")
        assert isinstance(expr, ast.ListAssign)
        assert expr.targets[1] is None

    def test_interpolated_string_becomes_expression(self):
        expr = expr_of('"hi $name";')
        assert isinstance(expr, ast.InterpolatedString)
        assert isinstance(expr.parts[1], ast.Variable)

    def test_interpolated_subscript(self):
        expr = expr_of('"$row[tickets_subject]";')
        part = expr.parts[0]
        assert isinstance(part, ast.ArrayDim)
        assert part.index.value == "tickets_subject"


class TestPaperExamples:
    """The paper's Figures 1, 2, 3, and 7 must parse."""

    def test_figure1_insert(self):
        source = """<?php
$query = "INSERT INTO tickets_tickets(tickets_id, tickets_username) VALUES('{$u}', '{$s}')";
$result = @mysql_query($query);
"""
        program = parse(source)
        assert len(program.statements) == 2

    def test_figure2_display(self):
        source = """<?php
$query = "SELECT tickets_id, tickets_username, tickets_subject FROM tickets_tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
  extract($row);
  echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}
"""
        program = parse(source)
        assert isinstance(program.statements[2], ast.While)

    def test_figure3_referer(self):
        source = """<?php
$sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');";
mysql_query($sql);
"""
        program = parse(source)
        assign = program.statements[0].expression
        assert isinstance(assign.value, ast.InterpolatedString)

    def test_figure7_surveyor(self):
        source = """<?php
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid"; DoSQL($i2q);
$fnquery = "SELECT * FROM questions, surveys WHERE questions.sid=surveys.sid AND questions.sid='$sid'";
DoSQL($fnquery);
"""
        program = parse(source)
        calls = [
            s.expression
            for s in program.statements
            if isinstance(s, ast.ExpressionStatement)
            and isinstance(s.expression, ast.FunctionCall)
        ]
        assert len(calls) == 3
        assert all(c.name == "DoSQL" for c in calls)

    def test_figure6_guestbook(self):
        source = """<?php
if ($Nick) {
  $tmp = $_GET["nick"];
  echo(htmlspecialchars($tmp));
} else {
  $tmp = "You are the" . $GuestCount . " guest";
  echo($tmp);
}
"""
        program = parse(source)
        stmt = program.statements[0]
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None


class TestErrorReporting:
    def test_error_has_span(self):
        try:
            parse("<?php if (")
        except ParseError as err:
            assert err.span is not None
        else:
            pytest.fail("expected ParseError")

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse_php("$x = ;")

    def test_bad_function_name(self):
        with pytest.raises(ParseError):
            parse_php("function () {}")

    def test_bad_foreach(self):
        with pytest.raises(ParseError):
            parse_php("foreach ($a) {}")
