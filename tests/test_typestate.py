"""Tests for the TS baseline and its agreement with BMC."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ai import rename, translate_filter_result
from repro.bmc import check_program
from repro.ir import filter_source
from repro.lattice.types import TAINTED
from repro.typestate import analyze_commands


def ts(source):
    return analyze_commands(filter_source("<?php " + source))


def bmc(source):
    return check_program(rename(translate_filter_result(filter_source("<?php " + source))))


class TestBasics:
    def test_clean_program(self):
        report = ts("$x = 'hello'; echo $x;")
        assert report.safe
        assert report.num_sinks_checked == 1

    def test_direct_taint(self):
        report = ts("$x = $_GET['q']; echo $x;")
        assert report.num_violations == 1
        violation = report.violations[0]
        assert violation.variable == "x"
        assert violation.level == TAINTED
        assert violation.php_name == "x"

    def test_sanitized_is_safe(self):
        report = ts("$x = htmlspecialchars($_GET['q']); echo $x;")
        assert report.safe

    def test_overwrite_untaints(self):
        report = ts("$x = $_GET['q']; $x = 'safe'; echo $x;")
        assert report.safe

    def test_each_use_reported_individually(self):
        # The TS drawback the paper fixes: one root cause, many symptoms.
        report = ts(
            "$sid = $_GET['sid'];"
            "$q1 = $sid; DoSQL($q1);"
            "$q2 = $sid; DoSQL($q2);"
            "$q3 = $sid; DoSQL($q3);"
        )
        assert report.num_violations == 3
        assert report.num_violating_sites == 3


class TestControlFlow:
    def test_branch_join_keeps_taint(self):
        report = ts("if ($c) { $x = $_GET['q']; } else { $x = 'safe'; } echo $x;")
        assert report.num_violations == 1

    def test_both_branches_safe(self):
        report = ts("if ($c) { $x = 'a'; } else { $x = 'b'; } echo $x;")
        assert report.safe

    def test_taint_only_after_merge(self):
        report = ts("echo $x; $x = $_GET['q'];")
        assert report.safe  # flow-sensitivity: use precedes taint

    def test_loop_fixpoint_propagates(self):
        # Taint enters x only via the loop body, through y.
        report = ts(
            "$y = $_GET['q']; $x = '';"
            "while ($c) { $x = $x . $y; }"
            "echo $x;"
        )
        assert report.num_violations == 1

    def test_loop_violation_reported_once(self):
        report = ts("while ($c) { echo $_GET['x']; }")
        assert report.num_violations == 1

    def test_nested_loops_terminate(self):
        report = ts(
            "while ($a) { while ($b) { $x = $x . $_GET['q']; } } echo $x;"
        )
        assert report.num_violations == 1

    def test_violations_inside_branches(self):
        report = ts(
            "if ($c) { echo $_GET['a']; } else { echo $_POST['b']; }"
        )
        assert report.num_violations == 2


class TestTSvsBMCPrecision:
    def test_path_insensitivity_false_positive(self):
        # TS joins branches, so the sanitize-then-use pattern across
        # branches is flagged; BMC (path-sensitive over nondeterministic
        # branches) agrees here because both paths are genuinely possible.
        source = (
            "$x = $_GET['q'];"
            "if ($c) { $x = htmlspecialchars($x); }"
            "echo $x;"
        )
        assert ts(source).num_violations == 1
        assert not bmc(source).safe

    def test_agreement_on_figure7(self):
        source = """
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT 1 $sid"; DoSQL($iq);
$i2q = "SELECT 2 $sid"; DoSQL($i2q);
$fnq = "SELECT 3 $sid"; DoSQL($fnq);
"""
        ts_report = ts(source)
        bmc_result = bmc(source)
        assert ts_report.num_violations == 3
        assert len(bmc_result.violated) == 3


# -- property: TS and BMC agree on which sinks are violated ---------------
#
# Both analyses treat conditions as nondeterministic and use the same
# expression typing, so for programs built from this generator's grammar
# (straight-line + branches, no loops) the sets of violated sink sites
# must coincide: TS joins over paths while BMC explores each path, and a
# joined violation always has a witnessing path.


@st.composite
def random_taint_program(draw):
    lines = []
    variables = ["a", "b", "c"]
    num_stmts = draw(st.integers(min_value=1, max_value=6))
    for _ in range(num_stmts):
        kind = draw(st.sampled_from(["taint", "const", "copy", "concat", "sink", "branch"]))
        var = draw(st.sampled_from(variables))
        src = draw(st.sampled_from(variables))
        if kind == "taint":
            lines.append(f"${var} = $_GET['k'];")
        elif kind == "const":
            lines.append(f"${var} = 'lit';")
        elif kind == "copy":
            lines.append(f"${var} = ${src};")
        elif kind == "concat":
            other = draw(st.sampled_from(variables))
            lines.append(f"${var} = ${src} . ${other};")
        elif kind == "sink":
            lines.append(f"echo ${var};")
        else:
            inner = draw(st.sampled_from(["taint", "const", "copy"]))
            if inner == "taint":
                body = f"${var} = $_POST['p'];"
            elif inner == "const":
                body = f"${var} = 'x';"
            else:
                body = f"${var} = ${src};"
            lines.append(f"if ($cond) {{ {body} }}")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(random_taint_program())
def test_ts_and_bmc_agree_on_violated_sites(source):
    ts_report = ts(source)
    bmc_result = bmc(source)
    ts_sites = {str(v.span) for v in ts_report.violations}
    bmc_sites = {str(r.event.span) for r in bmc_result.violated}
    assert ts_sites == bmc_sites
