"""Tests for the single-offender join refinement in replacement sets.

The paper's Lemma 1 expands replacement sets through pure copies
(``v_α = v_β``).  With trace levels available, a join with exactly one
violating variable operand also qualifies: the other operands are below
τ_r on the trace, so sanitizing the offender fixes the trace.  Without
the lattice, the literal (copies-only) rule applies.
"""

from repro.ai import rename, translate_filter_result
from repro.analysis import group_errors, replacement_sets_for_trace
from repro.bmc import check_program
from repro.ir import filter_source
from repro.lattice import two_point_lattice
from repro.lattice.types import TAINTED


def bmc_result(source):
    program = rename(translate_filter_result(filter_source("<?php " + source)))
    return check_program(program)


def first_trace(result):
    return result.violated[0].counterexamples[0]


LATTICE = two_point_lattice()


class TestLiteralRule:
    def test_join_stops_without_lattice(self):
        result = bmc_result("$a = $_GET['x']; $q = $a . $b; mysql_query($q);")
        (rset,) = replacement_sets_for_trace(first_trace(result))
        assert rset.names == {"q"}

    def test_copy_still_expands_without_lattice(self):
        result = bmc_result("$a = $_GET['x']; $q = $a; mysql_query($q);")
        (rset,) = replacement_sets_for_trace(first_trace(result))
        assert rset.names == {"q", "a"}


class TestSingleOffenderRefinement:
    def test_join_with_one_tainted_operand_expands(self):
        result = bmc_result("$a = $_GET['x']; $b = 'lit'; $q = $a . $b; mysql_query($q);")
        (rset,) = replacement_sets_for_trace(
            first_trace(result), lattice=LATTICE, required=TAINTED
        )
        assert rset.names == {"q", "a"}

    def test_join_with_two_tainted_operands_stops(self):
        result = bmc_result(
            "$a = $_GET['x']; $b = $_POST['y']; $q = $a . $b; mysql_query($q);"
        )
        (rset,) = replacement_sets_for_trace(
            first_trace(result), lattice=LATTICE, required=TAINTED
        )
        assert rset.names == {"q"}

    def test_chain_through_refined_joins(self):
        source = (
            "$root = $_COOKIE['c'];"
            "$mid = 'pre' . $root;"
            "$q = $mid . 'post';"
            "mysql_query($q);"
        )
        result = bmc_result(source)
        (rset,) = replacement_sets_for_trace(
            first_trace(result), lattice=LATTICE, required=TAINTED
        )
        assert rset.names == {"q", "mid", "root"}

    def test_level_const_offender_stops(self):
        # The offending operand is a direct superglobal read (a fixed
        # tainted level), not a variable: nothing upstream to sanitize.
        result = bmc_result("$q = 'SELECT ' . $_GET['id']; mysql_query($q);")
        (rset,) = replacement_sets_for_trace(
            first_trace(result), lattice=LATTICE, required=TAINTED
        )
        assert rset.names == {"q"}

    def test_untainted_operand_through_skipped_version(self):
        # $b is overwritten to a constant on the violating path (branch
        # taken), so only $a offends at the join.
        source = (
            "$a = $_GET['x']; $b = $_POST['y'];"
            "if ($c) { $b = 'safe'; }"
            "$q = $a . $b; mysql_query($q);"
        )
        result = bmc_result(source)
        traces = result.violated[0].counterexamples
        by_branch = {t.deciding_branches.get("b1"): t for t in traces}
        safe_b_trace = by_branch[True]
        (rset,) = replacement_sets_for_trace(
            safe_b_trace, lattice=LATTICE, required=TAINTED
        )
        assert rset.names == {"q", "a"}
        both_tainted_trace = by_branch[False]
        (rset,) = replacement_sets_for_trace(
            both_tainted_trace, lattice=LATTICE, required=TAINTED
        )
        assert rset.names == {"q"}


class TestGroupingUsesRefinement:
    def test_mixed_constant_concat_groups_at_root(self):
        source = (
            "$root = $_GET['r'];"
            "$q1 = 'a' . $root . 'z'; mysql_query($q1);"
            "$q2 = 'b' . $root; mysql_query($q2);"
            "$q3 = $root . 'c'; mysql_query($q3);"
        )
        grouping = group_errors(bmc_result(source))
        assert grouping.fixing_set == {"root"}
        assert grouping.num_groups == 1

    def test_object_property_groups_through_render_join(self):
        source = """
class T {
  var $s;
  function T($x) { $this->s = $x; }
  function row() { echo '<td>' . $this->s . '</td>'; }
  function save() { mysql_query("INSERT INTO t VALUES ('{$this->s}')"); }
}
$t = new T($_POST['s']);
$t->row();
$t->save();
"""
        grouping = group_errors(bmc_result(source))
        assert grouping.num_groups == 1
        (group,) = grouping.groups
        assert group.fix_variable == "t->s"
