"""Tests for replacement sets and error grouping (paper §3.3.3)."""

from repro.ai import rename, translate_filter_result
from repro.analysis import group_errors, replacement_sets_for_trace
from repro.bmc import check_program
from repro.ir import filter_source


def analyze(source):
    program = rename(translate_filter_result(filter_source("<?php " + source)))
    return group_errors(check_program(program))


def bmc_result(source):
    program = rename(translate_filter_result(filter_source("<?php " + source)))
    return check_program(program)


class TestReplacementSets:
    def test_direct_violation_set_is_singleton(self):
        result = bmc_result("$x = $_GET['q']; echo $x;")
        (trace,) = result.violated[0].counterexamples
        (rset,) = replacement_sets_for_trace(trace)
        assert rset.names == {"x"}

    def test_copy_chain_expands(self):
        result = bmc_result("$a = $_GET['q']; $b = $a; $c = $b; echo $c;")
        (trace,) = result.violated[0].counterexamples
        (rset,) = replacement_sets_for_trace(trace)
        assert rset.names == {"a", "b", "c"}
        # Back-trace order: violating variable first, root last.
        assert [c.name for c in rset.candidates] == ["c", "b", "a"]

    def test_join_stops_expansion(self):
        # $q = $a . $b is not a unique-r-value single assignment.
        result = bmc_result("$a = $_GET['x']; $q = $a . $b; mysql_query($q);")
        (trace,) = result.violated[0].counterexamples
        (rset,) = replacement_sets_for_trace(trace)
        assert rset.names == {"q"}

    def test_skipped_version_drops_through(self):
        # The conditional overwrite is skipped on the violating path; the
        # chain must continue through the previous version.
        source = (
            "$x = $_GET['q'];"
            "if ($c) { $x = 'safe'; }"
            "$y = $x; echo $y;"
        )
        result = bmc_result(source)
        (trace,) = result.violated[0].counterexamples
        (rset,) = replacement_sets_for_trace(trace)
        assert rset.names == {"x", "y"}

    def test_candidates_have_spans(self):
        result = bmc_result("$a = $_GET['q']; echo $a;")
        (trace,) = result.violated[0].counterexamples
        (rset,) = replacement_sets_for_trace(trace)
        assert rset.candidates[0].span.filename == "<string>"
        assert rset.candidates[0].php_name == "a"


class TestGrouping:
    def test_figure7_single_group(self):
        # Paper Figure 7: $sid taints three queries; the minimal fixing
        # set is {$sid} — one group instead of three.
        source = """
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid"; DoSQL($i2q);
$fnq = "SELECT * FROM q WHERE sid='$sid'"; DoSQL($fnq);
"""
        grouping = analyze(source)
        assert grouping.fixing_set == {"sid"}
        assert grouping.num_groups == 1
        assert grouping.num_symptom_sites == 3
        (group,) = grouping.groups
        assert group.php_name == "sid"
        assert len(group.traces) == 6  # 3 sinks x 2 paths

    def test_independent_sources_need_independent_fixes(self):
        source = (
            "$a = $_GET['a']; echo $a;"
            "$b = $_POST['b']; echo $b;"
        )
        grouping = analyze(source)
        assert grouping.fixing_set == {"a", "b"}
        assert grouping.num_groups == 2

    def test_safe_program_has_no_groups(self):
        grouping = analyze("$x = htmlspecialchars($_GET['q']); echo 'ok';")
        assert grouping.fixing_set == set()
        assert grouping.groups == []
        assert grouping.num_traces == 0

    def test_shared_root_via_copies(self):
        source = (
            "$root = $_GET['r'];"
            "$u1 = $root; echo $u1;"
            "$u2 = $root; echo $u2;"
            "$u3 = $root; echo $u3;"
        )
        grouping = analyze(source)
        assert grouping.fixing_set == {"root"}
        assert grouping.num_symptom_sites == 3

    def test_real_variable_preferred_over_temp(self):
        # Sink args like "x$a" hoist to temps; the greedy cost makes the
        # analysis prefer the real variable when it covers the same traces.
        source = "$a = $_GET['a']; echo \"val=$a\"; echo \"again=$a\";"
        grouping = analyze(source)
        assert grouping.fixing_set == {"a"}

    def test_pure_expression_sink_fixes_at_temp(self):
        # No real variable exists in the chain: the hoisted expression
        # itself is the only fix point.
        grouping = analyze("echo 'x' . $_GET['q'] . 'y';")
        assert grouping.num_groups == 1
        (group,) = grouping.groups
        assert group.php_name is None

    def test_groups_cover_all_traces(self):
        source = """
$sid = $_GET['sid'];
$a = $sid; DoSQL($a);
$b = $_COOKIE['t']; DoSQL($b);
DoSQL($sid);
"""
        grouping = analyze(source)
        covered = sum(len(g.traces) for g in grouping.groups)
        assert covered == grouping.num_traces
        assert grouping.fixing_set == {"sid", "b"}

    def test_mixed_taint_join_needs_sink_side_fix(self):
        # Two roots joined into one variable: fixing either root alone
        # does not fix $q, so the fixing set must include q itself.
        source = "$a = $_GET['a']; $b = $_POST['b']; $q = $a . $b; mysql_query($q);"
        grouping = analyze(source)
        assert grouping.fixing_set == {"q"}

    def test_group_symptom_sites(self):
        source = """
$sid = $_GET['sid'];
$iq = $sid; DoSQL($iq);
$i2q = $sid; DoSQL($i2q);
"""
        grouping = analyze(source)
        (group,) = grouping.groups
        assert len(group.symptom_sites) == 2

    def test_introduction_spans_recorded(self):
        grouping = analyze("$sid = $_GET['sid']; DoSQL($sid);")
        (group,) = grouping.groups
        assert len(group.introduction_spans) >= 1

    def test_exact_mode_never_larger_than_greedy(self):
        sources = [
            "$sid = $_GET['s']; $a = $sid; DoSQL($a); $b = $sid; DoSQL($b);",
            "$x = $_GET['x']; $y = $_POST['y']; echo $x; echo $y;",
            "$r = $_COOKIE['c']; echo $r; mysql_query('q' . $r);",
        ]
        for source in sources:
            result = bmc_result(source)
            greedy = group_errors(result, exact=False)
            exact = group_errors(result, exact=True)
            assert exact.num_groups <= greedy.num_groups
            assert exact.num_traces == greedy.num_traces

    def test_ts_like_vs_bmc_counts(self):
        # The headline phenomenon: symptom sites > groups.
        source = """
$sid = $_GET['sid'];
$q1 = $sid; DoSQL($q1);
$q2 = $sid; DoSQL($q2);
$q3 = $sid; DoSQL($q3);
$q4 = $sid; DoSQL($q4);
"""
        grouping = analyze(source)
        assert grouping.num_symptom_sites == 4
        assert grouping.num_groups == 1
