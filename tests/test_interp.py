"""Tests for the mini PHP interpreter."""

import pytest

from repro.interp import (
    HttpRequest,
    MockDatabase,
    PhpArray,
    PhpFatalError,
    PhpRuntimeError,
    run_php,
)


def output_of(source, request=None, **kwargs):
    return run_php("<?php " + source, request=request, **kwargs).response_body()


class TestBasics:
    def test_echo_literal(self):
        assert output_of("echo 'hello';") == "hello"

    def test_inline_html_written(self):
        env = run_php("<h1>Hi</h1><?php echo 'x';")
        assert env.response_body() == "<h1>Hi</h1>x"

    def test_variables_and_arithmetic(self):
        assert output_of("$a = 2; $b = 3; echo $a + $b * 2;") == "8"

    def test_string_concatenation(self):
        assert output_of("$a = 'foo'; echo $a . 'bar';") == "foobar"

    def test_interpolation(self):
        assert output_of("$name = 'world'; echo \"hello $name!\";") == "hello world!"

    def test_numeric_string_coercion(self):
        assert output_of("echo '5' + '10';") == "15"

    def test_compound_assignment(self):
        assert output_of("$s = 'a'; $s .= 'b'; echo $s;") == "ab"

    def test_increment(self):
        assert output_of("$i = 1; $i++; echo $i; echo ++$i;") == "23"

    def test_ternary(self):
        assert output_of("echo 1 ? 'y' : 'n';") == "y"
        assert output_of("echo 0 ?: 'fallback';") == "fallback"

    def test_print_expression(self):
        assert output_of("print 'x';") == "x"

    def test_exit_stops_execution(self):
        assert output_of("echo 'a'; exit; echo 'b';") == "a"

    def test_die_with_message(self):
        assert output_of("die('bye');") == "bye"


class TestControlFlow:
    def test_if_else(self):
        assert output_of("if (1) { echo 'a'; } else { echo 'b'; }") == "a"
        assert output_of("if (0) { echo 'a'; } elseif (1) { echo 'b'; }") == "b"

    def test_while_loop(self):
        assert output_of("$i = 0; while ($i < 3) { echo $i; $i++; }") == "012"

    def test_do_while(self):
        assert output_of("$i = 5; do { echo $i; $i++; } while ($i < 3);") == "5"

    def test_for_loop(self):
        assert output_of("for ($i = 0; $i < 3; $i++) { echo $i; }") == "012"

    def test_foreach(self):
        assert output_of("$a = array('x', 'y'); foreach ($a as $v) { echo $v; }") == "xy"

    def test_foreach_key_value(self):
        source = "$a = array('k' => 'v'); foreach ($a as $k => $v) { echo $k . '=' . $v; }"
        assert output_of(source) == "k=v"

    def test_break_continue(self):
        source = "for ($i = 0; $i < 5; $i++) { if ($i == 1) { continue; } if ($i == 3) { break; } echo $i; }"
        assert output_of(source) == "02"

    def test_switch_with_fallthrough(self):
        source = "switch (2) { case 1: echo 'a'; case 2: echo 'b'; case 3: echo 'c'; break; default: echo 'd'; }"
        assert output_of(source) == "bc"

    def test_switch_default(self):
        source = "switch (9) { case 1: echo 'a'; break; default: echo 'd'; }"
        assert output_of(source) == "d"

    def test_infinite_loop_hits_budget(self):
        with pytest.raises(PhpRuntimeError, match="budget"):
            output_of("while (1) { $x = 1; }", max_steps=5000)


class TestArrays:
    def test_literal_and_index(self):
        assert output_of("$a = array('k' => 'v'); echo $a['k'];") == "v"

    def test_push_syntax(self):
        assert output_of("$a = array(); $a[] = 'x'; $a[] = 'y'; echo $a[1];") == "y"

    def test_auto_vivification(self):
        assert output_of("$a['x']['y'] = 'deep'; echo $a['x']['y'];") == "deep"

    def test_unset(self):
        assert output_of("$a = array('k' => 'v'); unset($a['k']); echo isset($a['k']) ? 'y' : 'n';") == "n"

    def test_count(self):
        assert output_of("$a = array(1, 2, 3); echo count($a);") == "3"

    def test_in_array(self):
        assert output_of("$a = array('x'); echo in_array('x', $a) ? 'y' : 'n';") == "y"


class TestFunctions:
    def test_user_function(self):
        assert output_of("function f($x) { return $x * 2; } echo f(21);") == "42"

    def test_function_hoisting(self):
        assert output_of("echo f(); function f() { return 'hoisted'; }") == "hoisted"

    def test_default_parameter(self):
        assert output_of("function f($a, $b = '!') { return $a . $b; } echo f('hi');") == "hi!"

    def test_by_reference_parameter(self):
        assert output_of("function f(&$x) { $x = 'set'; } f($v); echo $v;") == "set"

    def test_global_keyword(self):
        assert output_of("$g = 'G'; function f() { global $g; return $g; } echo f();") == "G"

    def test_locals_isolated(self):
        assert output_of("$x = 'outer'; function f() { $x = 'inner'; } f(); echo $x;") == "outer"

    def test_undefined_function_fatal(self):
        with pytest.raises(PhpFatalError, match="undefined function"):
            output_of("nope();")

    def test_recursion(self):
        source = "function fact($n) { if ($n <= 1) { return 1; } return $n * fact($n - 1); } echo fact(5);"
        assert output_of(source) == "120"


class TestSuperglobals:
    def test_get_parameter(self):
        request = HttpRequest(get={"q": "search"})
        assert output_of("echo $_GET['q'];", request=request) == "search"

    def test_post_and_request(self):
        request = HttpRequest(post={"name": "bob"})
        assert output_of("echo $_REQUEST['name'];", request=request) == "bob"

    def test_referer(self):
        request = HttpRequest(referer="http://evil.example/")
        assert output_of("echo $_SERVER['HTTP_REFERER'];", request=request) == "http://evil.example/"
        assert output_of("echo $HTTP_REFERER;", request=request) == "http://evil.example/"


class TestBuiltins:
    def test_htmlspecialchars(self):
        assert output_of("echo htmlspecialchars('<b>&</b>');") == "&lt;b&gt;&amp;&lt;/b&gt;"

    def test_addslashes(self):
        assert output_of(r"""echo addslashes("a'b");""") == "a\\'b"

    def test_guard_function(self):
        out = output_of("echo __webssari_sanitize(\"<script>'\");")
        assert "<script>" not in out
        assert "&lt;script&gt;" in out

    def test_intval(self):
        assert output_of("echo intval('12abc');") == "12"

    def test_string_functions(self):
        assert output_of("echo strtoupper(substr('hello', 1, 3));") == "ELL"
        assert output_of("echo str_replace('a', 'o', 'banana');") == "bonono"
        assert output_of("echo implode(',', explode(' ', 'a b'));") == "a,b"

    def test_sprintf(self):
        assert output_of("echo sprintf('%s=%d', 'x', 5);") == "x=5"

    def test_extract(self):
        source = "$row = array('name' => 'alice'); extract($row); echo $name;"
        assert output_of(source) == "alice"


class TestDatabase:
    def test_insert_then_select(self):
        source = """
mysql_query("INSERT INTO users (name, role) VALUES ('alice', 'admin')");
$r = mysql_query("SELECT name FROM users");
$row = mysql_fetch_array($r);
echo $row['name'];
"""
        assert output_of(source) == "alice"

    def test_select_with_where(self):
        db = MockDatabase()
        db.create_table("t", [{"id": 1, "v": "one"}, {"id": 2, "v": "two"}])
        source = "$r = mysql_query(\"SELECT v FROM t WHERE id=2\"); $row = mysql_fetch_array($r); echo $row['v'];"
        assert output_of(source, database=db) == "two"

    def test_fetch_loop(self):
        db = MockDatabase()
        db.create_table("t", [{"v": "a"}, {"v": "b"}])
        source = "$r = mysql_query('SELECT v FROM t'); while ($row = mysql_fetch_array($r)) { echo $row['v']; }"
        assert output_of(source, database=db) == "ab"

    def test_sql_injection_drops_table(self):
        # The paper's Figure 3 attack: smuggle a DROP TABLE via the referer.
        db = MockDatabase()
        db.create_table("users", [{"name": "a"}])
        request = HttpRequest(referer="');DROP TABLE ('users")
        source = "$sql = \"INSERT INTO track_temp VALUES('$HTTP_REFERER');\"; mysql_query($sql);"
        run_php("<?php " + source, request=request, database=db)
        assert "users" in db.dropped_tables

    def test_sanitized_injection_does_not_drop(self):
        db = MockDatabase()
        db.create_table("users", [{"name": "a"}])
        request = HttpRequest(referer="');DROP TABLE ('users")
        source = (
            "$ref = __webssari_sanitize($HTTP_REFERER);"
            "$sql = \"INSERT INTO track_temp VALUES('$ref');\"; mysql_query($sql);"
        )
        run_php("<?php " + source, request=request, database=db)
        assert db.dropped_tables == []
        assert "users" in db.tables

    def test_query_log_records_everything(self):
        env = run_php("<?php mysql_query('SELECT 1 FROM x');")
        assert env.database.query_log == ["SELECT 1 FROM x"]


class TestSinkLogging:
    def test_exec_logged_not_run(self):
        env = run_php("<?php exec('rm -rf /');")
        assert env.command_log == ["rm -rf /"]

    def test_method_query_routes_to_db(self):
        env = run_php("<?php $db = new DB(); $db->query(\"INSERT INTO t VALUES ('v')\");")
        assert env.database.tables["t"] == [{"col0": "v"}]


class TestIncludes:
    def test_include_executes_file(self):
        files = {"lib.php": "<?php $shared = 'from lib';"}
        out = output_of("include 'lib.php'; echo $shared;", files=files)
        assert out == "from lib"

    def test_missing_require_fatal(self):
        with pytest.raises(PhpFatalError, match="required file"):
            output_of("require 'gone.php';")

    def test_missing_include_continues(self):
        assert output_of("include 'gone.php'; echo 'alive';") == "alive"

    def test_include_once(self):
        files = {"c.php": "<?php $n = $n + 1;"}
        out = output_of("$n = 0; include_once 'c.php'; include_once 'c.php'; echo $n;", files=files)
        assert out == "1"


class TestXssScenario:
    def test_stored_xss_round_trip(self):
        """The paper's Figures 1-2 scenario executed end to end."""
        db = MockDatabase()
        db.create_table("tickets_tickets", [])
        payload = "<script>alert('xss')</script>"
        submit = """
$query = "INSERT INTO tickets_tickets (tickets_username, tickets_subject) VALUES ('{$_POST['user']}', '{$_POST['subject']}')";
@mysql_query($query);
"""
        display = """
$result = @mysql_query("SELECT tickets_username, tickets_subject FROM tickets_tickets");
while ($row = @mysql_fetch_array($result)) {
  extract($row);
  echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}
"""
        run_php(
            "<?php " + submit,
            request=HttpRequest(post={"user": "mallory", "subject": payload}),
            database=db,
        )
        env = run_php("<?php " + display, database=db)
        # Vulnerable: the script tag is delivered to other users' browsers.
        # (The payload's own quotes get mangled by the unescaped SQL —
        # faithful to what a real database would do — but the tag survives.)
        assert "<script>" in env.response_body()

    def test_patched_display_neutralizes_payload(self):
        db = MockDatabase()
        db.create_table("tickets_tickets", [{"tickets_subject": "<script>x</script>"}])
        display = """
$result = mysql_query("SELECT tickets_subject FROM tickets_tickets");
while ($row = mysql_fetch_array($result)) {
  $subject = __webssari_sanitize($row['tickets_subject']);
  echo $subject;
}
"""
        env = run_php("<?php " + display, database=db)
        assert "<script>" not in env.response_body()
        assert "&lt;script&gt;" in env.response_body()


class TestValues:
    def test_php_array_auto_index(self):
        array = PhpArray()
        array.set(None, "a")
        array.set(5, "b")
        array.set(None, "c")
        assert array.keys() == [0, 5, 6]

    def test_php_array_key_normalization(self):
        array = PhpArray()
        array.set("3", "x")
        assert array.get(3) == "x"
        assert array.keys() == [3]

    def test_loose_comparisons(self):
        assert output_of("echo ('1' == 1) ? 'y' : 'n';") == "y"
        assert output_of("echo ('1' === 1) ? 'y' : 'n';") == "n"
        # PHP4-era semantics (the paper's vintage): non-numeric strings
        # coerce to 0 in numeric comparison, so 0 == 'a' is TRUE.
        assert output_of("echo (0 == 'a') ? 'y' : 'n';") == "y"

    def test_division_by_zero_returns_false(self):
        assert output_of("echo (1 / 0) ? 'y' : 'n';") == "n"
