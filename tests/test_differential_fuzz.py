"""Seeded differential fuzzing: static verdicts vs concrete execution.

:func:`repro.corpus.generator.generate_fuzz_program` emits random
loop-free F(p) programs whose branch conditions each read a dedicated
``$_GET`` key exactly once.  That gives two independent oracles for the
same question ("can attacker input reach a sink unsanitized?"):

* **static** — ``WebSSARI.verify_source``: the full parse → filter → AI
  → rename → BMC pipeline;
* **concrete** — ``repro.interp.run_php`` over all ``2**k`` branch
  assignments, with a marker payload (containing ``<`` so
  ``htmlspecialchars`` destroys it) on the payload parameter.  A leak is
  the marker surviving verbatim into the response body or the SQL query
  log.

Because the fragment is loop-free and flows strings only through
copy/concat, the two must agree exactly — both directions — under the
*sound* sanitizer semantics (``sanitize_in_place=False``).  The
paper-faithful default keeps Figure 6's in-place model, whose known
false negative (``$b = htmlspecialchars($a); echo $a;`` — see
``test_model_unsoundness.py``) the fuzzer rediscovers at seeds like 1;
for that mode only the one-sided property holds: a "vulnerable" verdict
must always be witnessed by a concrete leak.  On top of the verdict
agreement, every (solver backend × sat-cache) combination must agree
with itself (extending ``test_solver_parity.py`` to the fuzzed corpus).

Plain ``random.Random(seed)`` loops, no new dependencies.  Override
``REPRO_FUZZ_SEED`` / ``REPRO_FUZZ_COUNT`` to widen the sweep locally or
to replay a CI failure (the failing program's source is embedded in the
assertion message).
"""

import itertools
import os
import random

import pytest

from repro.corpus.generator import generate_fuzz_program
from repro.interp import HttpRequest, run_php
from repro.replay import replay_source
from repro.sat.cache import SatQueryCache
from repro.websari.pipeline import WebSSARI

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))
COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "30"))
#: Contains ``<`` so htmlspecialchars destroys it (``&lt;ta1nt&gt;``),
#: and is distinctive enough never to occur in generated literals.
MARKER = "<ta1nt>"

PROGRAMS = [generate_fuzz_program(random.Random(SEED + i)) for i in range(COUNT)]


def concrete_leaks(program) -> bool:
    """Exhaustive concrete oracle: does ANY branch assignment leak?"""
    for bits in itertools.product([False, True], repeat=len(program.branch_params)):
        get = {program.payload_param: MARKER}
        for key, taken in zip(program.branch_params, bits):
            if taken:
                get[key] = "1"  # missing key reads as '' → falsy
        env = run_php(program.source, HttpRequest(get=get))
        if MARKER in env.response_body():
            return True
        if any(MARKER in query for query in env.database.query_log):
            return True
    return False


def signature(report):
    """Everything that must agree across solver/cache variants."""
    return (
        report.safe,
        report.bmc.safe,
        [
            (a.assert_id, a.safe, len(a.counterexamples), a.truncated)
            for a in report.bmc.assertions
        ],
        report.bmc_group_count,
    )


class TestGenerator:
    def test_same_seed_reproduces_the_program(self):
        a = generate_fuzz_program(random.Random(SEED))
        b = generate_fuzz_program(random.Random(SEED))
        assert a == b

    def test_branch_params_each_steer_one_condition(self):
        for program in PROGRAMS:
            for key in program.branch_params:
                assert program.source.count(f"$_GET['{key}']") == 1

    def test_corpus_is_nontrivial(self):
        """The seeded corpus must exercise both verdicts, or the
        differential assertions below would be vacuous."""
        verdicts = {concrete_leaks(p) for p in PROGRAMS}
        assert verdicts == {False, True}


class TestStaticVsConcrete:
    @pytest.mark.parametrize("index", range(COUNT))
    def test_sound_mode_matches_exhaustive_execution(self, index):
        program = PROGRAMS[index]
        report = WebSSARI(sanitize_in_place=False).verify_source(
            program.source, f"fuzz{index}.php"
        )
        leaked = concrete_leaks(program)
        # Two-sided: safe ⇒ no concrete leak (soundness of "safe"),
        # vulnerable ⇒ some concrete leak (no false alarms on F(p)).
        assert report.bmc.safe == (not leaked), (
            f"fuzz{index}: BMC safe={report.bmc.safe} but concrete "
            f"execution {'leaked' if leaked else 'never leaked'} "
            f"(seed={SEED + index})\nsource:\n{program.source}"
        )

    @pytest.mark.parametrize("index", range(COUNT))
    def test_paper_mode_vulnerable_verdicts_are_witnessed(self, index):
        # The Figure 6 in-place sanitizer model may miss leaks (known
        # false negative, test_model_unsoundness.py) but must never
        # invent one: in-place sanitization only *lowers* taint relative
        # to the pure-function semantics.
        program = PROGRAMS[index]
        report = WebSSARI().verify_source(program.source, f"fuzz{index}.php")
        if not report.bmc.safe:
            assert concrete_leaks(program), (
                f"fuzz{index}: paper-mode BMC reported vulnerable but no "
                f"concrete execution leaks (seed={SEED + index})\n"
                f"source:\n{program.source}"
            )


class TestWitnessReplay:
    """Third oracle: the replayer must agree with both of the others.

    A paper-mode ``vulnerable`` verdict on a generated program is always
    witnessed concretely (TestStaticVsConcrete), so its replay must come
    back ``confirmed`` — and the request the replayer synthesizes must
    itself be one of the ``2**k`` branch assignments the exhaustive
    oracle already proved leaky.  Fuzzed branch conditions are plain
    ``$_GET`` truthiness, so the replayer's condition solver covers all
    of them: ``unsupported`` here is a bug, not a subset boundary.
    """

    @pytest.mark.parametrize("index", range(COUNT))
    def test_vulnerable_verdicts_replay_confirmed(self, index):
        program = PROGRAMS[index]
        report = WebSSARI().verify_source(program.source, f"fuzz{index}.php")
        if report.bmc.safe:
            pytest.skip("no counterexamples to replay")
        results = replay_source(program.source, report, f"fuzz{index}.php")
        assert results, f"fuzz{index}: vulnerable report produced no traces"
        for result in results:
            assert result.verdict == "confirmed", (
                f"fuzz{index}: trace at {result.span} replayed "
                f"{result.verdict} ({result.reason}); request="
                f"{result.request} (seed={SEED + index})\n"
                f"source:\n{program.source}"
            )
            assert not result.unsolved, (
                f"fuzz{index}: branch conditions {result.unsolved} did "
                f"not solve (seed={SEED + index})\nsource:\n{program.source}"
            )

    @pytest.mark.parametrize("index", range(COUNT))
    def test_replayed_requests_match_a_leaky_concrete_execution(self, index):
        # Map each synthesized request onto its branch-assignment bits
        # (a key present in the request is the sentinel — truthy; an
        # absent key reads as '' — falsy) and re-run that exact
        # assignment with the exhaustive oracle's marker payload: it
        # must leak, or the replayer steered down a non-witness path.
        program = PROGRAMS[index]
        report = WebSSARI().verify_source(program.source, f"fuzz{index}.php")
        if report.bmc.safe:
            pytest.skip("no counterexamples to replay")
        for result in replay_source(program.source, report, f"fuzz{index}.php"):
            get = result.request.get("get", {})
            concrete = {program.payload_param: MARKER}
            for key in program.branch_params:
                if get.get(key):
                    concrete[key] = "1"
            env = run_php(program.source, HttpRequest(get=concrete))
            leaked = MARKER in env.response_body() or any(
                MARKER in query for query in env.database.query_log
            )
            assert leaked, (
                f"fuzz{index}: replayed request {result.request} maps to "
                f"branch assignment {concrete} which does not leak "
                f"(seed={SEED + index})\nsource:\n{program.source}"
            )


class TestVariantParity:
    @pytest.mark.parametrize("index", range(min(COUNT, 12)))
    def test_all_solver_and_cache_variants_agree(self, index):
        # A slice of the corpus keeps the dpll ablation affordable.
        program = PROGRAMS[index]
        variants = {
            ("cdcl", "off"): WebSSARI(solver="cdcl"),
            ("cdcl", "on"): WebSSARI(solver="cdcl", sat_cache=SatQueryCache()),
            ("dpll", "off"): WebSSARI(solver="dpll"),
            ("dpll", "on"): WebSSARI(solver="dpll", sat_cache=SatQueryCache()),
        }
        signatures = {
            key: signature(websari.verify_source(program.source, f"fuzz{index}.php"))
            for key, websari in variants.items()
        }
        baseline = signatures[("cdcl", "off")]
        for key, sig in signatures.items():
            assert sig == baseline, (
                f"fuzz{index}: variant {key} diverged (seed={SEED + index})\n"
                f"source:\n{program.source}"
            )
