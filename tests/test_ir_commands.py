"""Unit tests for the F(p) command/expression data types."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.commands import (
    Assign,
    Const,
    If,
    InputCall,
    Join,
    LevelConst,
    Seq,
    SinkCall,
    Stop,
    VarRef,
    While,
    count_commands,
    join_exprs,
    variables_of_expr,
)
from repro.php.span import Span

SPAN = Span.synthetic()


class TestJoinExprs:
    def test_empty_is_const(self):
        assert join_exprs([]) == Const()

    def test_all_consts_collapse(self):
        assert join_exprs([Const(), Const()]) == Const()

    def test_singleton_unwraps(self):
        assert join_exprs([VarRef("x")]) == VarRef("x")

    def test_consts_dropped(self):
        assert join_exprs([Const(), VarRef("x"), Const()]) == VarRef("x")

    def test_nested_joins_flatten(self):
        inner = Join((VarRef("a"), VarRef("b")))
        result = join_exprs([inner, VarRef("c")])
        assert result == Join((VarRef("a"), VarRef("b"), VarRef("c")))

    def test_level_consts_kept(self):
        result = join_exprs([LevelConst("tainted"), Const()])
        assert result == LevelConst("tainted")


class TestVariablesOfExpr:
    def test_var_ref(self):
        assert variables_of_expr(VarRef("x")) == {"x"}

    def test_consts_have_none(self):
        assert variables_of_expr(Const()) == set()
        assert variables_of_expr(LevelConst("t")) == set()

    def test_join_unions(self):
        expr = Join((VarRef("a"), Join((VarRef("b"), Const())), VarRef("a")))
        assert variables_of_expr(expr) == {"a", "b"}


class TestCountCommands:
    def test_atomic(self):
        assert count_commands(Assign("x", Const(), SPAN)) == 1
        assert count_commands(Stop(SPAN)) == 1
        assert count_commands(SinkCall("echo", ("x",), "t", SPAN)) == 1
        assert count_commands(InputCall("extract", (), "t", SPAN)) == 1

    def test_seq_sums(self):
        seq = Seq((Assign("x", Const(), SPAN), Stop(SPAN)))
        assert count_commands(seq) == 2

    def test_if_counts_itself_and_branches(self):
        branch = If(
            Seq((Assign("a", Const(), SPAN),)),
            Seq((Assign("b", Const(), SPAN), Assign("c", Const(), SPAN))),
            SPAN,
        )
        assert count_commands(branch) == 4

    def test_while_counts_body(self):
        loop = While(Seq((Assign("a", Const(), SPAN),)), SPAN)
        assert count_commands(loop) == 2

    def test_empty_seq(self):
        assert count_commands(Seq(())) == 0


class TestStringRendering:
    def test_command_strs(self):
        assert str(Assign("x", VarRef("y"), SPAN)) == "$x := $y"
        assert str(Stop(SPAN)) == "stop"
        assert "pre: <" in str(SinkCall("echo", ("x",), "tainted", SPAN))
        assert "post:" in str(InputCall("extract", ("a",), "tainted", SPAN))
        assert "while *" in str(While(Seq(()), SPAN))
        assert "if *" in str(If(Seq(()), Seq(()), SPAN))

    def test_expr_strs(self):
        assert str(VarRef("x")) == "$x"
        assert str(Const()) == "const"
        assert str(LevelConst("tainted")) == "<tainted>"
        assert str(Join((VarRef("a"), VarRef("b")))) == "($a ~ $b)"

    def test_seq_iteration(self):
        seq = Seq((Stop(SPAN), Stop(SPAN)))
        assert len(seq) == 2
        assert all(isinstance(c, Stop) for c in seq)


# -- properties ---------------------------------------------------------------


@st.composite
def random_expr(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(
            st.sampled_from(
                [Const(), LevelConst("tainted"), VarRef("a"), VarRef("b"), VarRef("c")]
            )
        )
    width = draw(st.integers(min_value=0, max_value=3))
    return join_exprs([draw(random_expr(depth=depth - 1)) for _ in range(width)])


@settings(max_examples=150, deadline=None)
@given(st.lists(random_expr(), max_size=5))
def test_join_exprs_never_nests_joins(operands):
    result = join_exprs(operands)
    if isinstance(result, Join):
        assert len(result.operands) >= 2
        assert not any(isinstance(op, Join) for op in result.operands)
        assert not any(isinstance(op, Const) for op in result.operands)


@settings(max_examples=150, deadline=None)
@given(st.lists(random_expr(), max_size=5))
def test_join_exprs_preserves_variables(operands):
    result = join_exprs(operands)
    expected = set()
    for op in operands:
        expected |= variables_of_expr(op)
    assert variables_of_expr(result) == expected
