"""Fleet observability end-to-end (deterministic, in-process): two worker
nodes alternately lease single files from one coordinator, run the real
audit engine with node-local registries, and piggyback cumulative metric
snapshots on their protocol requests.  The coordinator's ``/metrics``
must then expose per-node AND fleet-summed series whose file/assertion
counter totals equal a single-box audit of the same corpus, and the
merged JSONL report must print a slow-query table with at least one
entry per node."""

import json

import pytest

from repro.engine import AuditEngine, AuditTask, EngineConfig
from repro.obs import MetricsRegistry, load_audit, render_dashboard, render_report
from repro.service import Coordinator

CORPUS = {
    "vuln_a.php": "<?php echo $_GET['a'];\n",
    "vuln_b.php": "<?php echo $_GET['b'];\n",
    "safe_c.php": "<?php echo htmlspecialchars($_GET['c']);\n",
    "safe_d.php": "<?php echo 'static';\n",
}


def make_engine(registry):
    return AuditEngine(config=EngineConfig(jobs=1, metrics=registry))


def run_single_box():
    registry = MetricsRegistry()
    tasks = [
        AuditTask(index=i, filename=name, source=source)
        for i, (name, source) in enumerate(sorted(CORPUS.items()))
    ]
    result = make_engine(registry).run(tasks)
    return registry, result


class Node:
    """One in-process worker: its own engine, registry, and worker_id."""

    def __init__(self, coord, name):
        self.coord = coord
        self.name = name
        self.worker = coord.register_worker(name)
        self.registry = MetricsRegistry()
        self.engine = make_engine(self.registry)
        self.completed = 0

    def lease_and_run_one(self):
        """Lease via HTTP handler (so the snapshot rides the request the
        way the real client ships it), run the file, report the record."""
        body = json.dumps(
            {
                "worker_id": self.worker.worker_id,
                "max": 1,
                "metrics": self.registry.snapshot(),
            }
        ).encode()
        _status, _ctype, reply = self.coord.handle("POST", "/api/lease", body)
        tasks = json.loads(reply)["tasks"]
        if not tasks:
            return False
        item = tasks[0]
        result = self.engine.run(
            [AuditTask(index=0, filename=item["filename"], source=item["source"])]
        )
        self.coord.report_result(
            self.worker.worker_id, item["task_id"], result.outcomes[0].to_record()
        )
        self.completed += 1
        return True

    def release(self):
        body = json.dumps(
            {"worker_id": self.worker.worker_id, "metrics": self.registry.snapshot()}
        ).encode()
        self.coord.handle("POST", "/api/workers/release", body)


@pytest.fixture(scope="module")
def fleet():
    """Run the whole two-node fleet once; the tests assert on its wake."""
    single_registry, single_result = run_single_box()
    coord = Coordinator(lease_timeout=60.0)
    try:
        job = coord.submit_files(CORPUS)
        nodes = [Node(coord, "wa"), Node(coord, "wb")]
        # Strict alternation: with 4 files each node audits exactly 2.
        progressed = True
        while progressed:
            progressed = False
            for node in nodes:
                progressed = node.lease_and_run_one() or progressed
        for node in nodes:
            node.release()
        metrics_text = coord.handle("GET", "/metrics", b"")[2].decode()
        stream = coord.render_job_stream(job)
        yield {
            "single_registry": single_registry,
            "single_result": single_result,
            "nodes": nodes,
            "metrics": metrics_text,
            "stream": stream,
        }
    finally:
        coord.close()


def family_total(text, name, node_labelled):
    """Sum one counter family's samples, split on node attribution."""
    total = 0.0
    seen = False
    for line in text.splitlines():
        if not (line.startswith(f"{name} ") or line.startswith(f"{name}{{")):
            continue
        if ("node=" in line) != node_labelled:
            continue
        total += float(line.split()[-1])
        seen = True
    assert seen, f"no {'node' if node_labelled else 'fleet'} series {name!r} in:\n{text}"
    return total


class TestFleetMetricsEndpoint:
    def test_both_nodes_did_work(self, fleet):
        assert [node.completed for node in fleet["nodes"]] == [2, 2]

    def test_per_node_series_present(self, fleet):
        text = fleet["metrics"]
        assert 'repro_files_total{node="wa",status="ok"} 2' in text
        assert 'repro_files_total{node="wb",status="ok"} 2' in text

    def test_fleet_sums_equal_single_box(self, fleet):
        text = fleet["metrics"]
        single = fleet["single_registry"]
        for name in ("repro_files_total", "repro_assertions_total"):
            expected = sum(single._metrics[name]._values.values())
            assert expected > 0, name
            assert family_total(text, name, node_labelled=False) == expected, name
            assert family_total(text, name, node_labelled=True) == expected, name

    def test_stage_histograms_cover_all_files(self, fleet):
        single = fleet["single_registry"]
        expected = single.histogram("repro_stage_seconds").count(stage="sat")
        assert expected > 0
        assert f'repro_stage_seconds_count{{stage="sat"}} {expected}' in fleet["metrics"]

    def test_quantile_gauges_exposed(self, fleet):
        assert "# TYPE repro_file_seconds_quantile gauge" in fleet["metrics"]


class TestMergedStreamReport:
    def test_verdicts_match_single_box(self, fleet, tmp_path):
        path = tmp_path / "merged.jsonl"
        path.write_text(fleet["stream"])
        run = load_audit(path)
        merged = {
            record["filename"]: (record["status"], record.get("safe"))
            for record in run.by_filename().values()
        }
        single = {
            outcome.filename: (outcome.status, outcome.safe)
            for outcome in fleet["single_result"].outcomes
        }
        assert merged == single

    def test_slow_query_table_has_entries_for_every_node(self, fleet, tmp_path):
        path = tmp_path / "merged.jsonl"
        path.write_text(fleet["stream"])
        run = load_audit(path)
        slow = run.slow_queries()
        assert {query["node"] for query in slow} == {"wa", "wb"}
        text = render_report(run)
        assert "slow queries" in text
        assert "node wa" in text and "node wb" in text

    def test_dashboard_renders_fleet_stream(self, fleet, tmp_path):
        path = tmp_path / "merged.jsonl"
        path.write_text(fleet["stream"])
        page = render_dashboard(load_audit(path))
        assert "id='nodes'" in page and ">wa<" in page and ">wb<" in page
        assert "id='slow-queries'" in page
