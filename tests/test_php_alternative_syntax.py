"""Tests for PHP's alternative (template) statement syntax."""

import pytest

from repro import WebSSARI
from repro.interp import HttpRequest, run_php
from repro.php import ParseError, parse
from repro.php import ast_nodes as ast


def first_stmt(source):
    return parse("<?php " + source).statements[0]


class TestParsing:
    def test_if_endif(self):
        stmt = first_stmt("if ($c): $x = 1; endif;")
        assert isinstance(stmt, ast.If)
        assert len(stmt.then.statements) == 1

    def test_if_else_endif(self):
        stmt = first_stmt("if ($c): $x = 1; else: $x = 2; endif;")
        assert stmt.orelse is not None

    def test_if_elseif_chain(self):
        stmt = first_stmt("if ($a): $x = 1; elseif ($b): $x = 2; else: $x = 3; endif;")
        assert len(stmt.elseifs) == 1
        assert stmt.orelse is not None

    def test_while_endwhile(self):
        stmt = first_stmt("while ($c): $i++; endwhile;")
        assert isinstance(stmt, ast.While)

    def test_for_endfor(self):
        stmt = first_stmt("for ($i = 0; $i < 3; $i++): echo $i; endfor;")
        assert isinstance(stmt, ast.For)

    def test_foreach_endforeach(self):
        stmt = first_stmt("foreach ($rows as $row): echo $row; endforeach;")
        assert isinstance(stmt, ast.Foreach)

    def test_switch_endswitch(self):
        stmt = first_stmt("switch ($x): case 1: echo 'a'; break; default: echo 'b'; endswitch;")
        assert isinstance(stmt, ast.Switch)
        assert len(stmt.cases) == 2

    def test_template_interleaving_with_html(self):
        # The reason this syntax exists: statements spanning tag breaks.
        source = "<?php if ($loggedin): ?><b>Welcome!</b><?php else: ?>Log in<?php endif; ?>"
        program = parse(source)
        branch = program.statements[0]
        assert isinstance(branch, ast.If)
        assert isinstance(branch.then.statements[0], ast.InlineHTML)
        assert isinstance(branch.orelse.statements[0], ast.InlineHTML)

    def test_nested_alternative_blocks(self):
        source = "if ($a): if ($b): $x = 1; endif; endif;"
        stmt = first_stmt(source)
        inner = stmt.then.statements[0]
        assert isinstance(inner, ast.If)

    def test_unterminated_rejected(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse("<?php if ($c): $x = 1;")

    def test_wrong_terminator_rejected(self):
        with pytest.raises(ParseError):
            parse("<?php if ($c): $x = 1; endwhile;")


class TestAnalysisAndExecution:
    def test_taint_through_alternative_if(self):
        source = "<?php if ($c): $x = $_GET['q']; endif; echo $x;"
        assert not WebSSARI().verify_source(source).safe

    def test_alternative_template_executes(self):
        source = (
            "<?php if ($_GET['in'] == '1'): ?>"
            "<b>Welcome</b>"
            "<?php else: ?>"
            "Please log in"
            "<?php endif; ?>"
        )
        assert "Welcome" in run_php(source, request=HttpRequest(get={"in": "1"})).response_body()
        assert "log in" in run_php(source, request=HttpRequest(get={"in": "0"})).response_body()

    def test_foreach_template_loop(self):
        source = (
            "<?php $items = array('a', 'b'); foreach ($items as $item): ?>"
            "<li><?= $item ?></li>"
            "<?php endforeach; ?>"
        )
        assert run_php(source).response_body() == "<li>a</li><li>b</li>"

    def test_alternative_while_runs(self):
        source = "<?php $i = 0; while ($i < 3): echo $i; $i++; endwhile;"
        assert run_php(source).response_body() == "012"

    def test_alternative_switch_runs(self):
        source = "<?php switch (2): case 1: echo 'a'; break; case 2: echo 'b'; break; endswitch;"
        assert run_php(source).response_body() == "b"

    def test_template_xss_detected_and_patched(self):
        source = (
            "<?php if ($_GET['greet'] == '1'): $name = $_GET['name']; ?>"
            "Hello <?= $name ?>!"
            "<?php endif; ?>"
        )
        websari = WebSSARI()
        report = websari.verify_source(source)
        assert not report.safe
        _, patched = websari.patch_source(source, strategy="bmc")
        assert websari.verify_source(patched.source).safe