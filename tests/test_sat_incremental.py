"""Tests for the incremental CDCL machinery and the portfolio racer.

ISSUE 8 coverage: assumption-prefix reuse across the enumeration,
lazy dead-clause sweeps after gate retirement, learned-clause
export/import (directly and through the query cache's isomorphism
renaming), seeded search determinism, the ``incremental=False``
ablation, and portfolio racing with first-winner-cancels semantics and
wasted-conflict accounting.
"""

import itertools

import pytest

from repro.sat.cache import CachingSatSolver, SatQueryCache
from repro.sat.cnf import CNF
from repro.sat.portfolio import PortfolioConfig, PortfolioSolver, default_configs
from repro.sat.solver import CDCLSolver


def pigeonhole(holes: int) -> CNF:
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    cnf = CNF()
    for p in range(pigeons):
        cnf.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause((-var(p1, h), -var(p2, h)))
    return cnf


def brute_force_satisfiable(cnf: CNF) -> bool:
    variables = sorted(cnf.variables())
    if cnf.has_empty_clause:
        return False
    for values in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            return True
    return not cnf.clauses


class TestAssumptionPrefixReuse:
    def test_shared_prefix_is_counted(self):
        # BMC enumeration shape: a stable activation prefix plus a
        # varying tail.  The second solve shares [10] and must say so.
        cnf = CNF([(1, 2), (-1, 3), (10, 11)])
        solver = CDCLSolver(cnf)
        assert solver.solve(assumptions=[10, 1]).satisfiable is True
        result = solver.solve(assumptions=[10, 2])
        assert result.satisfiable is True
        assert result.stats.assumption_prefix_reused == 1

    def test_identical_assumptions_reuse_whole_trail(self):
        cnf = CNF([(1, 2, 3)])
        solver = CDCLSolver(cnf)
        first = solver.solve(assumptions=[1])
        second = solver.solve(assumptions=[1])
        assert first.satisfiable and second.satisfiable
        assert second.stats.assumption_prefix_reused == 1
        # The kept trail means no new decisions were needed.
        assert second.stats.decisions == 0

    def test_enumeration_with_blocking_clauses_stays_correct(self):
        # All 7 models of (1 ∨ 2 ∨ 3) under a gate, enumerated the way
        # the checker does it: assume the gate, block each model.
        cnf = CNF([(-4, 1, 2, 3)])
        solver = CDCLSolver(cnf)
        models = set()
        while True:
            result = solver.solve(assumptions=[4])
            if not result.satisfiable:
                break
            model = tuple(result.model[v] for v in (1, 2, 3))
            assert any(model)
            assert model not in models
            models.add(model)
            solver.add_clause(
                [-4] + [-v if result.model[v] else v for v in (1, 2, 3)]
            )
        assert len(models) == 7
        # Retiring the gate leaves the formula satisfiable (gate off).
        solver.add_clause((-4,))
        assert solver.solve().satisfiable is True

    def test_prefix_reuse_across_sat_and_unsat(self):
        solver = CDCLSolver(CNF([(1, 2)]))
        assert solver.solve(assumptions=[-1]).satisfiable is True
        assert solver.solve(assumptions=[-1, -2]).satisfiable is False
        assert solver.solve(assumptions=[-1]).satisfiable is True
        assert solver.solve().satisfiable is True


class TestDeadClauseSweep:
    def test_root_satisfied_clauses_are_reclaimed(self):
        # Many clauses all satisfied once gate 1 is retired; the sweep
        # is lazy and amortized, so force enough root units to cross the
        # geometric threshold.
        cnf = CNF()
        for v in range(2, 80):
            cnf.add_clause((-1, v, v + 100))
        solver = CDCLSolver(cnf)
        assert solver.solve(assumptions=[1]).satisfiable is True
        solver.add_clause((-1,))  # retire the gate
        for v in range(300, 400):  # pile up root units to trip the sweep
            solver.add_clause((v,))
        result = solver.solve()
        assert result.satisfiable is True
        assert result.stats.root_satisfied_deleted >= 78

    def test_sweep_preserves_verdicts(self):
        cnf = CNF([(-1, 2), (-1, 3), (2, 3, 4)])
        solver = CDCLSolver(cnf)
        assert solver.solve(assumptions=[1]).satisfiable is True
        solver.add_clause((-1,))
        for v in range(10, 80):
            solver.add_clause((v,))
        assert solver.solve().satisfiable is True
        assert solver.solve(assumptions=[-2, -3, -4]).satisfiable is False


class TestLearnedClauseExchange:
    def test_export_then_import_roundtrip(self):
        donor = CDCLSolver(pigeonhole(5))
        assert donor.solve().satisfiable is False
        records = donor.export_learned()
        assert records, "hard UNSAT must export lemmas"
        for lits, lbd in records:
            assert len(lits) >= 2 and lbd <= 4 and len(lits) <= 16

        receiver = CDCLSolver(pigeonhole(5))
        imported = receiver.import_learned(records)
        assert imported == len(records)
        result = receiver.solve()
        assert result.satisfiable is False
        assert result.stats.learned_imported == imported

    def test_import_respects_root_simplification(self):
        solver = CDCLSolver(CNF([(1,), (2, 3)]))
        assert solver.solve().satisfiable is True
        # (−1 ∨ 2): literal −1 is root-false, so this imports as unit 2.
        solver.import_learned([([-1, 2], 2)])
        result = solver.solve(assumptions=[-2])
        assert result.satisfiable is False

    def test_imported_lemmas_never_change_verdicts(self):
        # Lemmas of a formula are consequences of it: importing them
        # into an identical instance preserves every assumption verdict.
        donor = CDCLSolver(pigeonhole(4))
        assert donor.solve().satisfiable is False
        receiver = CDCLSolver(pigeonhole(4))
        receiver.import_learned(donor.export_learned())
        assert receiver.solve().satisfiable is False


class TestCacheLearnedSharing:
    def _formula(self, offset: int) -> CNF:
        # Pigeonhole renamed by an offset: isomorphic, distinct vars.
        base = pigeonhole(5)
        cnf = CNF()
        for clause in base.clauses:
            cnf.add_clause(
                tuple(
                    lit + offset if lit > 0 else lit - offset for lit in clause
                )
            )
        return cnf

    def test_isomorphic_query_imports_lemmas(self):
        cache = SatQueryCache()
        donor = CachingSatSolver(CDCLSolver(), cache)
        donor.add_formula(self._formula(0))
        assert donor.solve().satisfiable is False
        assert cache.learned_stores == 1

        receiver = CachingSatSolver(CDCLSolver(), cache)
        receiver.add_formula(self._formula(50))
        # Assuming a formula variable makes this query canonically
        # distinct from the donor's → query-cache miss — but the clause
        # stream is isomorphic, so the donor's lemmas import.
        result = receiver.solve(assumptions=[51])
        assert result.satisfiable is False
        assert cache.learned_hits == 1
        assert result.stats.learned_imported > 0

    def test_share_learned_off_is_inert(self):
        cache = SatQueryCache()
        solver = CachingSatSolver(CDCLSolver(), cache, share_learned=False)
        solver.add_formula(pigeonhole(5))
        assert solver.solve().satisfiable is False
        assert cache.learned_stores == 0 and cache.learned_hits == 0

    def test_learned_records_do_not_touch_query_counters(self):
        cache = SatQueryCache()
        cache.put_learned("k", [[2, 1, 2]])
        assert cache.get_learned("k") == [[2, 1, 2]]
        assert cache.hits == 0 and cache.misses == 0
        assert cache.learned_stores == 1 and cache.learned_hits == 1


class TestSeedAndAblation:
    def test_seed_zero_matches_unseeded_search(self):
        a = CDCLSolver(pigeonhole(5), seed=0).solve()
        b = CDCLSolver(pigeonhole(5)).solve()
        assert (a.satisfiable, a.stats.decisions, a.stats.conflicts) == (
            b.satisfiable,
            b.stats.decisions,
            b.stats.conflicts,
        )

    def test_same_seed_is_deterministic(self):
        a = CDCLSolver(pigeonhole(5), seed=7).solve()
        b = CDCLSolver(pigeonhole(5), seed=7).solve()
        assert a.stats.decisions == b.stats.decisions
        assert a.stats.conflicts == b.stats.conflicts

    def test_seeds_never_change_verdicts(self):
        for seed in (0, 1, 7, 12345):
            assert CDCLSolver(pigeonhole(4), seed=seed).solve().satisfiable is False
            sat = CDCLSolver(CNF([(1, 2), (-1, 3)]), seed=seed).solve()
            assert sat.satisfiable is True

    def test_non_incremental_matches_incremental_verdicts(self):
        cnf = CNF([(1, 2), (-1, 3), (-2, -3, 4)])
        inc = CDCLSolver(cnf, incremental=True)
        non = CDCLSolver(cnf, incremental=False)
        for assumptions in ([], [1], [1, -3], [-4, 2], [1, 2, 3, -4]):
            assert (
                inc.solve(assumptions=assumptions).satisfiable
                == non.solve(assumptions=assumptions).satisfiable
            ), assumptions


class TestPortfolioSolver:
    def test_easy_query_never_races(self):
        solver = PortfolioSolver()
        solver.add_formula(CNF([(1, 2), (-1, 3)]))
        result = solver.solve()
        assert result.satisfiable is True
        assert solver.last_raced is False
        assert result.stats.portfolio_races == 0

    def test_budget_blowout_triggers_race_and_names_winner(self):
        solver = PortfolioSolver(primary_budget=2, slice_budget=8)
        solver.add_formula(pigeonhole(6))
        result = solver.solve()
        assert result.satisfiable is False
        assert solver.last_raced is True
        assert solver.last_winner is not None
        assert result.stats.portfolio_races == 1
        assert result.stats.portfolio_wasted_conflicts >= 0

    def test_race_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            solver = PortfolioSolver(primary_budget=2, slice_budget=8)
            solver.add_formula(pigeonhole(6))
            result = solver.solve()
            outcomes.append(
                (
                    result.satisfiable,
                    solver.last_winner,
                    result.stats.portfolio_wasted_conflicts,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_caller_budget_still_bounds_the_solve(self):
        solver = PortfolioSolver(primary_budget=4)
        solver.add_formula(pigeonhole(7))
        result = solver.solve(conflict_budget=3)
        assert result.satisfiable is None
        assert solver.last_winner is None

    def test_blocking_enumeration_through_portfolio(self):
        solver = PortfolioSolver()
        solver.add_formula(CNF([(1, 2)]))
        models = set()
        while True:
            result = solver.solve()
            if not result.satisfiable:
                break
            model = (result.model[1], result.model[2])
            models.add(model)
            solver.add_clause([-v if result.model[v] else v for v in (1, 2)])
        assert len(models) == 3

    def test_custom_config_list(self):
        configs = [
            PortfolioConfig(name="only", restart_strategy="luby", seed=3),
        ]
        solver = PortfolioSolver(configs=configs, primary_budget=1, slice_budget=4)
        solver.add_formula(pigeonhole(5))
        result = solver.solve()
        assert result.satisfiable is False
        assert solver.last_winner == "only"

    def test_default_configs_cover_four_lanes(self):
        configs = default_configs("geometric", 0)
        names = [c.name for c in configs]
        assert names[0] == "cdcl-geometric"
        assert "dpll" in names
        assert len(names) == 4

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            PortfolioSolver(configs=[])


class TestCheckerPortfolioIntegration:
    def _vulnerable_source(self) -> str:
        return "<?php $a = $_GET['x']; echo $a;\n"

    def test_winner_lands_in_ledger_and_totals(self):
        from repro.websari.pipeline import WebSSARI

        websari = WebSSARI(solver="portfolio")
        report = websari.verify_source(self._vulnerable_source(), "v.php")
        assert report.safe is False
        # Even unraced queries attribute their (primary) configuration
        # in the slow-query ledger.
        assert report.bmc.slow_queries
        assert all(
            q.get("winner") == "cdcl-geometric" for q in report.bmc.slow_queries
        )

    def test_raced_query_attributes_winner(self, monkeypatch):
        # Shrink the primary budget to zero so any query with a single
        # conflict races, then check the attribution plumbing end to
        # end: per-winner totals and the slow-query ledger's winner.
        import repro.bmc.checker as checker_mod
        from repro.websari.pipeline import WebSSARI

        real = checker_mod.PortfolioSolver
        monkeypatch.setattr(
            checker_mod,
            "PortfolioSolver",
            lambda **kw: real(primary_budget=0, slice_budget=4, **kw),
        )
        source = (
            "<?php $y = 'ok';\n"
            + "".join(
                f"if ($_GET['b{i}']) {{ $y = $y . $_GET['b{i}']; }}\n"
                for i in range(6)
            )
            + "echo $y;\n"
        )
        websari = WebSSARI(solver="portfolio")
        report = websari.verify_source(source, "race.php")
        stats = report.bmc.solver_stats
        assert stats.get("portfolio_races", 0) >= 1
        wins = {k: v for k, v in stats.items() if k.startswith("portfolio_win_")}
        assert wins, f"no per-winner totals in {stats}"
        assert sum(wins.values()) == stats["portfolio_races"]
        raced = [q for q in report.bmc.slow_queries if "winner" in q]
        assert raced, "ledger must name the winning configuration"
        assert all(
            q["winner"].replace("-", "_") in {k[len("portfolio_win_"):] for k in wins}
            for q in raced
        )
