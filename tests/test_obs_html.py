"""The ``repro report --html`` dashboard: self-contained output, escaping,
and headless-parseable structure (verdict table, stage-latency section,
slow-query table, node attribution)."""

import json
from html.parser import HTMLParser

import pytest

from repro.obs import load_audit, render_dashboard


class PageModel(HTMLParser):
    """Minimal headless parse: ids, table rows keyed by enclosing id."""

    def __init__(self):
        super().__init__()
        self.ids = []
        self._current_table = None
        self._row = None
        self._cell = None
        self.tables = {}

    def handle_starttag(self, tag, attrs):
        attrs = dict(attrs)
        if "id" in attrs:
            self.ids.append(attrs["id"])
            if tag == "table":
                self._current_table = attrs["id"]
                self.tables[self._current_table] = []
        if tag == "tr" and self._current_table:
            self._row = []
        if tag in ("td", "th") and self._row is not None:
            self._cell = []

    def handle_endtag(self, tag):
        if tag in ("td", "th") and self._cell is not None:
            self._row.append("".join(self._cell).strip())
            self._cell = None
        if tag == "tr" and self._row is not None:
            self.tables[self._current_table].append(self._row)
            self._row = None
        if tag == "table":
            self._current_table = None

    def handle_data(self, data):
        if self._cell is not None:
            self._cell.append(data)


def write_stream(path, records, trailers):
    lines = [json.dumps({"type": "file", **r}) for r in records]
    lines += [json.dumps({"type": "stats", **t}) for t in trailers]
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture
def fleet_run(tmp_path):
    records = [
        {
            "filename": "a.php", "status": "ok", "safe": True, "node": "w1",
            "duration": 0.2, "timings": {"parse": 0.1, "sat": 0.1},
            "num_ai_assertions": 2,
            "slow_queries": [
                {"seconds": 0.08, "file": "a.php", "assert_id": 1,
                 "decisions": 5, "conflicts": 1, "fingerprint": "ab" * 32,
                 "node": "w1"},
            ],
        },
        {
            "filename": "<evil>&.php", "status": "ok", "safe": False,
            "node": "w2", "duration": 0.4,
            "timings": {"parse": 0.2, "sat": 0.2},
            "slow_queries": [
                {"seconds": 0.15, "file": "<evil>&.php", "assert_id": 3,
                 "decisions": 9, "conflicts": 2, "fingerprint": "cd" * 32,
                 "node": "w2"},
            ],
        },
        {"filename": "broken.php", "status": "parse-error", "safe": None,
         "node": "w1", "error": "unexpected token <script>"},
    ]
    trailers = [
        {"node": "w1", "files": 2, "safe": 1, "vulnerable": 0, "failed": 1,
         "slow_queries": records[0]["slow_queries"]},
        {"node": "w2", "files": 1, "safe": 0, "vulnerable": 1, "failed": 0,
         "slow_queries": records[1]["slow_queries"]},
        {"total": 3, "files": 3, "safe": 1, "vulnerable": 1, "failed": 1,
         "wall_seconds": 0.7,
         "slow_queries": records[1]["slow_queries"] + records[0]["slow_queries"]},
    ]
    return load_audit(write_stream(tmp_path / "fleet.jsonl", records, trailers))


class TestRenderDashboard:
    def test_self_contained(self, fleet_run):
        page = render_dashboard(fleet_run)
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page
        assert "http://" not in page and "https://" not in page
        assert "<style>" in page

    def test_required_sections_parseable(self, fleet_run):
        model = PageModel()
        model.feed(render_dashboard(fleet_run))
        for required in ("verdicts", "stage-latency", "slow-queries", "nodes"):
            assert required in model.ids

    def test_verdict_table_rows(self, fleet_run):
        model = PageModel()
        model.feed(render_dashboard(fleet_run))
        rows = model.tables["verdicts"]
        assert rows[0][:3] == ["file", "verdict", "confirmed"]
        by_file = {row[0]: row for row in rows[1:]}
        assert by_file["a.php"][1] == "safe"
        assert by_file["<evil>&.php"][1] == "vulnerable"
        assert by_file["broken.php"][1] == "parse-error"
        assert by_file["a.php"][2] == "—"  # no replay section
        assert by_file["a.php"][5] == "w1"

    def test_stage_latency_section_has_quantiles_and_bars(self, fleet_run):
        page = render_dashboard(fleet_run)
        section = page[page.index("stage-latency"):]
        assert "p50" in section and "p99" in section
        assert "bucket-interpolated" in section
        assert "class='bar'" in section

    def test_slow_query_table_attributes_nodes(self, fleet_run):
        model = PageModel()
        model.feed(render_dashboard(fleet_run))
        rows = model.tables["slow-queries"]
        nodes = {row[5] for row in rows[1:]}
        assert nodes == {"w1", "w2"}
        # Fingerprints are truncated for display.
        assert rows[1][6] == ("cd" * 32)[:12]

    def test_node_table(self, fleet_run):
        model = PageModel()
        model.feed(render_dashboard(fleet_run))
        rows = model.tables["nodes"]
        assert [row[0] for row in rows[1:]] == ["w1", "w2"]

    def test_filenames_and_errors_escaped(self, fleet_run):
        page = render_dashboard(fleet_run)
        assert "&lt;evil&gt;&amp;.php" in page
        assert "<evil>" not in page
        assert "unexpected token &lt;script&gt;" in page

    def test_deterministic(self, fleet_run):
        assert render_dashboard(fleet_run) == render_dashboard(fleet_run)

    def test_truncated_stream_warns(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(json.dumps(
            {"type": "file", "filename": "a.php", "status": "ok", "safe": True}
        ) + "\n")
        page = render_dashboard(load_audit(path))
        assert "no stats trailer" in page

    def test_empty_ledger_stream_renders(self, tmp_path):
        """A stream whose trailers carry empty slow_queries lists (fast
        fleet) still renders, with an explicit no-ledger message."""
        path = write_stream(
            tmp_path / "fast.jsonl",
            [{"filename": "a.php", "status": "ok", "safe": True}],
            [{"total": 1, "files": 1, "safe": 1, "vulnerable": 0, "failed": 0,
              "wall_seconds": 0.1, "slow_queries": []}],
        )
        page = render_dashboard(load_audit(path))
        assert "no slow-query ledger" in page
