"""Tests for PHP class support across parser, filter/BMC, and interpreter."""

import pytest

from repro import WebSSARI
from repro.interp import HttpRequest, run_php
from repro.php import ParseError, parse
from repro.php import ast_nodes as ast


def first_stmt(source):
    return parse("<?php " + source).statements[0]


class TestClassParsing:
    def test_empty_class(self):
        decl = first_stmt("class Foo {}")
        assert isinstance(decl, ast.ClassDecl)
        assert decl.name == "Foo"
        assert decl.parent is None

    def test_extends(self):
        decl = first_stmt("class Child extends Base {}")
        assert decl.parent == "Base"

    def test_var_properties(self):
        decl = first_stmt("class C { var $a; var $b = 3; }")
        assert [p.name for p in decl.properties] == ["a", "b"]
        assert decl.properties[1].default.value == 3

    def test_visibility_properties(self):
        decl = first_stmt("class C { public $a; private $b; protected $c; }")
        assert [p.visibility for p in decl.properties] == ["public", "private", "protected"]

    def test_comma_separated_properties(self):
        decl = first_stmt("class C { var $a, $b; }")
        assert [p.name for p in decl.properties] == ["a", "b"]

    def test_methods(self):
        decl = first_stmt("class C { function m($x) { return $x; } }")
        assert decl.methods[0].name == "m"
        assert decl.method("M") is not None  # case-insensitive

    def test_public_function(self):
        decl = first_stmt("class C { public function m() {} }")
        assert decl.methods[0].name == "m"

    def test_php4_constructor(self):
        decl = first_stmt("class Ticket { function Ticket($s) { $this->s = $s; } }")
        assert decl.constructor is not None
        assert decl.constructor.name == "Ticket"

    def test_php5_constructor(self):
        decl = first_stmt("class C { function __construct() {} }")
        assert decl.constructor is not None

    def test_garbage_in_class_body_rejected(self):
        with pytest.raises(ParseError):
            parse("<?php class C { $loose = 1; }")

    def test_unterminated_class(self):
        with pytest.raises(ParseError):
            parse("<?php class C { function m() {}")


class TestClassAnalysis:
    @pytest.fixture(scope="class")
    def websari(self):
        return WebSSARI()

    def test_taint_through_property(self, websari):
        source = """<?php
class Ticket {
  var $subject;
  function Ticket($s) { $this->subject = $s; }
  function render() { echo $this->subject; }
}
$t = new Ticket($_POST['subject']);
$t->render();
"""
        report = websari.verify_source(source)
        assert not report.safe
        assert report.ts_error_count == 1

    def test_sanitized_constructor_is_safe(self, websari):
        source = """<?php
class Ticket {
  var $subject;
  function Ticket($s) { $this->subject = htmlspecialchars($s); }
  function render() { echo $this->subject; }
}
$t = new Ticket($_POST['subject']);
$t->render();
"""
        assert websari.verify_source(source).safe

    def test_method_return_value_flows(self, websari):
        source = """<?php
class Req {
  function param($k) { return $_GET[$k]; }
}
$r = new Req();
echo $r->param('q');
"""
        assert not websari.verify_source(source).safe

    def test_property_default_is_safe(self, websari):
        source = """<?php
class C { var $msg = 'hello'; }
$c = new C();
echo $c->msg;
"""
        assert websari.verify_source(source).safe

    def test_two_instances_are_independent(self, websari):
        source = """<?php
class Box { var $v; function fill($x) { $this->v = $x; } }
$dirty = new Box(); $dirty->fill($_GET['x']);
$clean = new Box(); $clean->fill('lit');
echo $clean->v;
"""
        assert websari.verify_source(source).safe

    def test_tainted_instance_flagged(self, websari):
        source = """<?php
class Box { var $v; function fill($x) { $this->v = $x; } }
$dirty = new Box(); $dirty->fill($_GET['x']);
echo $dirty->v;
"""
        assert not websari.verify_source(source).safe

    def test_inherited_method(self, websari):
        source = """<?php
class Base { function show($x) { echo $x; } }
class Child extends Base { }
$c = new Child();
$c->show($_GET['q']);
"""
        assert not websari.verify_source(source).safe

    def test_grouping_fixes_at_property_root(self, websari):
        source = """<?php
class M { var $v; function M($x) { $this->v = $x; } }
$m = new M($_GET['q']);
echo $m->v;
DoSQL($m->v);
"""
        report = websari.verify_source(source)
        assert report.ts_error_count == 2
        assert report.bmc_group_count == 1


class TestClassExecution:
    def test_construct_and_method(self):
        source = """<?php
class Greeter {
  var $name;
  function Greeter($n) { $this->name = $n; }
  function greet() { return 'Hello ' . $this->name; }
}
$g = new Greeter('World');
echo $g->greet();
"""
        assert run_php(source).response_body() == "Hello World"

    def test_php5_constructor_runs(self):
        source = """<?php
class C { var $v; function __construct() { $this->v = 'built'; } }
$c = new C();
echo $c->v;
"""
        assert run_php(source).response_body() == "built"

    def test_property_defaults_initialized(self):
        source = "<?php class C { var $x = 7; } $c = new C(); echo $c->x;"
        assert run_php(source).response_body() == "7"

    def test_inheritance_and_override(self):
        source = """<?php
class Animal {
  function speak() { return 'generic'; }
  function describe() { return 'I say ' . $this->speak(); }
}
class Dog extends Animal {
  function speak() { return 'woof'; }
}
$d = new Dog();
echo $d->describe();
"""
        assert run_php(source).response_body() == "I say woof"

    def test_method_mutates_state(self):
        source = """<?php
class Counter {
  var $n = 0;
  function bump() { $this->n = $this->n + 1; }
}
$c = new Counter();
$c->bump(); $c->bump(); $c->bump();
echo $c->n;
"""
        assert run_php(source).response_body() == "3"

    def test_static_call_on_declared_class(self):
        source = """<?php
class Util { function shout($s) { return strtoupper($s); } }
echo Util::shout('hi');
"""
        assert run_php(source).response_body() == "HI"

    def test_end_to_end_class_xss(self):
        source = """<?php
class Page {
  var $title;
  function Page($t) { $this->title = $t; }
  function render() { echo '<h1>' . $this->title . '</h1>'; }
}
$p = new Page($_GET['t']);
$p->render();
"""
        websari = WebSSARI()
        report = websari.verify_source(source)
        assert not report.safe
        env = run_php(source, request=HttpRequest(get={"t": "<script>x</script>"}))
        assert "<script>" in env.response_body()
        # Patch and confirm runtime neutralization.
        _, patched = websari.patch_source(source, strategy="ts")
        assert websari.verify_source(patched.source).safe
        env = run_php(patched.source, request=HttpRequest(get={"t": "<script>x</script>"}))
        assert "<script>" not in env.response_body()
