"""Tests for the ``repro audit`` subcommand and the verify/audit
exit-code contract (0 safe / 1 vulnerable wins / 2 errors only)."""

import json

import pytest

from repro.cli import _collect_php_files, main

VULN = "<?php echo $_GET['q'];\n"
SAFE = "<?php echo 'hello';\n"
BROKEN = "<?php if (\n"


@pytest.fixture
def corpus(tmp_path):
    root = tmp_path / "corpus"
    (root / "sub").mkdir(parents=True)
    (root / "vuln.php").write_text(VULN)
    (root / "safe.php").write_text(SAFE)
    (root / "sub" / "inner.php").write_text(SAFE)
    return root


def audit(*argv):
    return main(["audit", *map(str, argv)])


class TestCollectPhpFiles:
    def test_directory_plus_member_deduplicates(self, corpus):
        files = _collect_php_files([corpus, corpus / "vuln.php"])
        names = [f.name for f in files]
        assert names.count("vuln.php") == 1
        assert len(files) == 3

    def test_symlinked_duplicate_deduplicates(self, corpus, tmp_path):
        link = tmp_path / "link.php"
        link.symlink_to(corpus / "vuln.php")
        files = _collect_php_files([corpus / "vuln.php", link])
        assert len(files) == 1

    def test_dangling_symlink_skipped_with_warning(self, corpus, capsys):
        (corpus / "dangling.php").symlink_to(corpus / "missing.php")
        files = _collect_php_files([corpus])
        assert all(f.name != "dangling.php" for f in files)
        assert "skipping" in capsys.readouterr().err

    def test_explicit_file_kept_even_if_missing(self, tmp_path):
        missing = tmp_path / "nope.php"
        assert _collect_php_files([missing]) == [missing]


class TestAuditExitCodes:
    def test_all_safe_exit_zero(self, corpus):
        (corpus / "vuln.php").unlink()
        assert audit(corpus, "--no-cache") == 0

    def test_vulnerable_exit_one(self, corpus):
        assert audit(corpus, "--no-cache") == 1

    def test_error_only_exit_two(self, tmp_path):
        (tmp_path / "broken.php").write_text(BROKEN)
        assert audit(tmp_path, "--no-cache") == 2

    def test_vulnerability_beats_error(self, corpus):
        (corpus / "broken.php").write_text(BROKEN)
        assert audit(corpus, "--no-cache") == 1

    def test_empty_exit_two(self, tmp_path):
        assert audit(tmp_path) == 2

    def test_missing_explicit_file_exit_two(self, tmp_path, capsys):
        (tmp_path / "safe.php").write_text(SAFE)
        code = audit(tmp_path / "safe.php", tmp_path / "nope.php", "--no-cache")
        assert code == 2
        assert "nope.php" in capsys.readouterr().err


class TestAuditOutput:
    def test_reports_and_stats_printed(self, corpus, capsys):
        audit(corpus, "--no-cache")
        out = capsys.readouterr().out
        assert "vuln.php" in out and "VULNERABLE" in out
        assert "safe.php" in out and "SAFE" in out
        assert "audited 3/3" in out
        assert "cache:" in out

    def test_quiet_suppresses_reports(self, corpus, capsys):
        audit(corpus, "--no-cache", "--quiet")
        out = capsys.readouterr().out
        assert "VULNERABLE" not in out
        assert "audited 3/3" in out

    def test_detailed_prints_counterexample(self, corpus, capsys):
        audit(corpus, "--no-cache", "--detailed")
        assert "counterexample" in capsys.readouterr().out

    def test_frontend_error_on_stderr(self, tmp_path, capsys):
        (tmp_path / "broken.php").write_text(BROKEN)
        audit(tmp_path, "--no-cache")
        captured = capsys.readouterr()
        assert "frontend-error" in captured.err


class TestAuditCache:
    def test_second_invocation_hits_cache(self, corpus, tmp_path, capsys):
        cache_dir = tmp_path / "cachedir"
        assert audit(corpus, "--cache-dir", cache_dir) == 1
        first = capsys.readouterr().out
        assert audit(corpus, "--cache-dir", cache_dir) == 1
        second = capsys.readouterr().out
        assert "3 hit(s)" in second and "0 miss(es)" in second
        # Byte-identical per-file verdict text between cold and warm runs.
        strip = lambda out: [l for l in out.splitlines() if not l.startswith(("audited", "cache:", "stage time:", "solver:", "sat-cache:", "slowest sat query:"))]
        assert strip(first) == strip(second)

    def test_no_cache_flag(self, corpus, tmp_path, capsys):
        cache_dir = tmp_path / "cachedir"
        audit(corpus, "--cache-dir", cache_dir)
        capsys.readouterr()
        audit(corpus, "--cache-dir", cache_dir, "--no-cache")
        assert "0 hit(s)" in capsys.readouterr().out

    def test_edited_file_is_reaudited(self, corpus, tmp_path, capsys):
        cache_dir = tmp_path / "cachedir"
        audit(corpus, "--cache-dir", cache_dir)
        capsys.readouterr()
        (corpus / "safe.php").write_text(VULN)
        audit(corpus, "--cache-dir", cache_dir)
        assert "2 hit(s)" in capsys.readouterr().out


class TestAuditJsonl:
    def test_jsonl_written(self, corpus, tmp_path):
        out = tmp_path / "audit.jsonl"
        audit(corpus, "--no-cache", "--jsonl", out)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[-1]["type"] == "stats"
        files = [l for l in lines if l["type"] == "file"]
        assert len(files) == 3
        assert {l["status"] for l in files} == {"ok"}


class TestAuditParallel:
    def test_jobs_two_matches_inline(self, corpus, capsys):
        assert audit(corpus, "--no-cache", "--jobs", "2") == 1
        parallel_out = capsys.readouterr().out
        assert audit(corpus, "--no-cache", "--jobs", "1") == 1
        inline_out = capsys.readouterr().out
        strip = lambda out: [l for l in out.splitlines() if not l.startswith(("audited", "cache:", "stage time:", "solver:", "sat-cache:", "slowest sat query:"))]
        assert strip(parallel_out) == strip(inline_out)


class TestAuditObservability:
    def test_trace_flag_writes_valid_chrome_trace(self, corpus, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        audit(corpus, "--no-cache", "--trace", trace, "--quiet")
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        names = {e["name"] for e in events}
        assert any(name.startswith("file:") for name in names)
        assert {"parse", "filter", "ai", "sat", "sat.solve", "audit"} <= names
        solve = next(e for e in events if e["name"] == "sat.solve")
        assert "decisions" in solve["args"]
        assert "wrote trace" in capsys.readouterr().err

    def test_metrics_flag_writes_prometheus_snapshot(self, corpus, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        audit(corpus, "--no-cache", "--metrics", prom, "--quiet")
        text = prom.read_text()
        assert "# TYPE repro_files_total counter" in text
        assert 'repro_files_total{status="ok"} 3' in text
        assert "repro_file_seconds_count 3" in text
        assert "wrote metrics" in capsys.readouterr().err

    def test_solver_dpll_backend(self, corpus, capsys):
        assert audit(corpus, "--no-cache", "--solver", "dpll") == 1
        out = capsys.readouterr().out
        assert "VULNERABLE" in out and "solver:" in out


class TestVerifyObservability:
    def test_stats_prints_solver_and_formula_lines(self, corpus, capsys):
        assert main(["verify", str(corpus / "vuln.php"), "--stats"]) == 1
        out = capsys.readouterr().out
        assert "solver[cdcl]:" in out
        assert "solve call(s)" in out
        assert "formula:" in out

    def test_stats_with_dpll_backend(self, corpus, capsys):
        main(["verify", str(corpus / "safe.php"), "--stats", "--solver", "dpll"])
        assert "solver[dpll]:" in capsys.readouterr().out

    def test_trace_flag_writes_trace(self, corpus, tmp_path, capsys):
        trace = tmp_path / "verify-trace.json"
        main(["verify", str(corpus / "vuln.php"), "--trace", str(trace)])
        names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
        assert {"file", "parse", "sat", "sat.solve"} <= names

    def test_global_tracer_restored_after_verify(self, corpus, tmp_path):
        from repro.obs import NULL_TRACER, get_tracer

        main(["verify", str(corpus / "vuln.php"), "--trace", str(tmp_path / "t.json")])
        assert get_tracer() is NULL_TRACER


class TestVerifyExitCodes:
    def test_vulnerability_beats_frontend_error(self, tmp_path, capsys):
        (tmp_path / "vuln.php").write_text(VULN)
        (tmp_path / "broken.php").write_text(BROKEN)
        assert main(["verify", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "frontend error" in captured.err
        assert "precedence" in captured.err

    def test_error_only_still_exit_two(self, tmp_path):
        (tmp_path / "broken.php").write_text(BROKEN)
        assert main(["verify", str(tmp_path)]) == 2

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "--help"])
        assert "exit codes" in capsys.readouterr().out

    def test_audit_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["audit", "--help"])
        assert "exit codes" in capsys.readouterr().out


class TestFigure10Jobs:
    def test_figure10_accepts_jobs_flag(self):
        parser_args = ["figure10", "--jobs", "2"]
        from repro.cli import build_parser

        args = build_parser().parse_args(parser_args)
        assert args.jobs == 2
