"""Tests for the CDCL solver and the DPLL baseline.

Both solvers are checked against a brute-force reference on random small
formulas (property-based), on crafted corner cases, and on the classic
pigeonhole family where UNSAT answers require real search.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CNF, CDCLSolver, DPLLSolver, solve_cnf


def brute_force_satisfiable(cnf: CNF) -> bool:
    variables = sorted(cnf.variables())
    if cnf.has_empty_clause:
        return False
    for values in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            return True
    return not cnf.clauses


def pigeonhole(holes: int) -> CNF:
    """PHP(n+1, n): n+1 pigeons into n holes — classically UNSAT."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    cnf = CNF()
    for p in range(pigeons):
        cnf.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause((-var(p1, h), -var(p2, h)))
    return cnf


SOLVERS = [
    pytest.param(lambda cnf: CDCLSolver(cnf).solve(), id="cdcl"),
    pytest.param(lambda cnf: DPLLSolver(cnf).solve(), id="dpll"),
]


@pytest.mark.parametrize("solve", SOLVERS)
class TestBothSolvers:
    def test_empty_formula_sat(self, solve):
        assert solve(CNF()).satisfiable is True

    def test_single_unit(self, solve):
        result = solve(CNF([(3,)]))
        assert result.satisfiable is True
        assert result.model[3] is True

    def test_contradictory_units(self, solve):
        assert solve(CNF([(1,), (-1,)])).satisfiable is False

    def test_empty_clause_unsat(self, solve):
        cnf = CNF()
        cnf.add_clause(())
        assert solve(cnf).satisfiable is False

    def test_simple_sat_model_is_valid(self, solve):
        cnf = CNF([(1, 2), (-1, 2), (1, -2)])
        result = solve(cnf)
        assert result.satisfiable is True
        assert cnf.evaluate(result.model)

    def test_chain_implication(self, solve):
        # x1 and (x1 -> x2) and ... and (x9 -> x10) and ¬x10: UNSAT
        cnf = CNF([(1,)])
        for i in range(1, 10):
            cnf.add_clause((-i, i + 1))
        cnf.add_clause((-10,))
        assert solve(cnf).satisfiable is False

    def test_xor_chain_sat(self, solve):
        # x1 xor x2, x2 xor x3 — satisfiable
        cnf = CNF([(1, 2), (-1, -2), (2, 3), (-2, -3)])
        result = solve(cnf)
        assert result.satisfiable is True
        assert cnf.evaluate(result.model)

    def test_pigeonhole_3_unsat(self, solve):
        assert solve(pigeonhole(3)).satisfiable is False

    def test_all_combinations_of_three_vars(self, solve):
        # Force each total assignment via units, plus one 3-clause.
        for values in itertools.product([1, -1], repeat=3):
            cnf = CNF([(values[0] * 1,), (values[1] * 2,), (values[2] * 3,), (1, 2, 3)])
            expected = any(v > 0 for v in values)
            assert solve(cnf).satisfiable is expected


class TestCDCLSpecific:
    def test_pigeonhole_5_unsat_with_learning(self):
        result = CDCLSolver(pigeonhole(5)).solve()
        assert result.satisfiable is False
        assert result.stats.conflicts > 0
        assert result.stats.learned_clauses > 0

    def test_incremental_blocking_enumerates_models(self):
        # Enumerate all 3 models of (x1 ∨ x2) by blocking clauses, as the
        # BMC counterexample loop does.
        cnf = CNF([(1, 2)])
        solver = CDCLSolver(cnf)
        models = []
        while True:
            result = solver.solve()
            if not result.satisfiable:
                break
            model = {v: result.model[v] for v in (1, 2)}
            models.append(tuple(sorted(model.items())))
            solver.add_clause([-v if val else v for v, val in model.items()])
        assert len(models) == 3
        assert len(set(models)) == 3

    def test_assumptions_sat_then_unsat(self):
        cnf = CNF([(1, 2)])
        solver = CDCLSolver(cnf)
        assert solver.solve(assumptions=[-1]).satisfiable is True
        assert solver.solve(assumptions=[-1, -2]).satisfiable is False
        # Formula itself still satisfiable afterwards.
        assert solver.solve().satisfiable is True

    def test_conflicting_assumptions(self):
        solver = CDCLSolver(CNF([(1, 2)]))
        assert solver.solve(assumptions=[1, -1]).satisfiable is False

    def test_conflict_budget_returns_unknown(self):
        result = CDCLSolver(pigeonhole(6)).solve(conflict_budget=3)
        assert result.satisfiable is None

    def test_add_clause_after_unsat_stays_unsat(self):
        solver = CDCLSolver(CNF([(1,), (-1,)]))
        assert solver.solve().satisfiable is False
        solver.add_clause((2,))
        assert solver.solve().satisfiable is False

    def test_stats_populated(self):
        result = CDCLSolver(pigeonhole(4)).solve()
        assert result.satisfiable is False
        assert result.stats.decisions > 0
        assert result.stats.propagations > 0

    def test_model_covers_unconstrained_variables(self):
        cnf = CNF([(1,)])
        cnf.extend_vars(4)
        result = CDCLSolver(cnf).solve()
        assert set(result.model) == {1, 2, 3, 4}

    def test_learned_clause_reduction_does_not_break_soundness(self):
        # Small learned_limit_factor forces clause database reductions.
        solver = CDCLSolver(pigeonhole(5), learned_limit_factor=0.01)
        assert solver.solve().satisfiable is False

    def test_frequent_restarts_do_not_break_termination(self):
        solver = CDCLSolver(pigeonhole(4), restart_first=1, restart_factor=1.0)
        assert solver.solve().satisfiable is False

    def test_true_literals_helper(self):
        result = solve_cnf(CNF([(1,), (-2,)]))
        lits = result.true_literals()
        assert 1 in lits and -2 in lits

    def test_luby_sequence(self):
        from repro.sat.solver import _luby

        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_luby_restart_strategy_solves(self):
        solver = CDCLSolver(pigeonhole(5), restart_strategy="luby", restart_first=2)
        result = solver.solve()
        assert result.satisfiable is False
        assert result.stats.restarts > 0

    def test_unknown_restart_strategy_rejected(self):
        with pytest.raises(ValueError):
            CDCLSolver(CNF(), restart_strategy="random")

    def test_phase_saving_off_still_correct(self):
        solver = CDCLSolver(pigeonhole(4), phase_saving=False)
        assert solver.solve().satisfiable is False

    def test_phase_saving_consistent_models(self):
        # With phase saving, re-solving after a no-op clause addition
        # tends to reproduce the same model (not required, but the model
        # must always satisfy the formula).
        cnf = CNF([(1, 2), (-1, 3), (2, -3)])
        solver = CDCLSolver(cnf, phase_saving=True)
        first = solver.solve()
        assert cnf.evaluate(first.model)
        solver.add_clause((1, 2, 3))
        second = solver.solve()
        assert cnf.evaluate(second.model)


class TestDPLLSpecific:
    def test_budget_returns_unknown(self):
        result = DPLLSolver(pigeonhole(5), max_decisions=2).solve()
        assert result.satisfiable is None

    def test_pure_literal_elimination(self):
        # x2 appears only positively; solvable without branching on it.
        cnf = CNF([(1, 2), (-1, 2)])
        result = DPLLSolver(cnf).solve()
        assert result.satisfiable is True
        assert result.model[2] is True


# -- property-based agreement with brute force -----------------------------


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=0, max_value=12))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(tuple(clause))
    cnf = CNF(clauses)
    cnf.extend_vars(num_vars)
    return cnf


@settings(max_examples=150, deadline=None)
@given(random_cnf())
def test_cdcl_agrees_with_brute_force(cnf):
    result = CDCLSolver(cnf).solve()
    assert result.satisfiable == brute_force_satisfiable(cnf)
    if result.satisfiable:
        assert cnf.evaluate(result.model)


@settings(max_examples=100, deadline=None)
@given(random_cnf())
def test_dpll_agrees_with_brute_force(cnf):
    result = DPLLSolver(cnf).solve()
    assert result.satisfiable == brute_force_satisfiable(cnf)
    if result.satisfiable:
        assert cnf.evaluate(result.model)


@settings(max_examples=75, deadline=None)
@given(random_cnf())
def test_cdcl_and_dpll_agree(cnf):
    assert CDCLSolver(cnf).solve().satisfiable == DPLLSolver(cnf).solve().satisfiable
