"""Tests for the fixed-program-diameter computation (paper §3.3)."""

import pytest

from repro.ai import translate_filter_result
from repro.ai.diameter import ai_diameter, verify_loop_free
from repro.ir import filter_source


def ai_of(source):
    return translate_filter_result(filter_source("<?php " + source))


class TestDiameter:
    def test_straight_line(self):
        assert ai_diameter(ai_of("$a = 1; $b = 2; $c = 3;")) == 3

    def test_empty_program(self):
        assert ai_diameter(ai_of("")) == 0

    def test_branch_counts_longer_arm(self):
        # then-arm: 2 assigns; else-arm: 1 assign; branch itself: 1.
        program = ai_of("if ($c) { $a = 1; $b = 2; } else { $a = 3; }")
        assert ai_diameter(program) == 3

    def test_branch_without_else(self):
        program = ai_of("if ($c) { $a = 1; } $b = 2;")
        assert ai_diameter(program) == 3  # branch + longest arm + trailing

    def test_nested_branches(self):
        program = ai_of("if ($a) { if ($b) { $x = 1; } }")
        assert ai_diameter(program) == 3

    def test_loop_becomes_single_unfold(self):
        # while → selection (Figure 4), so the body counts once.
        program = ai_of("while ($c) { $x = $x . $y; }")
        straight = ai_of("if ($c) { $x = $x . $y; }")
        assert ai_diameter(program) == ai_diameter(straight)

    def test_sink_and_stop_count(self):
        assert ai_diameter(ai_of("echo $x; exit;")) == 2

    def test_diameter_bounds_renamed_event_count(self):
        # The linear renaming emits every event, so the diameter (longest
        # single path) can only be smaller or equal.
        from repro.ai import rename

        source = "if ($a) { $x = 1; $y = 2; } else { $z = 3; } echo $x;"
        program = ai_of(source)
        renamed = rename(program)
        assert ai_diameter(program) <= len(renamed.events) + program.num_branches


class TestLoopFree:
    def test_translated_programs_verify(self):
        sources = [
            "$a = 1;",
            "if ($c) { $a = 1; } else { $b = 2; }",
            "while ($c) { $x = $x . $y; } echo $x;",
            "for ($i = 0; $i < 3; $i++) { echo 'x'; }",
        ]
        for source in sources:
            assert verify_loop_free(ai_of(source))

    def test_shared_node_rejected(self):
        from repro.ai.instructions import AISeq, TypeAssign
        from repro.ir.commands import Const
        from repro.php.span import Span

        node = TypeAssign("x", Const(), Span.synthetic())
        shared = AISeq((node, node))
        with pytest.raises(ValueError, match="shares"):
            verify_loop_free(shared)
