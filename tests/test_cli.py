"""Tests for the command-line interface."""

import pytest

from repro.cli import main

VULN = "<?php echo $_GET['q'];\n"
SAFE = "<?php echo 'hello';\n"


@pytest.fixture
def vuln_file(tmp_path):
    path = tmp_path / "vuln.php"
    path.write_text(VULN)
    return path


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.php"
    path.write_text(SAFE)
    return path


class TestVerify:
    def test_safe_exit_zero(self, safe_file, capsys):
        assert main(["verify", str(safe_file)]) == 0
        out = capsys.readouterr().out
        assert "SAFE" in out

    def test_vulnerable_exit_one(self, vuln_file, capsys):
        assert main(["verify", str(vuln_file)]) == 1
        out = capsys.readouterr().out
        assert "VULNERABLE" in out

    def test_detailed_flag(self, vuln_file, capsys):
        main(["verify", "--detailed", str(vuln_file)])
        out = capsys.readouterr().out
        assert "counterexample" in out

    def test_directory_recursion(self, tmp_path, safe_file, vuln_file, capsys):
        assert main(["verify", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "safe.php" in out and "vuln.php" in out

    def test_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["verify", str(empty)]) == 2

    def test_multiple_paths(self, safe_file, vuln_file):
        assert main(["verify", str(safe_file), str(vuln_file)]) == 1


class TestPatch:
    def test_patch_writes_output(self, vuln_file, tmp_path, capsys):
        output = tmp_path / "out.php"
        assert main(["patch", str(vuln_file), "-o", str(output)]) == 0
        assert "__webssari_sanitize" in output.read_text()
        assert "guard(s)" in capsys.readouterr().out

    def test_patch_default_output_name(self, vuln_file):
        main(["patch", str(vuln_file)])
        assert vuln_file.with_suffix(".patched.php").exists()

    def test_ts_strategy(self, vuln_file, tmp_path):
        output = tmp_path / "ts.php"
        assert main(["patch", str(vuln_file), "-o", str(output), "--strategy", "ts"]) == 0
        assert "__webssari_sanitize" in output.read_text()

    def test_patched_file_verifies_safe(self, vuln_file, tmp_path):
        output = tmp_path / "out.php"
        main(["patch", str(vuln_file), "-o", str(output)])
        assert main(["verify", str(output)]) == 0


class TestHtml:
    def test_html_report_written(self, vuln_file, tmp_path):
        output = tmp_path / "r.html"
        assert main(["html", str(vuln_file), "-o", str(output)]) == 1
        text = output.read_text()
        assert "<!DOCTYPE html>" in text
        assert "VULNERABLE" in text

    def test_html_safe_exit_zero(self, safe_file, tmp_path):
        output = tmp_path / "r.html"
        assert main(["html", str(safe_file), "-o", str(output)]) == 0


class TestPreludeOption:
    def test_custom_prelude_applies(self, tmp_path, capsys):
        prelude = tmp_path / "p.prelude"
        prelude.write_text("source read_config tainted\nsink show tainted xss\n")
        php = tmp_path / "app.php"
        php.write_text("<?php $x = read_config(); show($x);")
        # Without the prelude: safe; with it: vulnerable.
        assert main(["verify", str(php)]) == 0
        assert main(["--prelude", str(prelude), "verify", str(php)]) == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])
