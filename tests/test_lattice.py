"""Tests for the security-type lattice framework (paper §3.1)."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice import (
    TAINTED,
    UNTAINTED,
    FiniteLattice,
    LatticeError,
    is_monotone,
    linear_lattice,
    powerset_lattice,
    product_lattice,
    two_point_lattice,
)


@pytest.fixture
def taint():
    return two_point_lattice()


@pytest.fixture
def diamond():
    # bottom <= {a, b} <= top, a and b incomparable
    return FiniteLattice(
        {"bot", "a", "b", "top"},
        {("bot", "a"), ("bot", "b"), ("a", "top"), ("b", "top")},
    )


class TestTwoPointLattice:
    def test_bottom_is_untainted(self, taint):
        assert taint.bottom == UNTAINTED

    def test_top_is_tainted(self, taint):
        assert taint.top == TAINTED

    def test_order(self, taint):
        assert taint.leq(UNTAINTED, TAINTED)
        assert not taint.leq(TAINTED, UNTAINTED)

    def test_strict_order(self, taint):
        assert taint.lt(UNTAINTED, TAINTED)
        assert not taint.lt(UNTAINTED, UNTAINTED)

    def test_join_taints(self, taint):
        assert taint.join(UNTAINTED, TAINTED) == TAINTED
        assert taint.join(UNTAINTED, UNTAINTED) == UNTAINTED

    def test_meet_untaints(self, taint):
        assert taint.meet(UNTAINTED, TAINTED) == UNTAINTED
        assert taint.meet(TAINTED, TAINTED) == TAINTED

    def test_join_all_empty_is_bottom(self, taint):
        # Paper §3.1: ⊔Y = ⊥ for empty Y.
        assert taint.join_all([]) == UNTAINTED

    def test_meet_all_empty_is_top(self, taint):
        assert taint.meet_all([]) == TAINTED

    def test_nonmember_rejected(self, taint):
        with pytest.raises(LatticeError):
            taint.leq("nonsense", TAINTED)


class TestDiamondLattice:
    def test_incomparable_elements(self, diamond):
        assert not diamond.leq("a", "b")
        assert not diamond.leq("b", "a")

    def test_join_of_incomparables_is_top(self, diamond):
        assert diamond.join("a", "b") == "top"

    def test_meet_of_incomparables_is_bottom(self, diamond):
        assert diamond.meet("a", "b") == "bot"

    def test_covers(self, diamond):
        assert diamond.covers() == {
            ("bot", "a"),
            ("bot", "b"),
            ("a", "top"),
            ("b", "top"),
        }

    def test_join_absorbs(self, diamond):
        for x in diamond.elements:
            assert diamond.join(x, "bot") == x
            assert diamond.join(x, "top") == "top"


class TestLatticeValidation:
    def test_cycle_rejected(self):
        with pytest.raises(LatticeError):
            FiniteLattice({"a", "b"}, {("a", "b"), ("b", "a")})

    def test_two_maximal_rejected(self):
        # a and b both maximal: no top.
        with pytest.raises(LatticeError):
            FiniteLattice({"bot", "a", "b"}, {("bot", "a"), ("bot", "b")})

    def test_empty_carrier_rejected(self):
        with pytest.raises(LatticeError):
            FiniteLattice(set(), set())

    def test_foreign_order_pair_rejected(self):
        with pytest.raises(LatticeError):
            FiniteLattice({"a"}, {("a", "z")})

    def test_hexagon_non_lattice_rejected(self):
        # bot <= {a,b} <= {c,d} <= top with a,b both below c,d: join(a,b)
        # has two minimal upper bounds, so this poset is not a lattice.
        with pytest.raises(LatticeError):
            FiniteLattice(
                {"bot", "a", "b", "c", "d", "top"},
                {
                    ("bot", "a"),
                    ("bot", "b"),
                    ("a", "c"),
                    ("a", "d"),
                    ("b", "c"),
                    ("b", "d"),
                    ("c", "top"),
                    ("d", "top"),
                },
            )


class TestLinearLattice:
    def test_three_levels(self):
        lat = linear_lattice(["public", "internal", "secret"])
        assert lat.bottom == "public"
        assert lat.top == "secret"
        assert lat.join("public", "internal") == "internal"
        assert lat.meet("internal", "secret") == "internal"

    def test_single_level(self):
        lat = linear_lattice(["only"])
        assert lat.bottom == lat.top == "only"

    def test_duplicate_levels_rejected(self):
        with pytest.raises(LatticeError):
            linear_lattice(["a", "a"])

    def test_total_order(self):
        levels = ["l0", "l1", "l2", "l3"]
        lat = linear_lattice(levels)
        for i, a in enumerate(levels):
            for j, b in enumerate(levels):
                assert lat.leq(a, b) == (i <= j)


class TestProductLattice:
    def test_componentwise_order(self):
        lat = product_lattice(two_point_lattice(), two_point_lattice())
        bot = (UNTAINTED, UNTAINTED)
        top = (TAINTED, TAINTED)
        assert lat.bottom == bot
        assert lat.top == top
        assert lat.join((UNTAINTED, TAINTED), (TAINTED, UNTAINTED)) == top
        assert lat.meet((UNTAINTED, TAINTED), (TAINTED, UNTAINTED)) == bot

    def test_mixed_components_incomparable(self):
        lat = product_lattice(two_point_lattice(), two_point_lattice())
        assert not lat.leq((UNTAINTED, TAINTED), (TAINTED, UNTAINTED))


class TestPowersetLattice:
    def test_subset_order(self):
        lat = powerset_lattice(["get", "post", "cookie"])
        assert lat.bottom == frozenset()
        assert lat.top == frozenset({"get", "post", "cookie"})
        a = frozenset({"get"})
        b = frozenset({"post"})
        assert lat.join(a, b) == frozenset({"get", "post"})
        assert lat.meet(a, b) == frozenset()

    def test_generator_limit(self):
        with pytest.raises(LatticeError):
            powerset_lattice(range(11))


class TestMonotonicity:
    def test_identity_is_monotone(self, taint):
        assert is_monotone(taint, lambda t: t)

    def test_constant_bottom_is_monotone(self, taint):
        assert is_monotone(taint, lambda t: taint.bottom)

    def test_swap_is_not_monotone(self, taint):
        swap = {UNTAINTED: TAINTED, TAINTED: UNTAINTED}
        assert not is_monotone(taint, lambda t: swap[t])


# -- property-based tests on the lattice laws -----------------------------


def _lattices():
    return st.sampled_from(
        [
            two_point_lattice(),
            linear_lattice(["l0", "l1", "l2", "l3"]),
            FiniteLattice(
                {"bot", "a", "b", "top"},
                {("bot", "a"), ("bot", "b"), ("a", "top"), ("b", "top")},
            ),
            powerset_lattice(["g", "p", "c"]),
        ]
    )


@st.composite
def _lattice_and_elements(draw, count=2):
    lat = draw(_lattices())
    elems = sorted(lat.elements, key=repr)
    picked = [draw(st.sampled_from(elems)) for _ in range(count)]
    return (lat, *picked)


@given(_lattice_and_elements(count=2))
def test_join_commutative(case):
    lat, a, b = case
    assert lat.join(a, b) == lat.join(b, a)


@given(_lattice_and_elements(count=2))
def test_meet_commutative(case):
    lat, a, b = case
    assert lat.meet(a, b) == lat.meet(b, a)


@given(_lattice_and_elements(count=3))
def test_join_associative(case):
    lat, a, b, c = case
    assert lat.join(a, lat.join(b, c)) == lat.join(lat.join(a, b), c)


@given(_lattice_and_elements(count=3))
def test_meet_associative(case):
    lat, a, b, c = case
    assert lat.meet(a, lat.meet(b, c)) == lat.meet(lat.meet(a, b), c)


@given(_lattice_and_elements(count=1))
def test_join_idempotent(case):
    lat, a = case
    assert lat.join(a, a) == a


@given(_lattice_and_elements(count=2))
def test_absorption(case):
    lat, a, b = case
    assert lat.join(a, lat.meet(a, b)) == a
    assert lat.meet(a, lat.join(a, b)) == a


@given(_lattice_and_elements(count=2))
def test_join_is_upper_bound(case):
    lat, a, b = case
    j = lat.join(a, b)
    assert lat.leq(a, j) and lat.leq(b, j)


@given(_lattice_and_elements(count=2))
def test_meet_is_lower_bound(case):
    lat, a, b = case
    m = lat.meet(a, b)
    assert lat.leq(m, a) and lat.leq(m, b)


@given(_lattice_and_elements(count=2))
def test_leq_iff_join_is_upper(case):
    # Paper §3.1: τ1 = τ2 iff τ1 <= τ2 and τ2 <= τ1.
    lat, a, b = case
    assert lat.leq(a, b) == (lat.join(a, b) == b)


@given(_lattice_and_elements(count=1))
def test_bounds(case):
    lat, a = case
    assert lat.leq(lat.bottom, a)
    assert lat.leq(a, lat.top)


def test_join_all_matches_pairwise():
    lat = powerset_lattice(["g", "p", "c"])
    elems = sorted(lat.elements, key=repr)
    for combo in itertools.combinations(elems, 3):
        expected = lat.join(lat.join(combo[0], combo[1]), combo[2])
        assert lat.join_all(combo) == expected
