"""Tests for the stock product-lattice and multilevel policy models."""

import pytest

from repro import WebSSARI
from repro.policy.models import (
    CONF_PUBLIC,
    CONF_SECRET,
    INTEGRITY_TAINTED,
    INTEGRITY_UNTAINTED,
    integrity_confidentiality_prelude,
    multilevel_prelude,
)


@pytest.fixture(scope="module")
def product_websari():
    return WebSSARI(prelude=integrity_confidentiality_prelude())


class TestProductLattice:
    def test_lattice_shape(self):
        prelude = integrity_confidentiality_prelude()
        lattice = prelude.lattice
        assert lattice.bottom == (INTEGRITY_UNTAINTED, CONF_PUBLIC)
        assert lattice.top == (INTEGRITY_TAINTED, CONF_SECRET)
        assert len(lattice.elements) == 4

    def test_request_data_fails_integrity_sink(self, product_websari):
        report = product_websari.verify_source("<?php echo $_GET['q'];")
        assert not report.safe

    def test_constant_passes_integrity_sink(self, product_websari):
        assert product_websari.verify_source("<?php echo 'hi';").safe

    def test_sanitized_request_data_passes(self, product_websari):
        source = "<?php $x = htmlspecialchars($_GET['q']); echo $x;"
        assert product_websari.verify_source(source).safe

    def test_secret_fails_confidentiality_sink(self, product_websari):
        source = "<?php $cred = read_credential(); send_external($cred);"
        report = product_websari.verify_source(source)
        assert not report.safe

    def test_secret_passes_integrity_sink_after_declassify_only(self, product_websari):
        # Untainted-secret data is not strictly below (tainted, public),
        # so even the integrity sink rejects it until declassified.
        source = "<?php $cred = read_credential(); echo $cred;"
        assert not product_websari.verify_source(source).safe
        fixed = "<?php $cred = declassify(read_credential()); echo $cred;"
        # declassify on a call result returns bottom.
        assert product_websari.verify_source(fixed).safe

    def test_declassified_secret_passes_external(self, product_websari):
        source = "<?php $cred = read_credential(); $cred = declassify($cred); send_external($cred);"
        assert product_websari.verify_source(source).safe

    def test_session_data_fails_both_sinks(self, product_websari):
        for sink in ("echo $s;", "send_external($s);"):
            source = f"<?php $s = $_SESSION['u']; {sink}"
            assert not product_websari.verify_source(source).safe, sink

    def test_both_flaw_kinds_found_in_one_run(self, product_websari):
        source = """<?php
$q = $_GET['q'];
echo $q;                          // integrity violation
$cred = read_credential();
send_external($cred);             // confidentiality violation
"""
        report = product_websari.verify_source(source)
        assert len(report.bmc.violated) == 2

    def test_grouping_works_on_product_lattice(self, product_websari):
        source = """<?php
$q = $_GET['q'];
$a = $q; echo $a;
$b = $q; echo $b;
"""
        report = product_websari.verify_source(source)
        assert report.ts_error_count == 2
        assert report.bmc_group_count == 1


class TestMultilevel:
    def test_default_levels(self):
        prelude = multilevel_prelude()
        assert prelude.lattice.bottom == "public"
        assert prelude.lattice.top == "topsecret"

    def test_internal_data_and_sinks(self):
        websari = WebSSARI(prelude=multilevel_prelude())
        # GET data is 'internal': emit_internal accepts (< secret), but
        # emit_public (< internal) rejects.
        assert websari.verify_source("<?php emit_internal($_GET['x']);").safe
        assert not websari.verify_source("<?php emit_public($_GET['x']);").safe

    def test_declassify(self):
        websari = WebSSARI(prelude=multilevel_prelude())
        source = "<?php $x = declassify($_GET['x']); emit_public($x);"
        assert websari.verify_source(source).safe

    def test_custom_levels(self):
        prelude = multilevel_prelude(["low", "high"])
        assert prelude.lattice.top == "high"

    def test_ts_and_bmc_agree_on_multilevel(self):
        websari = WebSSARI(prelude=multilevel_prelude())
        source = "<?php $a = $_POST['a']; emit_public($a); emit_secret($a);"
        report = websari.verify_source(source)
        ts_sites = {str(v.span) for v in report.ts.violations}
        bmc_sites = {str(r.event.span) for r in report.bmc.violated}
        assert ts_sites == bmc_sites
        assert len(bmc_sites) == 1  # only emit_public rejects internal
