"""Differential testing: BMC vs exhaustive path enumeration.

The paper claims the BMC is *sound and complete* for this problem class
(loop-free AI → fixed diameter).  These tests check that claim against a
reference oracle: because every nondeterministic branch variable is
boolean and the AI is loop-free, ALL executions can be enumerated
exhaustively for small programs.  For every assertion:

* soundness: if BMC says safe, no enumerated path violates;
* completeness: if any path violates, BMC reports the assertion;
* counterexample coverage: the set of violating full branch
  assignments equals the union of extensions of the BMC's
  deciding-branch dictionaries (each counterexample summarizes exactly
  the paths that share its violating slice);
* violating-variable agreement on each path.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ai import rename, translate_filter_result
from repro.ai.renaming import RenamedAssert, RenamedAssign, RenamedProgram
from repro.bmc import check_program
from repro.ir import filter_source
from repro.ir.commands import Const, Join, LevelConst
from repro.ai.renaming import IndexedVar
from repro.lattice import two_point_lattice


LATTICE = two_point_lattice()


def _eval_expr(expr, state):
    if isinstance(expr, Const):
        return LATTICE.bottom
    if isinstance(expr, LevelConst):
        return expr.level
    if isinstance(expr, IndexedVar):
        return state.get(expr.name, LATTICE.bottom)
    if isinstance(expr, Join):
        return LATTICE.join_all(_eval_expr(op, state) for op in expr.operands)
    raise TypeError(type(expr).__name__)


def reference_oracle(renamed: RenamedProgram):
    """Enumerate all branch assignments; return per-assertion violations.

    Result: {assert_id: {frozenset(env.items()): frozenset(violating names)}}
    """
    branch_vars = renamed.branch_variables
    results: dict[int, dict[frozenset, frozenset]] = {}
    for values in itertools.product([False, True], repeat=len(branch_vars)):
        env = dict(zip(branch_vars, values))

        def satisfied(guard):
            return all(env[lit.variable] == lit.positive for lit in guard)

        state: dict[str, object] = {}
        for event in renamed.events:
            if isinstance(event, RenamedAssign):
                if satisfied(event.guard):
                    state[event.target.name] = _eval_expr(event.expr, state)
            elif isinstance(event, RenamedAssert):
                if not satisfied(event.guard):
                    continue
                violating = frozenset(
                    var.name
                    for var in event.variables
                    if not LATTICE.lt(state.get(var.name, LATTICE.bottom), event.required)
                )
                if violating:
                    results.setdefault(event.assert_id, {})[
                        frozenset(env.items())
                    ] = violating
    return results


def extensions(deciding: dict[str, bool], branch_vars: list[str]) -> set[frozenset]:
    """All full assignments consistent with a deciding dictionary."""
    free = [v for v in branch_vars if v not in deciding]
    out = set()
    for values in itertools.product([False, True], repeat=len(free)):
        env = dict(deciding)
        env.update(zip(free, values))
        out.add(frozenset(env.items()))
    return out


def run_differential(source: str) -> None:
    renamed = rename(translate_filter_result(filter_source("<?php " + source)))
    if len(renamed.branch_variables) > 10:
        return  # keep the oracle exhaustive but cheap
    oracle = reference_oracle(renamed)
    result = check_program(renamed, accumulate="never", max_counterexamples=4096)

    for assertion_result in result.assertions:
        assert_id = assertion_result.assert_id
        expected = oracle.get(assert_id, {})
        # Soundness + completeness of the verdict.
        assert assertion_result.safe == (not expected), (
            f"assert#{assert_id}: BMC safe={assertion_result.safe} but oracle "
            f"found {len(expected)} violating paths\nsource:\n{source}"
        )
        if assertion_result.safe:
            continue
        # Counterexample coverage.
        covered: set[frozenset] = set()
        for trace in assertion_result.counterexamples:
            exts = extensions(trace.deciding_branches, renamed.branch_variables)
            # Every extension of a reported slice must genuinely violate.
            for env in exts:
                assert env in expected, (
                    f"assert#{assert_id}: reported slice {trace.deciding_branches} "
                    f"covers non-violating path {dict(env)}\nsource:\n{source}"
                )
                # Violating variable names agree with the oracle.
                assert trace.violating_names == set(expected[env]), (
                    f"assert#{assert_id}: violating vars {trace.violating_names} "
                    f"!= oracle {set(expected[env])} on {dict(env)}\nsource:\n{source}"
                )
            covered |= exts
        assert covered == set(expected), (
            f"assert#{assert_id}: counterexamples cover {len(covered)} paths, "
            f"oracle has {len(expected)}\nsource:\n{source}"
        )


class TestDifferentialFixedCases:
    def test_unconditional(self):
        run_differential("$x = $_GET['q']; echo $x;")

    def test_branch_one_side(self):
        run_differential("if ($c) { $x = $_GET['q']; } else { $x = 'v'; } echo $x;")

    def test_sanitizer_on_one_path(self):
        run_differential(
            "$x = $_GET['q']; if ($c) { $x = htmlspecialchars($x); } echo $x;"
        )

    def test_figure7(self):
        run_differential(
            "$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}"
            "$iq = 'a' . $sid; DoSQL($iq); $i2q = 'b' . $sid; DoSQL($i2q);"
        )

    def test_join_of_branch_values(self):
        run_differential(
            "if ($a) { $x = $_GET['p']; } else { $x = 'v'; }"
            "if ($b) { $y = $_POST['q']; } else { $y = 'w'; }"
            "$z = $x . $y; echo $z;"
        )

    def test_loop_unfold(self):
        run_differential("while ($c) { $x = $x . $_GET['q']; } echo $x;")

    def test_irrelevant_branches(self):
        run_differential(
            "$x = $_GET['q']; if ($a) { $u = 1; } if ($b) { $v = 2; } echo $x;"
        )

    def test_multi_arg_assertion(self):
        run_differential(
            "$a = $_GET['a']; $b = 'safe'; echo \"$a$b\";"
        )


# -- property-based differential testing -----------------------------------


@st.composite
def random_program(draw):
    variables = ["a", "b", "c"]
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=7))):
        kind = draw(
            st.sampled_from(
                ["taint", "const", "copy", "concat", "sanitize", "sink", "branch", "loop"]
            )
        )
        var = draw(st.sampled_from(variables))
        src = draw(st.sampled_from(variables))
        other = draw(st.sampled_from(variables))
        if kind == "taint":
            lines.append(f"${var} = $_GET['k'];")
        elif kind == "const":
            lines.append(f"${var} = 'v';")
        elif kind == "copy":
            lines.append(f"${var} = ${src};")
        elif kind == "concat":
            lines.append(f"${var} = ${src} . ${other};")
        elif kind == "sanitize":
            lines.append(f"${var} = htmlspecialchars(${src});")
        elif kind == "sink":
            lines.append(f"echo ${var};")
        elif kind == "branch":
            then = draw(st.sampled_from(["taint", "copy", "const", "sanitize"]))
            body = {
                "taint": f"${var} = $_POST['p'];",
                "copy": f"${var} = ${src};",
                "const": f"${var} = 'w';",
                "sanitize": f"${var} = htmlspecialchars(${var});",
            }[then]
            has_else = draw(st.booleans())
            orelse = f" else {{ ${var} = ${other}; }}" if has_else else ""
            lines.append(f"if ($cond) {{ {body} }}{orelse}")
        else:  # loop
            lines.append(f"while ($w) {{ ${var} = ${var} . ${src}; }}")
    return "\n".join(lines)


@settings(max_examples=120, deadline=None)
@given(random_program())
def test_bmc_matches_exhaustive_oracle(source):
    run_differential(source)
