"""Engine-path include semantics, closure-scoped cache keys, and the
worker-pipe slice dedup.

The include resolver's unit semantics live in ``test_php_includes``;
here the same behaviours are exercised end to end through
``AuditTask(project_files=...)`` and the worker pool, plus the two
properties the closure work added: cache keys that move only with an
entry's true dependency set, and pipe payloads that ship each file's
bytes to a worker at most once.
"""

import pytest

from repro.engine import AuditEngine, AuditTask, EngineConfig, ResultCache
from repro.engine.cache import cache_key, policy_fingerprint
from repro.engine.worker import FileRef, project_content_digest
from repro.php import SourceProject, scan_includes
from repro.php.parsecache import ParseCache, content_digest
from repro.websari.pipeline import WebSSARI

VULN_ENTRY = "<?php include 'lib.php'; echo $tainted;\n"
LIB = "<?php $tainted = $_GET['q'];\n"
SAFE_LIB = "<?php $tainted = 'constant';\n"


def project_task(index, files, entry, **kwargs):
    return AuditTask(
        index=index, filename=entry, project_files=files, entry=entry, **kwargs
    )


def run(tasks, *, jobs=1, websari=None, cache=None):
    engine = AuditEngine(
        websari=websari or WebSSARI(),
        config=EngineConfig(jobs=jobs, cache=cache),
    )
    return engine.run(tasks)


class TestEngineIncludeSemantics:
    def test_taint_flows_through_spliced_include(self):
        files = {"index.php": VULN_ENTRY, "lib.php": LIB}
        result = run([project_task(0, files, "index.php")], jobs=2)
        outcome = result.outcomes[0]
        assert outcome.status == "ok" and outcome.safe is False
        assert outcome.includes["edges"] == 1
        assert outcome.includes["included_files"] == 1
        assert outcome.includes["unresolved"] == 0

    def test_include_once_deduplicated_through_workers(self):
        files = {
            "index.php": "<?php include_once 'lib.php'; include_once 'lib.php'; echo $x;\n",
            "lib.php": "<?php $x = 'ok';\n",
        }
        result = run([project_task(0, files, "index.php")], jobs=2)
        outcome = result.outcomes[0]
        assert outcome.status == "ok" and outcome.safe is True
        # Both include_once statements create edges; only one splice.
        assert outcome.includes["edges"] == 2
        assert outcome.includes["included_files"] == 1

    def test_include_cycle_is_a_frontend_error(self):
        files = {
            "a.php": "<?php include 'b.php';\n",
            "b.php": "<?php include 'a.php';\n",
        }
        result = run([project_task(0, files, "a.php")], jobs=2)
        outcome = result.outcomes[0]
        assert outcome.status == "frontend-error"
        assert "cycle" in (outcome.error or "")

    def test_missing_require_is_a_frontend_error(self):
        files = {"index.php": "<?php require 'gone.php';\n"}
        result = run([project_task(0, files, "index.php")], jobs=2)
        assert result.outcomes[0].status == "frontend-error"
        assert "not found" in (result.outcomes[0].error or "")

    def test_missing_include_warns_but_verifies(self):
        files = {"index.php": "<?php include 'gone.php'; echo 'hi';\n"}
        result = run([project_task(0, files, "index.php")], jobs=2)
        outcome = result.outcomes[0]
        assert outcome.status == "ok" and outcome.safe is True
        assert any("gone.php" in w for w in outcome.warnings)

    def test_unresolved_dynamic_count_reaches_the_record(self):
        files = {"index.php": "<?php include $page; echo 'hi';\n"}
        result = run([project_task(0, files, "index.php")])
        outcome = result.outcomes[0]
        assert outcome.includes["unresolved"] == 1
        record = outcome.to_record()
        assert record["includes"]["unresolved"] == 1
        assert result.stats.include_totals.get("unresolved") == 1

    def test_parse_cache_counters_surface_in_project_mode(self):
        websari = WebSSARI(parse_cache=ParseCache())
        files = {"index.php": VULN_ENTRY, "lib.php": SAFE_LIB}
        first = run([project_task(0, files, "index.php")], websari=websari)
        second = run([project_task(0, files, "index.php")], websari=websari)
        assert first.outcomes[0].includes["parse_cache_misses"] == 2
        assert first.outcomes[0].includes["parse_cache_hits"] == 0
        assert second.outcomes[0].includes["parse_cache_hits"] == 2
        assert second.outcomes[0].includes["parse_cache_misses"] == 0

    def test_standalone_records_carry_no_cache_counters(self):
        # Byte-determinism contract: a standalone record must not change
        # with cache warmth (the distributed merge comparison diffs
        # records produced by differently-warm processes).
        websari = WebSSARI(parse_cache=ParseCache())
        task = AuditTask(index=0, filename="a.php", source=SAFE_LIB)
        result = run([task], websari=websari)
        assert result.outcomes[0].includes == {}


class TestClosureScopedCacheKeys:
    """Editing a file must invalidate exactly the entries that splice it."""

    @staticmethod
    def material(files, entry, edit=None):
        working = dict(files)
        if edit:
            working.update(edit)
        project = SourceProject(working)
        scan = scan_includes(project, entry)
        if scan.widened:
            return project_task(
                0,
                working,
                entry,
                closure_widened=True,
                project_digest=project_content_digest(working),
            ).cache_material()
        closure = {p: working[p] for p in sorted(scan.closure)}
        return project_task(0, closure, entry).cache_material()

    FILES = {
        "a.php": "<?php include 'common.php'; echo $c;\n",
        "b.php": "<?php include 'common.php'; echo 'b';\n",
        "common.php": "<?php $c = 'shared';\n",
        "leaf.php": "<?php echo 'leaf';\n",
    }

    def test_editing_shared_include_moves_only_its_includers(self):
        edit = {"common.php": "<?php $c = 'edited';\n"}
        for entry in ("a.php", "b.php"):
            assert self.material(self.FILES, entry) != self.material(
                self.FILES, entry, edit
            ), f"{entry} splices common.php and must re-key"
        assert self.material(self.FILES, "leaf.php") == self.material(
            self.FILES, "leaf.php", edit
        ), "leaf.php never reads common.php; its key must hold"

    def test_editing_a_leaf_moves_only_that_entry(self):
        edit = {"leaf.php": "<?php echo 'edited';\n"}
        assert self.material(self.FILES, "leaf.php") != self.material(
            self.FILES, "leaf.php", edit
        )
        for entry in ("a.php", "b.php"):
            assert self.material(self.FILES, entry) == self.material(
                self.FILES, entry, edit
            )

    def test_widened_entry_moves_on_any_project_edit(self):
        files = dict(self.FILES)
        files["dyn.php"] = "<?php include $page; echo 'dyn';\n"
        edit = {"leaf.php": "<?php echo 'edited';\n"}
        # A dynamic include could read anything: conservatively re-key on
        # every edit, even to files no static edge reaches.
        assert self.material(files, "dyn.php") != self.material(files, "dyn.php", edit)

    def test_closure_key_survives_cache_roundtrip(self, tmp_path):
        websari = WebSSARI()
        files = {"index.php": VULN_ENTRY, "lib.php": LIB}
        project = SourceProject(files)
        scan = scan_includes(project, "index.php")
        closure = {p: files[p] for p in sorted(scan.closure)}
        task = project_task(0, closure, "index.php")
        cache = ResultCache(tmp_path / "cache")
        first = run([task], websari=websari, cache=cache)
        second = run([task], websari=websari, cache=cache)
        assert first.stats.cache_misses == 1
        assert second.stats.cache_hits == 1
        assert second.outcomes[0].safe is False

    def test_policy_fingerprint_keys_cache_switches_apart(self):
        plain = policy_fingerprint(WebSSARI())
        cached = policy_fingerprint(WebSSARI(parse_cache=ParseCache()))
        unscoped = policy_fingerprint(WebSSARI(closure_keys=False))
        assert len({plain, cached, unscoped}) == 3


class TestPipeSliceDedup:
    def test_shared_include_bytes_ship_once_per_worker(self):
        common = "<?php\n" + "".join(
            f"$pad{i} = 'shared prelude text line {i}';\n" for i in range(50)
        ) + "$c = 'shared';\n"
        files = {"common.php": common}
        for i in range(6):
            files[f"page{i}.php"] = "<?php include 'common.php'; echo $c;\n"
        project = SourceProject(files)
        tasks = []
        for i in range(6):
            entry = f"page{i}.php"
            scan = scan_includes(project, entry)
            closure = {p: files[p] for p in sorted(scan.closure)}
            tasks.append(project_task(i, closure, entry))

        pooled = run(tasks, jobs=2)
        inline = run(tasks, jobs=1)

        # Verdict parity: the FileRef substitution is pure transport.
        assert [o.safe for o in pooled.outcomes] == [o.safe for o in inline.outcomes]
        assert [o.summary for o in pooled.outcomes] == [
            o.summary for o in inline.outcomes
        ]
        assert all(o.status == "ok" for o in pooled.outcomes)

        # With 6 closures sharing common.php over ≤ 2 workers, at least
        # 4 shipments replaced the prelude bytes with a digest ref.
        assert pooled.stats.closure_bytes_deduped >= 4 * len(common)
        assert pooled.stats.closure_bytes_shipped > 0
        # Inline mode never toes the pipe: both counters stay zero.
        assert inline.stats.closure_bytes_shipped == 0
        assert inline.stats.closure_bytes_deduped == 0

    def test_fileref_is_content_addressed(self):
        text = "<?php $x = 1;\n"
        ref = FileRef(content_digest(text))
        assert ref.digest == content_digest(text)
        assert ref.digest != content_digest(text + " ")
