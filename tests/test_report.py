"""Tests for audit-stream reporting (repro.obs.report) and the
``repro report`` subcommand's exit-code contract (0 clean / 1 regression
/ 2 malformed / 3 replay disagreement)."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    AuditRun,
    ReportError,
    diff_runs,
    load_audit,
    render_diff,
    render_report,
    replay_disagreements,
    summarize_run,
)
from repro.obs.report import stage_quantiles


def file_record(filename, status="ok", safe=True, **extra):
    record = {"type": "file", "filename": filename, "status": status, "safe": safe}
    record.update(extra)
    return record


def write_stream(path, records, stats={"total": None}):
    lines = [json.dumps(r) for r in records]
    if stats is not None:
        payload = {"type": "stats", "total": len(records), "wall_seconds": 1.5}
        payload.update({k: v for k, v in stats.items() if v is not None})
        lines.append(json.dumps(payload))
    path.write_text("\n".join(lines) + "\n")
    return path


class TestLoadAudit:
    def test_parses_files_and_stats(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl",
            [file_record("a.php"), file_record("b.php", safe=False)],
        )
        run = load_audit(path)
        assert len(run.files) == 2
        assert run.stats["total"] == 2
        assert not run.truncated

    def test_missing_trailer_marks_truncated(self, tmp_path):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")], stats=None)
        assert load_audit(path).truncated

    def test_torn_final_line_tolerated(self, tmp_path):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")], stats=None)
        with path.open("a") as handle:
            handle.write('{"type": "file", "filena')
        run = load_audit(path)
        assert run.truncated and len(run.files) == 1

    def test_torn_middle_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"broken\n' + json.dumps(file_record("a.php")) + "\n")
        with pytest.raises(ReportError):
            load_audit(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReportError):
            load_audit(tmp_path / "absent.jsonl")

    def test_last_record_per_filename_wins(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl",
            [file_record("a.php", safe=True), file_record("a.php", safe=False)],
        )
        by_name = load_audit(path).by_filename()
        assert by_name["a.php"]["safe"] is False


class TestNodeTrailers:
    """Merged distributed streams (repro serve) interleave per-node
    stats trailers before the global one; the reader must keep them out
    of ``run.stats`` (regression: last-trailer-wins clobbered the global
    tally with the final node's partial counts)."""

    def merged_stream(self, path, with_global=True):
        records = [
            file_record("a.php", node="n1"),
            file_record("b.php", safe=False, node="n2"),
            {"type": "stats", "node": "n1", "files": 1, "safe": 1,
             "vulnerable": 0, "failed": 0},
            {"type": "stats", "node": "n2", "files": 1, "safe": 0,
             "vulnerable": 1, "failed": 0},
        ]
        if with_global:
            records.append(
                {"type": "stats", "total": 2, "safe": 1, "vulnerable": 1,
                 "wall_seconds": 0.5, "nodes": 2}
            )
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        return path

    def test_node_trailers_do_not_clobber_global_stats(self, tmp_path):
        run = load_audit(self.merged_stream(tmp_path / "m.jsonl"))
        assert run.stats["total"] == 2  # the global trailer, not n2's
        assert not run.truncated
        assert set(run.node_stats) == {"n1", "n2"}
        assert run.node_stats["n2"]["vulnerable"] == 1

    def test_incomplete_merged_stream_is_truncated(self, tmp_path):
        """Node trailers alone (job still running) must read as a
        truncated run, not as final stats."""
        run = load_audit(self.merged_stream(tmp_path / "m.jsonl", with_global=False))
        assert run.stats is None and run.truncated
        assert len(run.node_stats) == 2

    def test_render_report_lists_nodes(self, tmp_path):
        text = render_report(load_audit(self.merged_stream(tmp_path / "m.jsonl")))
        assert "nodes: n1 (1 file(s)), n2 (1 file(s))" in text
        assert "files: 2/2 audited" in text

    def test_diff_tolerates_merged_streams(self, tmp_path):
        """`repro report --diff` between a single-box run and a merged
        fleet run of the same corpus must be clean."""
        merged = self.merged_stream(tmp_path / "merged.jsonl")
        single = write_stream(
            tmp_path / "single.jsonl",
            [file_record("a.php"), file_record("b.php", safe=False)],
        )
        assert main(["report", "--diff", str(single), str(merged)]) == 0
        assert main(["report", "--diff", str(merged), str(single)]) == 0


class TestRenderReport:
    def test_summary_contents(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl",
            [
                file_record("slow.php", safe=False, duration=2.5,
                            timings={"parse": 0.1, "sat": 2.0},
                            solver={"backend": "cdcl", "solve_calls": 3, "decisions": 9}),
                file_record("fast.php", duration=0.1),
                file_record("bad.php", status="timeout", safe=None),
            ],
        )
        text = render_report(load_audit(path))
        assert "1 safe, 1 vulnerable, 1 failed" in text
        assert "failures: 1 timeout" in text
        assert "stage time: parse 0.10s, sat 2.00s" in text
        assert "solver: 3 solve calls, 9 decisions" in text
        assert "slowest 2 file(s):" in text
        assert text.index("slow.php") < text.index("fast.php")

    def test_truncated_warning(self, tmp_path):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")], stats=None)
        assert "no stats trailer" in render_report(load_audit(path))

    def test_interrupted_warning(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl", [file_record("a.php")], stats={"interrupted": True}
        )
        assert "interrupted" in render_report(load_audit(path))

    def test_top_limits_slowest_list(self, tmp_path):
        records = [file_record(f"f{i}.php", duration=float(i)) for i in range(5)]
        path = write_stream(tmp_path / "a.jsonl", records)
        text = render_report(load_audit(path), top=2)
        assert "slowest 2 file(s):" in text
        assert "f4.php" in text and "f0.php" not in text

    def test_mean_duration_line(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl",
            [
                file_record("a.php", duration=1.0),
                file_record("b.php", duration=3.0),
                file_record("c.php", status="timeout", safe=None),  # no duration
            ],
        )
        text = render_report(load_audit(path))
        assert "per-file duration: mean 2.000s, max 3.000s" in text

    def test_trailer_only_stream_renders_without_division_by_zero(self, tmp_path):
        # A drained daemon cycle or an audit interrupted before the first
        # outcome produces a stats trailer and zero file records; the
        # duration summary must be omitted, not crash.
        path = write_stream(tmp_path / "empty.jsonl", [])
        text = render_report(load_audit(path))
        assert "files: 0/0 audited" in text
        assert "per-file duration" not in text

    def test_records_without_durations_omit_the_line(self, tmp_path):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert "per-file duration" not in render_report(load_audit(path))


class TestDiffRuns:
    def run_of(self, records):
        return AuditRun(path="mem", files=records)

    def test_classification(self):
        old = self.run_of(
            [
                file_record("same.php"),
                file_record("regress.php"),
                file_record("fix.php", safe=False),
                file_record("still.php", safe=False),
                file_record("break.php"),
                file_record("recover.php", status="timeout", safe=None),
                file_record("gone.php"),
            ]
        )
        new = self.run_of(
            [
                file_record("same.php"),
                file_record("regress.php", safe=False),
                file_record("fix.php"),
                file_record("still.php", safe=False),
                file_record("break.php", status="crash", safe=None),
                file_record("recover.php"),
                file_record("fresh-vuln.php", safe=False),
                file_record("fresh-safe.php"),
            ]
        )
        diff = diff_runs(old, new)
        assert diff.new_vulnerable == ["fresh-vuln.php"]
        assert diff.regressed == ["regress.php"]
        assert diff.fixed == ["fix.php"]
        assert diff.broken == ["break.php"]
        assert diff.recovered == ["recover.php"]
        assert diff.removed == ["gone.php"]
        assert diff.added == ["fresh-safe.php"]
        assert diff.still_vulnerable == 1
        assert diff.has_regressions

    def test_identical_runs_clean(self):
        records = [file_record("a.php"), file_record("b.php", safe=False)]
        diff = diff_runs(self.run_of(records), self.run_of(records))
        assert not diff.has_regressions
        assert diff.still_vulnerable == 1

    def test_render_diff_verdict_line(self):
        old = self.run_of([file_record("a.php")])
        clean = diff_runs(old, old)
        assert "result: no regressions" in render_diff(old, old, clean)
        new = self.run_of([file_record("a.php", safe=False)])
        bad = diff_runs(old, new)
        text = render_diff(old, new, bad)
        assert "result: REGRESSIONS FOUND" in text
        assert "regressed (safe → vulnerable): 1" in text


class TestStageQuantiles:
    def records(self):
        return [
            file_record("a.php", timings={"parse": 0.02, "sat": 0.4}),
            file_record("b.php", timings={"parse": 0.03, "sat": 0.6}),
            file_record("c.php", cached=True, timings={"parse": 9.0}),
        ]

    def test_cached_records_excluded(self):
        quantiles = stage_quantiles(self.records())
        assert quantiles["parse"]["count"] == 2
        assert quantiles["parse"]["p99"] < 1.0  # the cached 9.0s never counted

    def test_stage_order_and_bounds(self):
        quantiles = stage_quantiles(self.records())
        assert list(quantiles) == ["parse", "sat"]
        sat = quantiles["sat"]
        assert 0.0 < sat["p50"] <= sat["p90"] <= sat["p99"]

    def test_render_report_prints_quantile_section(self, tmp_path):
        path = write_stream(tmp_path / "a.jsonl", self.records())
        text = render_report(load_audit(path))
        assert "stage latency p50/p90/p99 (bucket-interpolated):" in text
        assert "parse" in text and "sat" in text

    def test_no_timings_no_section(self, tmp_path):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert "stage latency" not in render_report(load_audit(path))


class TestSlowQueries:
    def fleet_stream(self, path):
        queries = {
            "n1": [{"seconds": 0.5, "file": "a.php", "assert_id": 1,
                    "decisions": 10, "conflicts": 2, "fingerprint": "f" * 64}],
            "n2": [{"seconds": 0.9, "file": "b.php", "assert_id": 2,
                    "decisions": 20, "conflicts": 4, "fingerprint": "e" * 64}],
        }
        records = [
            file_record("a.php", node="n1"),
            file_record("b.php", node="n2"),
            {"type": "stats", "node": "n1", "files": 1, "safe": 1,
             "vulnerable": 0, "failed": 0, "slow_queries": queries["n1"]},
            {"type": "stats", "node": "n2", "files": 1, "safe": 1,
             "vulnerable": 0, "failed": 0, "slow_queries": queries["n2"]},
            {"type": "stats", "total": 2, "safe": 2, "vulnerable": 0,
             "wall_seconds": 0.5},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        return path

    def test_merged_across_node_trailers(self, tmp_path):
        run = load_audit(self.fleet_stream(tmp_path / "m.jsonl"))
        slow = run.slow_queries()
        assert [q["seconds"] for q in slow] == [0.9, 0.5]
        assert [q["node"] for q in slow] == ["n2", "n1"]

    def test_top_limits(self, tmp_path):
        run = load_audit(self.fleet_stream(tmp_path / "m.jsonl"))
        assert len(run.slow_queries(top=1)) == 1

    def test_render_report_table(self, tmp_path):
        text = render_report(load_audit(self.fleet_stream(tmp_path / "m.jsonl")))
        assert "slow queries (top 2):" in text
        assert "node n1" in text and "node n2" in text
        assert "fp eeeeeeeeeeee" in text

    def test_falls_back_to_file_records(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl",
            [file_record("a.php", slow_queries=[
                {"seconds": 0.3, "file": "a.php", "assert_id": 1}
            ])],
        )
        slow = load_audit(path).slow_queries()
        assert len(slow) == 1 and slow[0]["seconds"] == 0.3

    def test_absent_ledger_renders_no_section(self, tmp_path):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert "slow queries" not in render_report(load_audit(path))


class TestSummarizeRun:
    def test_json_able_and_complete(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl",
            [
                file_record("a.php", duration=0.2,
                            timings={"parse": 0.1, "sat": 0.1}),
                file_record("b.php", safe=False, duration=0.4,
                            timings={"parse": 0.2, "sat": 0.2}),
            ],
        )
        summary = summarize_run(load_audit(path))
        json.dumps(summary)  # must be JSON-able as-is
        assert summary["files_audited"] == 2
        assert summary["verdicts"]["safe"] == 1
        assert summary["verdicts"]["vulnerable"] == 1
        assert summary["verdicts"]["failed"] == 0
        assert summary["duration"]["max"] == 0.4
        assert summary["stage_quantiles"]["sat"]["count"] == 2
        assert [f["filename"] for f in summary["slowest_files"]] == ["b.php", "a.php"]

    def test_top_bounds_lists(self, tmp_path):
        path = write_stream(
            tmp_path / "a.jsonl",
            [file_record(f"f{i}.php", duration=0.1 * i) for i in range(5)],
        )
        summary = summarize_run(load_audit(path), top=2)
        assert len(summary["slowest_files"]) == 2


def replay_section(confirmed=1, refuted=0, unsupported=0, **extra):
    section = {
        "confirmed": confirmed,
        "refuted": refuted,
        "unsupported": unsupported,
        "patched_refuted": confirmed,
        "patched_confirmed": 0,
        "patched_unsupported": 0,
        "skipped": 0,
        "traces": [],
    }
    section.update(extra)
    return section


class TestReplayReporting:
    def test_pre_replay_streams_tolerated(self, tmp_path):
        """Streams written before the replay section existed (or with
        ``--replay off``) must summarize without KeyError."""
        path = write_stream(
            tmp_path / "old.jsonl",
            [file_record("a.php"), file_record("b.php", safe=False)],
        )
        run = load_audit(path)
        summary = summarize_run(run)
        assert summary["replay"] == {}
        assert summary["replay_disagreements"] == []
        assert "replay:" not in render_report(run)

    def test_mixed_streams_aggregate_only_replay_records(self, tmp_path):
        # One pre-replay record, one annotated: the dict-shaped section
        # aggregates; the absent one contributes nothing.
        path = write_stream(
            tmp_path / "mix.jsonl",
            [
                file_record("old.php", safe=False),
                file_record("new.php", safe=False, replay=replay_section()),
            ],
        )
        summary = summarize_run(load_audit(path))
        assert summary["replay"]["confirmed"] == 1

    def test_replay_counts_render_in_text_and_json(self, tmp_path):
        path = write_stream(
            tmp_path / "r.jsonl",
            [
                file_record("a.php", safe=False, replay=replay_section()),
                file_record(
                    "b.php", safe=False, replay=replay_section(unsupported=1)
                ),
            ],
        )
        run = load_audit(path)
        text = render_report(run)
        assert "replay: 2 confirmed, 0 refuted, 1 unsupported" in text
        assert "patched replay: 2 killed, 0 survived" in text
        summary = summarize_run(run)
        assert summary["replay"]["confirmed"] == 2
        assert summary["replay"]["unsupported"] == 1

    def test_disagreements_listed_and_detected(self, tmp_path):
        path = write_stream(
            tmp_path / "d.jsonl",
            [
                file_record(
                    "fp.php", safe=False, replay=replay_section(confirmed=0, refuted=2)
                ),
                file_record("ok.php", safe=False, replay=replay_section()),
                # refuted replays on a SAFE record are impossible in
                # practice but must not be flagged as a disagreement.
                file_record(
                    "safe.php", safe=True, replay=replay_section(confirmed=0, refuted=1)
                ),
            ],
        )
        run = load_audit(path)
        disagreements = replay_disagreements(run.files)
        assert [d["filename"] for d in disagreements] == ["fp.php"]
        text = render_report(run)
        assert "replay disagreements (vulnerable but refuted): 1" in text
        assert "fp.php" in text

    def test_cli_exit_three_on_disagreement(self, tmp_path, capsys):
        path = write_stream(
            tmp_path / "d.jsonl",
            [file_record("fp.php", safe=False,
                         replay=replay_section(confirmed=0, refuted=1))],
        )
        assert main(["report", str(path)]) == 3
        assert "disagreements" in capsys.readouterr().out

    def test_cli_exit_zero_when_replays_agree(self, tmp_path):
        path = write_stream(
            tmp_path / "ok.jsonl",
            [file_record("ok.php", safe=False, replay=replay_section())],
        )
        assert main(["report", str(path)]) == 0

    def test_html_renders_confirmed_column(self, tmp_path, capsys):
        path = write_stream(
            tmp_path / "r.jsonl",
            [file_record("a.php", safe=False, replay=replay_section())],
        )
        out = tmp_path / "dash.html"
        assert main(["report", str(path), "--html", str(out)]) == 0
        page = out.read_text()
        assert "confirmed" in page


class TestReportCli:
    def test_summary_exit_zero(self, tmp_path, capsys):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert main(["report", str(path)]) == 0
        assert "audit report" in capsys.readouterr().out

    def test_diff_clean_exit_zero(self, tmp_path, capsys):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert main(["report", "--diff", str(path), str(path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_regression_exit_one(self, tmp_path, capsys):
        old = write_stream(tmp_path / "old.jsonl", [file_record("a.php")])
        new = write_stream(
            tmp_path / "new.jsonl", [file_record("a.php", safe=False)]
        )
        assert main(["report", "--diff", str(old), str(new)]) == 1
        assert "REGRESSIONS FOUND" in capsys.readouterr().out

    def test_malformed_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"nope\n{"also": "nope"}\n')
        assert main(["report", str(bad)]) == 2
        assert "report:" in capsys.readouterr().err

    def test_missing_file_exit_two(self, tmp_path):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert main(["report"]) == 2
        assert main(["report", str(path), "--diff", str(path), str(path)]) == 2

    def test_json_flag_emits_machine_readable_summary(self, tmp_path, capsys):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert main(["report", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["files_audited"] == 1
        assert summary["verdicts"]["safe"] == 1

    def test_html_flag_writes_dashboard(self, tmp_path, capsys):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        out = tmp_path / "dash.html"
        assert main(["report", str(path), "--html", str(out)]) == 0
        captured = capsys.readouterr()
        assert "audit report" in captured.out  # text report still printed
        assert "wrote dashboard" in captured.err
        page = out.read_text()
        assert page.startswith("<!DOCTYPE html>") and "id='verdicts'" in page

    def test_json_and_html_combine(self, tmp_path, capsys):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        out = tmp_path / "dash.html"
        assert main(["report", str(path), "--json", "--html", str(out)]) == 0
        json.loads(capsys.readouterr().out)
        assert out.exists()

    def test_diff_with_json_or_html_rejected(self, tmp_path, capsys):
        path = write_stream(tmp_path / "a.jsonl", [file_record("a.php")])
        assert main(["report", "--diff", str(path), str(path), "--json"]) == 2
        assert main(
            ["report", "--diff", str(path), str(path), "--html", str(tmp_path / "x.html")]
        ) == 2
        assert "single-stream" in capsys.readouterr().err
