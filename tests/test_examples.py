"""Every example script must run cleanly (they contain their own asserts)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they do"
