"""Tests for the content-addressed result cache (repro.engine.cache)."""

import json

from repro.engine.cache import (
    ENGINE_VERSION,
    ResultCache,
    cache_key,
    default_cache_dir,
    policy_fingerprint,
)
from repro.policy.preludefile import parse_prelude
from repro.websari.pipeline import WebSSARI


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("<?php", "fp") == cache_key("<?php", "fp")

    def test_source_changes_key(self):
        assert cache_key("<?php echo 1;", "fp") != cache_key("<?php echo 2;", "fp")

    def test_policy_changes_key(self):
        assert cache_key("<?php", "fp-a") != cache_key("<?php", "fp-b")

    def test_extra_changes_key(self):
        assert cache_key("<?php", "fp", "entry=a.php") != cache_key("<?php", "fp", "entry=b.php")

    def test_no_field_concatenation_collisions(self):
        # (source, extra) pairs must not collide by sliding bytes between fields.
        assert cache_key("ab", "fp", "c") != cache_key("b", "fp", "ca")


class TestPolicyFingerprint:
    def test_stable_across_equal_policies(self):
        assert policy_fingerprint(WebSSARI()) == policy_fingerprint(WebSSARI())

    def test_prelude_changes_fingerprint(self):
        custom = parse_prelude("sink show tainted xss\n")
        assert policy_fingerprint(WebSSARI()) != policy_fingerprint(WebSSARI(prelude=custom))

    def test_options_change_fingerprint(self):
        assert policy_fingerprint(WebSSARI()) != policy_fingerprint(
            WebSSARI(max_unfold_depth=5)
        )
        assert policy_fingerprint(WebSSARI()) != policy_fingerprint(
            WebSSARI(sanitize_in_place=False)
        )


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("src", "fp")
        assert cache.get(key) is None
        cache.put(key, {"filename": "a.php", "status": "ok"})
        record = cache.get(key)
        assert record["filename"] == "a.php"
        assert record["status"] == "ok"
        assert len(cache) == 1

    def test_corrupt_entry_is_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("src", "fp")
        cache.put(key, {"status": "ok"})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert not path.exists()

    def test_wrong_record_version_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("src", "fp")
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"status": "ok", "record_version": -1}))
        assert cache.get(key) is None

    def test_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("src", "fp")
        cache.put(key, {"status": "ok"})
        assert (tmp_path / "objects" / key[:2] / f"{key}.json").exists()


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-audit"


def test_engine_version_is_nonempty_string():
    assert isinstance(ENGINE_VERSION, str) and ENGINE_VERSION
