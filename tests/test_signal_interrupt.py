"""End-to-end signal handling: SIGINT to a real ``repro audit`` process.

The in-process engine tests cover the drain machinery; this suite covers
the actual contract a user's ^C exercises — a subprocess running the CLI
against a slow corpus, interrupted mid-run, must:

* exit with code 130 (the conventional 128+SIGINT);
* leave a *well-formed* JSONL stream — every line standalone JSON,
  exactly one stats trailer carrying ``"interrupted": true``;
* leave the result cache consistent enough that a warm re-run completes
  and reuses every verdict the interrupted run managed to finish.

POSIX-only (signal delivery semantics); each file takes ~0.5s to verify
so the interrupt window after the first completed record is wide.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(os.name != "posix", reason="POSIX signal semantics")

SRC = Path(__file__).resolve().parent.parent / "src"
FILE_COUNT = 20


def slow_php(i: int, branches: int = 9) -> str:
    """A branch-heavy vulnerable page: ~0.5s of BMC work per file."""
    lines = ["<?php", f"$v = $_GET['x{i}'];"]
    for j in range(branches):
        lines.append(f"if ($_GET['c{j}']) {{ $v = $v . $_GET['y{j}']; }}")
    lines.append("echo $v;")
    return "\n".join(lines) + "\n"


def spawn_audit(corpus: Path, cache: Path, stream: Path) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "audit", str(corpus),
            "--jobs", "2", "--quiet",
            "--cache-dir", str(cache), "--jsonl", str(stream),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )


def parsed_lines(stream: Path) -> list[dict]:
    if not stream.exists():
        return []
    out = []
    for line in stream.read_text().splitlines():
        if line.strip():
            out.append(json.loads(line))  # every line must be standalone JSON
    return out


def wait_for_first_record(proc: subprocess.Popen, stream: Path, deadline: float):
    while time.monotonic() < deadline:
        records = [r for r in parsed_lines(stream) if r.get("type") == "file"]
        if records:
            return records
        if proc.poll() is not None:
            pytest.fail(
                f"audit exited (rc={proc.returncode}) before the first record: "
                f"{proc.stderr.read()}"
            )
        time.sleep(0.05)
    proc.kill()
    pytest.fail("no file record appeared within the deadline")


class TestSigintMidCorpus:
    def test_interrupt_then_warm_rerun(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        for i in range(FILE_COUNT):
            (corpus / f"f{i}.php").write_text(slow_php(i))
        cache = tmp_path / "cache"
        first_stream = tmp_path / "first.jsonl"

        proc = spawn_audit(corpus, cache, first_stream)
        try:
            wait_for_first_record(proc, first_stream, time.monotonic() + 120)
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 130

        records = parsed_lines(first_stream)
        trailers = [r for r in records if r.get("type") == "stats"]
        files = [r for r in records if r.get("type") == "file"]
        assert len(trailers) == 1, "exactly one stats trailer even when interrupted"
        trailer = trailers[0]
        assert trailer["interrupted"] is True
        assert trailer["total"] == FILE_COUNT
        # The interrupt must have landed mid-corpus, or this test proved
        # nothing — the corpus is slow enough that this cannot race.
        assert 0 < len(files) < FILE_COUNT

        # Warm re-run over the same cache directory: completes, reuses
        # every verdict the interrupted run finished, and reports clean.
        second_stream = tmp_path / "second.jsonl"
        proc2 = spawn_audit(corpus, cache, second_stream)
        _, stderr = proc2.communicate(timeout=600)
        assert proc2.returncode == 1, f"vulnerable corpus must exit 1: {stderr}"
        second = parsed_lines(second_stream)
        trailer2 = [r for r in second if r.get("type") == "stats"][0]
        assert "interrupted" not in trailer2
        assert trailer2["completed"] == FILE_COUNT
        assert trailer2["cache_hits"] >= len(files), (
            "verdicts persisted before the SIGINT must be reused"
        )
        assert trailer2["vulnerable"] == FILE_COUNT
