"""Patch round-trip over randomly generated projects.

For arbitrary generated vulnerability topologies, the BMC project patch
must (a) produce sources that still parse, (b) re-verify safe, and
(c) use exactly one guard per error group — even when a cluster's taint
crosses an include boundary, where the guard lands in the included file.
The TS patch must also re-verify safe with one guard per symptom.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WebSSARI
from repro.corpus import ProjectSpec, generate_project
from repro.php.parser import parse


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
def test_bmc_patch_roundtrip(groups, extra, seed):
    websari = WebSSARI()
    spec = ProjectSpec(
        name=f"patch{seed}", ts_errors=groups + extra, bmc_groups=groups, seed=seed
    )
    generated = generate_project(spec)
    report, patched_project, results = websari.patch_project(generated.project)
    for path in patched_project.paths():
        parse(patched_project.source(path), path)  # must still be valid PHP
    total_guards = sum(r.num_guards for r in results.values())
    assert total_guards == groups, f"seed {seed}"
    re_report = websari.verify_project(patched_project)
    assert re_report.safe, f"seed {seed}: " + ", ".join(
        r.filename for r in re_report.vulnerable_reports
    )


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
def test_ts_patch_roundtrip(groups, extra, seed):
    websari = WebSSARI()
    ts_errors = groups + extra
    spec = ProjectSpec(
        name=f"tspatch{seed}", ts_errors=ts_errors, bmc_groups=groups, seed=seed
    )
    generated = generate_project(spec)
    report, patched_project, results = websari.patch_project(
        generated.project, strategy="ts"
    )
    for path in patched_project.paths():
        parse(patched_project.source(path), path)
    total_guards = sum(r.num_guards for r in results.values())
    assert total_guards == ts_errors, f"seed {seed}"
    re_report = websari.verify_project(patched_project)
    assert re_report.safe, f"seed {seed}"


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
def test_bmc_patch_is_never_larger_than_ts_patch(groups, extra, seed):
    websari = WebSSARI()
    spec = ProjectSpec(
        name=f"cmp{seed}", ts_errors=groups + extra, bmc_groups=groups, seed=seed
    )
    generated = generate_project(spec)
    _, _, bmc_results = websari.patch_project(generated.project, strategy="bmc")
    _, _, ts_results = websari.patch_project(generated.project, strategy="ts")
    bmc_guards = sum(r.num_guards for r in bmc_results.values())
    ts_guards = sum(r.num_guards for r in ts_results.values())
    assert bmc_guards <= ts_guards
