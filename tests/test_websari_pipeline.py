"""Integration tests for the end-to-end WebSSARI pipeline."""

import pytest

from repro import WebSSARI
from repro.instrument import GUARD_FUNCTION_NAME
from repro.interp import HttpRequest, MockDatabase, run_php
from repro.php import SourceProject
from repro.websari import count_statements
from repro.php.parser import parse


@pytest.fixture(scope="module")
def websari():
    return WebSSARI()


FIGURE7 = """<?php
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid"; DoSQL($i2q);
$fnq = "SELECT * FROM questions WHERE sid='$sid'"; DoSQL($fnq);
"""


class TestVerifySource:
    def test_safe_code(self, websari):
        report = websari.verify_source("<?php echo 'hello';")
        assert report.safe
        assert report.ts_error_count == 0
        assert report.bmc_group_count == 0

    def test_vulnerable_code(self, websari):
        report = websari.verify_source("<?php echo $_GET['q'];")
        assert not report.safe
        assert report.ts_error_count == 1
        assert report.bmc_group_count == 1

    def test_figure7_headline(self, websari):
        report = websari.verify_source(FIGURE7)
        assert report.ts_error_count == 3
        assert report.bmc_group_count == 1
        assert report.grouping.fixing_set == {"sid"}

    def test_bmc_never_exceeds_ts(self, websari):
        # Grouping can only merge symptoms, never invent new ones.
        sources = [
            "<?php $a = $_GET['a']; echo $a; echo $a;",
            FIGURE7,
            "<?php echo $_GET['x']; echo $_POST['y'];",
        ]
        for source in sources:
            report = websari.verify_source(source)
            assert report.bmc_group_count <= report.ts_error_count

    def test_summary_renders(self, websari):
        report = websari.verify_source(FIGURE7)
        text = report.summary()
        assert "VULNERABLE" in text
        assert "TS-reported errors: 3" in text
        assert "BMC-reported error groups: 1" in text

    def test_detailed_report_renders(self, websari):
        report = websari.verify_source(FIGURE7)
        text = report.detailed_report()
        assert "GROUP $sid" in text
        assert "counterexample" in text
        assert "FIX: sanitize $sid" in text

    def test_detailed_report_safe(self, websari):
        report = websari.verify_source("<?php echo 'x';")
        assert "no counterexamples" in report.detailed_report()

    def test_statement_count(self):
        program = parse("<?php $a = 1; if ($c) { $b = 2; } while ($d) { $e = 3; }")
        assert count_statements(program) == 5


class TestPatching:
    def test_bmc_patch_is_verified_safe(self, websari):
        report, patched = websari.patch_source(FIGURE7, strategy="bmc")
        assert patched.num_guards == 1
        assert GUARD_FUNCTION_NAME in patched.source
        re_report = websari.verify_source(patched.source)
        assert re_report.safe

    def test_ts_patch_is_verified_safe(self, websari):
        report, patched = websari.patch_source(FIGURE7, strategy="ts")
        assert patched.num_guards == 3
        re_report = websari.verify_source(patched.source)
        assert re_report.safe

    def test_bmc_patch_fewer_guards_than_ts(self, websari):
        _, bmc_patch = websari.patch_source(FIGURE7, strategy="bmc")
        _, ts_patch = websari.patch_source(FIGURE7, strategy="ts")
        assert bmc_patch.num_guards < ts_patch.num_guards

    def test_unknown_strategy_rejected(self, websari):
        with pytest.raises(ValueError):
            websari.patch_source(FIGURE7, strategy="magic")

    def test_patched_code_runs_and_blocks_injection(self, websari):
        source = """<?php
$ref = $HTTP_REFERER;
$sql = "INSERT INTO track_temp VALUES('$ref')";
mysql_query($sql);
"""
        _, patched = websari.patch_source(source, strategy="bmc")
        db = MockDatabase()
        db.create_table("users", [{"name": "a"}])
        db.create_table("track_temp", [])
        request = HttpRequest(referer="');DROP TABLE ('users")
        run_php(patched.source, request=request, database=db)
        assert db.dropped_tables == []

    def test_unpatched_code_allows_injection(self):
        source = """<?php
$ref = $HTTP_REFERER;
$sql = "INSERT INTO track_temp VALUES('$ref')";
mysql_query($sql);
"""
        db = MockDatabase()
        db.create_table("users", [{"name": "a"}])
        db.create_table("track_temp", [])
        request = HttpRequest(referer="');DROP TABLE ('users")
        run_php(source, request=request, database=db)
        assert "users" in db.dropped_tables

    def test_patch_preserves_benign_behaviour(self, websari):
        source = """<?php
$name = $_GET['name'];
echo "Hello, $name!";
"""
        _, patched = websari.patch_source(source, strategy="bmc")
        env = run_php(patched.source, request=HttpRequest(get={"name": "alice"}))
        assert "Hello, alice!" in env.response_body()

    def test_patch_neutralizes_xss(self, websari):
        source = """<?php
$name = $_GET['name'];
echo "Hello, $name!";
"""
        _, patched = websari.patch_source(source, strategy="bmc")
        request = HttpRequest(get={"name": "<script>evil()</script>"})
        env = run_php(patched.source, request=request)
        assert "<script>" not in env.response_body()


class TestVerifyProject:
    def test_multi_file_project(self, websari):
        project = SourceProject(
            {
                "index.php": "<?php include 'lib.php'; echo $config;",
                "lib.php": "<?php $config = 'static';",
                "vuln.php": "<?php echo $_GET['x'];",
            }
        )
        report = websari.verify_project(project)
        assert report.num_files == 3
        assert report.num_vulnerable_files == 1
        assert report.ts_error_count == 1

    def test_taint_flows_through_include(self, websari):
        project = SourceProject(
            {
                "index.php": "<?php include 'input.php'; echo $q;",
                "input.php": "<?php $q = $_GET['q'];",
            }
        )
        report = websari.verify_project(project, entries=["index.php"])
        assert report.num_vulnerable_files == 1

    def test_entries_restriction(self, websari):
        project = SourceProject(
            {
                "a.php": "<?php echo $_GET['x'];",
                "b.php": "<?php echo 'safe';",
            }
        )
        report = websari.verify_project(project, entries=["b.php"])
        assert report.safe
        assert len(report.reports) == 1

    def test_aggregate_counts(self, websari):
        project = SourceProject(
            {
                "one.php": "<?php $s = $_GET['s']; DoSQL($s); DoSQL($s);",
                "two.php": "<?php echo $_COOKIE['c'];",
            }
        )
        report = websari.verify_project(project)
        assert report.ts_error_count == 3
        assert report.bmc_group_count == 2
        assert report.num_statements > 0

    def test_top_level_import(self):
        import repro

        assert repro.WebSSARI is WebSSARI


class TestPatchProject:
    def test_patch_project_round_trip(self, websari):
        project = SourceProject(
            {
                "safe.php": "<?php echo 'ok';",
                "vuln.php": "<?php $sid = $_GET['s']; DoSQL($sid); DoSQL($sid);",
            }
        )
        report, patched_project, results = websari.patch_project(project)
        assert not report.safe
        assert set(results) == {"vuln.php"}
        assert results["vuln.php"].num_guards == 1
        # Safe file untouched.
        assert patched_project.source("safe.php") == project.source("safe.php")
        # Re-verification of the patched project is clean.
        re_report = websari.verify_project(patched_project)
        assert re_report.safe

    def test_patch_project_ts_strategy(self, websari):
        project = SourceProject({"v.php": "<?php echo $_GET['a']; echo $_GET['b'];"})
        report, patched_project, results = websari.patch_project(project, strategy="ts")
        assert results["v.php"].num_guards == 2
        assert websari.verify_project(patched_project).safe

    def test_patch_project_on_generated_corpus_project(self, websari):
        from repro.corpus import ProjectSpec, generate_project

        generated = generate_project(
            ProjectSpec(name="ppatch", ts_errors=7, bmc_groups=3, target_files=3)
        )
        report, patched_project, results = websari.patch_project(generated.project)
        assert sum(r.num_guards for r in results.values()) == 3
        assert websari.verify_project(patched_project).safe

    def test_patch_project_unknown_strategy(self, websari):
        project = SourceProject({"v.php": "<?php echo $_GET['a'];"})
        with pytest.raises(ValueError):
            websari.patch_project(project, strategy="nope")
