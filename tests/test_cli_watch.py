"""Tests for the ``repro watch`` subcommand's CLI surface: argument
validation exit codes and the ``--once`` smoke mode.  The daemon's
behaviour itself is covered by ``test_daemon_watch.py`` /
``test_daemon_loop.py`` / ``test_metrics_server.py``; end-to-end signal
drain by the CI smoke step."""

import json

import pytest

from repro.cli import main

VULN = "<?php echo $_GET['q'];\n"
SAFE = "<?php echo 'hello';\n"


@pytest.fixture
def corpus(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "vuln.php").write_text(VULN)
    (root / "safe.php").write_text(SAFE)
    return root


class TestArgumentValidation:
    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "absent")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_file_root_exits_two(self, corpus):
        assert main(["watch", str(corpus / "vuln.php")]) == 2

    def test_bad_metrics_address_exits_two(self, corpus, capsys):
        assert main(["watch", str(corpus), "--serve-metrics", "nope"]) == 2
        assert "invalid metrics address" in capsys.readouterr().err


class TestOnceMode:
    def test_once_audits_a_fresh_corpus_despite_debounce(self, tmp_path, corpus, capsys):
        # A just-written corpus sits entirely inside the default 0.5s
        # debounce window; --once must override it (one-shot smoke would
        # otherwise audit nothing and still exit 0).
        out = tmp_path / "cycles"
        rc = main(
            ["watch", str(corpus), "--once", "--quiet",
             "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(out)]
        )
        capsys.readouterr()
        assert rc == 0
        stream = out / "cycle-000001.jsonl"
        assert stream.exists()
        lines = [json.loads(l) for l in stream.read_text().splitlines()]
        files = {r["filename"]: r for r in lines if r["type"] == "file"}
        assert files[str(corpus / "vuln.php")]["safe"] is False
        assert files[str(corpus / "safe.php")]["safe"] is True
        trailer = lines[-1]
        assert trailer["type"] == "stats"
        assert trailer["cycle"] == 1 and trailer["watched_files"] == 2

    def test_once_on_an_empty_tree_exits_zero(self, tmp_path, capsys):
        root = tmp_path / "empty"
        root.mkdir()
        rc = main(
            ["watch", str(root), "--once", "--quiet",
             "--cache-dir", str(tmp_path / "cache"),
             "--out-dir", str(tmp_path / "cycles")]
        )
        capsys.readouterr()
        assert rc == 0
