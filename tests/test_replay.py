"""Unit tests for the witness-replay subsystem (``src/repro/replay/``).

Covers the three layers in isolation: the sentinel's
survive-every-sanitizer design, the span→condition solver, and the
replayer's verdict semantics — confirmed/refuted/unsupported, the
optimistic-confirmation rule, the patched re-run, and the guarantee
that replay degrades instead of failing an audit.
"""

import json

import pytest

from repro.interp import HttpRequest, run_php
from repro.php.parser import parse
from repro.replay import (
    MAX_REPLAYED_TRACES,
    SENTINEL,
    canonical_request_text,
    collect_input_keys,
    index_conditions,
    replay_counterexamples,
    replay_for_task,
    replay_source,
    sentinel_observed,
    solve_condition,
    summarize_replays,
    synthesize_request,
)
from repro.replay.conditions import ABSENT
from repro.websari.pipeline import WebSSARI


def verify_and_replay(source, filename="test.php", **kwargs):
    report = WebSSARI().verify_source(source, filename=filename)
    return report, replay_source(source, report, filename, **kwargs)


class TestSentinel:
    """Every sanitizer in the subset must destroy the sentinel."""

    @pytest.mark.parametrize(
        "sanitizer",
        [
            "htmlspecialchars($x, ENT_QUOTES)",
            "htmlentities($x)",
            "addslashes($x)",
            "mysql_escape_string($x)",
            "strip_tags($x)",
            "intval($x)",
        ],
    )
    def test_sanitizers_break_the_sentinel(self, sanitizer):
        source = f"<?php $x = $_GET['q']; echo {sanitizer};\n"
        env = run_php(source, HttpRequest(get={"q": SENTINEL}))
        assert sentinel_observed(env) is None, (
            f"{sanitizer} left the sentinel intact: {env.response_body()!r}"
        )

    def test_unsanitized_echo_is_observed_on_response(self):
        env = run_php("<?php echo $_GET['q'];\n", HttpRequest(get={"q": SENTINEL}))
        assert sentinel_observed(env) == "response"

    def test_sql_channel_is_scoped_to_the_run(self):
        env = run_php(
            "<?php mysql_query(\"SELECT '{$_GET['q']}'\");\n",
            HttpRequest(get={"q": SENTINEL}),
        )
        assert sentinel_observed(env) == "sql"
        # Pretend these queries came from an earlier run sharing the
        # database: scoping past them must empty the sql channel (the
        # per-run sink_log still carries the call — that is fresh state).
        from repro.replay.sentinel import observation_channels

        scoped = observation_channels(
            env, sql_log_start=len(env.database.query_log)
        )
        assert SENTINEL not in scoped["sql"]
        assert SENTINEL in scoped["sink"]

    def test_sentinel_is_truthy_and_nonnumeric(self):
        assert SENTINEL not in ("", "0")
        assert "'" in SENTINEL and '"' in SENTINEL
        assert "<" in SENTINEL and ">" in SENTINEL


class TestConditionSolver:
    def condition(self, source):
        program = parse(source, "cond.php")
        table = index_conditions(program)
        assert len(table) == 1, table
        return next(iter(table.values()))

    def test_superglobal_truthiness(self):
        cond = self.condition("<?php if ($_GET['go']) {}\n")
        assert solve_condition(cond, True) == {("get", "go"): SENTINEL}
        assert solve_condition(cond, False) == {("get", "go"): ABSENT}

    def test_negation(self):
        cond = self.condition("<?php if (!$_POST['stop']) {}\n")
        assert solve_condition(cond, True) == {("post", "stop"): ABSENT}
        assert solve_condition(cond, False) == {("post", "stop"): SENTINEL}

    def test_equality_against_literal(self):
        cond = self.condition("<?php if ($_GET['mode'] == 'admin') {}\n")
        assert solve_condition(cond, True) == {("get", "mode"): "admin"}
        assert solve_condition(cond, False) == {("get", "mode"): SENTINEL}

    def test_isset_and_empty(self):
        cond = self.condition("<?php if (isset($_COOKIE['sid'])) {}\n")
        assert solve_condition(cond, True) == {("cookie", "sid"): SENTINEL}
        assert solve_condition(cond, False) == {("cookie", "sid"): ABSENT}
        cond = self.condition("<?php if (empty($_GET['q'])) {}\n")
        assert solve_condition(cond, True) == {("get", "q"): ABSENT}

    def test_boolean_connectives(self):
        cond = self.condition("<?php if ($_GET['a'] && !$_GET['b']) {}\n")
        assert solve_condition(cond, True) == {
            ("get", "a"): SENTINEL,
            ("get", "b"): ABSENT,
        }

    def test_unsolvable_shapes_return_none(self):
        for source in (
            "<?php if ($local) {}\n",
            "<?php if (strlen($_GET['q']) > 3) {}\n",
            "<?php while ($row = mysql_fetch_array($r)) {}\n",
        ):
            assert solve_condition(self.condition(source), True) is None

    def test_referer_reads_map_to_the_referer_field(self):
        program = parse("<?php echo $HTTP_REFERER . $_SERVER['HTTP_REFERER'];\n", "r.php")
        assert collect_input_keys(program) == [("referer", "")]


class TestRequestSynthesis:
    def synthesize(self, source, trace):
        program = parse(source, "syn.php")
        return synthesize_request(
            index_conditions(program), collect_input_keys(program), trace
        )

    def trace_for(self, source, filename="syn.php"):
        report = WebSSARI().verify_source(source, filename=filename)
        traces = report.bmc.all_counterexamples()
        assert traces
        return traces[0]

    def test_baseline_plants_sentinel_on_every_input(self):
        source = "<?php echo $_GET['a'] . $_POST['b'] . $_COOKIE['c'];\n"
        trace = self.trace_for(source)
        request, unsolved = self.synthesize(source, trace)
        assert unsolved == []
        assert request.get == {"a": SENTINEL}
        assert request.post == {"b": SENTINEL}
        assert request.cookies == {"c": SENTINEL}

    def test_deciding_branch_steers_the_request(self):
        source = "<?php if ($_GET['mode'] == 'admin') { echo $_GET['q']; }\n"
        trace = self.trace_for(source)
        assert trace.deciding_branches, "witness must decide the branch"
        request, unsolved = self.synthesize(source, trace)
        assert unsolved == []
        assert request.get == {"mode": "admin", "q": SENTINEL}

    def test_canonical_request_text_is_sorted_and_stable(self):
        source = "<?php echo $_GET['z'] . $_GET['a'];\n"
        trace = self.trace_for(source)
        request, _ = self.synthesize(source, trace)
        text = canonical_request_text(request)
        assert text == json.dumps(json.loads(text), sort_keys=True)
        assert list(json.loads(text)["get"]) == ["a", "z"]


class TestVerdicts:
    def test_plain_leak_confirms_and_patch_refutes(self):
        _, results = verify_and_replay("<?php echo $_GET['q'];\n")
        assert [r.verdict for r in results] == ["confirmed"]
        assert results[0].channel == "response"
        assert results[0].patched == "refuted"

    def test_unsolved_branch_still_confirms_optimistically(self):
        # The deciding branch reads a computed local — unsolvable — but
        # the sentinel-everywhere baseline still drives the payload to
        # the sink, and an observed exploit is an exploit.
        source = "<?php $root = 0; if (!$root) { echo $_GET['q']; }\n"
        _, results = verify_and_replay(source)
        assert results and results[0].verdict == "confirmed"
        assert results[0].unsolved == ["b1"]

    def test_unsolved_branch_without_a_leak_is_unsupported(self):
        # Steering fails (computed local is falsy at runtime) and no
        # sentinel arrives: neither confirmed nor refuted.
        source = "<?php $flag = 0; if ($flag) { echo $_GET['q']; }\n"
        report = WebSSARI().verify_source(source, "u.php")
        if report.safe:
            pytest.skip("pipeline already proves this safe")
        _, results = verify_and_replay(source)
        assert all(r.verdict == "unsupported" for r in results)

    def test_runtime_error_degrades_to_unsupported(self):
        source = "<?php nonexistent_fn_xyz($_GET['q']); echo $_GET['q'];\n"
        report = WebSSARI().verify_source(source, "e.php")
        results = replay_source(source, report, "e.php")
        if not results:
            pytest.skip("no counterexamples to replay")
        assert all(r.verdict == "unsupported" for r in results)
        assert all("interpreter" in r.reason or ":" in r.reason for r in results)

    def test_max_traces_cap_is_respected(self):
        source = "<?php echo $_GET['q'];\n"
        report = WebSSARI().verify_source(source, "cap.php")
        traces = report.bmc.all_counterexamples()
        results = replay_counterexamples(
            {"cap.php": source}, "cap.php", traces, report.grouping, max_traces=0
        )
        assert results == []
        assert MAX_REPLAYED_TRACES >= 1


class TestSummaries:
    def test_summarize_counts_verdicts_and_patched(self):
        _, results = verify_and_replay("<?php echo $_GET['q'];\n")
        summary = summarize_replays(results, skipped=2)
        assert summary["confirmed"] == 1
        assert summary["refuted"] == 0
        assert summary["unsupported"] == 0
        assert summary["patched_refuted"] == 1
        assert summary["skipped"] == 2
        assert len(summary["traces"]) == 1
        json.dumps(summary)  # must be JSON-safe for the JSONL stream

    def test_replay_for_task_never_raises(self):
        class BrokenTask:
            project_files = None
            filename = "broken.php"
            source = None  # type error downstream

        class BrokenReport:
            class bmc:  # noqa: N801 - stub
                @staticmethod
                def all_counterexamples():
                    return [object(), object()]

            grouping = None

        summary = replay_for_task(BrokenTask(), BrokenReport())
        assert summary["unsupported"] == 2
        assert "error" in summary

    def test_trace_canonical_is_deterministic(self):
        source = "<?php if ($_GET['go']) { echo $_GET['q']; }\n"

        def canon():
            report = WebSSARI().verify_source(source, "det.php")
            return [t.canonical() for t in report.bmc.all_counterexamples()]

        first = canon()
        assert first and first == canon()
        assert all(isinstance(text, str) for text in first)
