"""Tests for the cross-referenced HTML report."""

from repro import WebSSARI
from repro.websari.htmlreport import render_html_report

FIGURE7 = """<?php
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid"; DoSQL($i2q);
"""


def render(source):
    report = WebSSARI().verify_source(source, filename="app.php")
    return report, render_html_report(report, source)


class TestHtmlReport:
    def test_well_formed_shell(self):
        _, html = render("<?php echo 'ok';")
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>")
        assert "app.php" in html

    def test_safe_status(self):
        _, html = render("<?php echo 'ok';")
        assert "status-safe" in html
        assert "SAFE" in html

    def test_vulnerable_status_and_groups(self):
        report, html = render(FIGURE7)
        assert "status-vuln" in html
        assert "Group 1" in html
        assert "$sid" in html
        assert "DoSQL" in html

    def test_line_anchors_exist_for_all_lines(self):
        _, html = render(FIGURE7)
        for number in range(1, FIGURE7.count("\n") + 1):
            assert f"id='L{number}'" in html

    def test_introduction_and_sink_highlighting(self):
        _, html = render(FIGURE7)
        assert "intro-line" in html
        assert "sink-line" in html

    def test_counterexample_rendered(self):
        _, html = render(FIGURE7)
        assert "VIOLATION" in html
        assert "counterexample" in html

    def test_source_is_escaped(self):
        source = "<?php echo '<script>alert(1)</script>';"
        _, html = render(source)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_cross_references_listed(self):
        _, html = render(FIGURE7)
        # $sid occurs on several lines; the xref section links them.
        assert "occurs on lines" in html

    def test_ts_symptom_section(self):
        _, html = render(FIGURE7)
        assert "TS symptom sites" in html

    def test_deterministic(self):
        _, first = render(FIGURE7)
        _, second = render(FIGURE7)
        assert first == second
