"""Tests for the MINIMUM-INTERSECTING-SET solvers (paper §3.3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    exact_minimum_intersecting_set,
    greedy_minimum_intersecting_set,
    is_intersecting_set,
    vertex_cover_instance,
)


class TestVerifier:
    def test_accepts_valid(self):
        assert is_intersecting_set([{1, 2}, {2, 3}], {2})

    def test_rejects_invalid(self):
        assert not is_intersecting_set([{1, 2}, {3, 4}], {2})

    def test_empty_collection_trivially_intersected(self):
        assert is_intersecting_set([], set())


class TestGreedy:
    def test_single_shared_element(self):
        # Figure 7's structure: all sets share the root cause.
        sets = [{"iq", "sid"}, {"i2q", "sid"}, {"fnq", "sid"}]
        assert greedy_minimum_intersecting_set(sets) == {"sid"}

    def test_disjoint_sets_need_one_each(self):
        sets = [{"a"}, {"b"}, {"c"}]
        assert greedy_minimum_intersecting_set(sets) == {"a", "b", "c"}

    def test_empty_collection(self):
        assert greedy_minimum_intersecting_set([]) == set()

    def test_empty_member_set_rejected(self):
        with pytest.raises(ValueError):
            greedy_minimum_intersecting_set([set()])

    def test_cost_steers_choice(self):
        # 'tmp' covers both sets but costs more than picking 'x' would...
        # still picks tmp (1 pick at cost 2 beats 2 picks at cost 1 per
        # the greedy ratio), so use a cost high enough to flip it.
        sets = [{"tmp", "x"}, {"tmp", "x"}]
        cheap = greedy_minimum_intersecting_set(sets, cost={"tmp": 1.5, "x": 1.0})
        assert cheap == {"x"}

    def test_deterministic_tie_breaking(self):
        sets = [{"b", "a"}, {"a", "b"}]
        for _ in range(5):
            assert greedy_minimum_intersecting_set(sets) == {"a"}

    def test_result_is_intersecting(self):
        sets = [{1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 5}]
        result = greedy_minimum_intersecting_set(sets)
        assert is_intersecting_set(sets, result)


class TestExact:
    def test_finds_true_minimum(self):
        sets = [{1, 2}, {2, 3}, {3, 4}]
        result = exact_minimum_intersecting_set(sets)
        assert is_intersecting_set(sets, result)
        assert len(result) == 2  # e.g. {2, 3} or {2, 4}

    def test_star_graph_cover(self):
        # Star K_{1,5}: the center covers all edges.
        edges = [("c", f"l{i}") for i in range(5)]
        instance = vertex_cover_instance(edges)
        assert exact_minimum_intersecting_set(instance) == {"c"}

    def test_triangle_needs_two(self):
        instance = vertex_cover_instance([("a", "b"), ("b", "c"), ("a", "c")])
        result = exact_minimum_intersecting_set(instance)
        assert len(result) == 2

    def test_self_loop_forces_vertex(self):
        instance = vertex_cover_instance([("a", "a"), ("a", "b")])
        assert exact_minimum_intersecting_set(instance) == {"a"}

    def test_universe_cap(self):
        sets = [{i, i + 1} for i in range(30)]
        with pytest.raises(ValueError, match="limited"):
            exact_minimum_intersecting_set(sets, max_elements=10)

    def test_empty(self):
        assert exact_minimum_intersecting_set([]) == set()


@st.composite
def random_instance(draw):
    num_elements = draw(st.integers(min_value=1, max_value=8))
    num_sets = draw(st.integers(min_value=1, max_value=8))
    sets = []
    for _ in range(num_sets):
        size = draw(st.integers(min_value=1, max_value=num_elements))
        members = draw(
            st.sets(
                st.integers(min_value=0, max_value=num_elements - 1),
                min_size=1,
                max_size=size,
            )
        )
        sets.append(frozenset(members))
    return sets


@settings(max_examples=120, deadline=None)
@given(random_instance())
def test_greedy_is_valid_and_within_ln_bound(sets):
    import math

    greedy = greedy_minimum_intersecting_set(sets)
    exact = exact_minimum_intersecting_set(sets)
    assert is_intersecting_set(sets, greedy)
    assert is_intersecting_set(sets, exact)
    assert len(exact) <= len(greedy)
    # Chvátal bound: greedy <= (1 + ln n) * OPT.
    bound = (1 + math.log(max(len(sets), 1))) * len(exact)
    assert len(greedy) <= bound + 1e-9


@settings(max_examples=60, deadline=None)
@given(random_instance())
def test_exact_is_minimal(sets):
    exact = exact_minimum_intersecting_set(sets)
    # No strictly smaller subset of the universe intersects everything.
    import itertools

    universe = sorted({e for s in sets for e in s})
    if len(exact) == 0:
        return
    for combo in itertools.combinations(universe, len(exact) - 1):
        assert not is_intersecting_set(sets, set(combo))
