"""Tests for the batch-audit engine (repro.engine.scheduler / worker).

The crash/timeout tests monkeypatch ``execute_task`` in the parent; the
``fork`` start method propagates the patch into worker processes, which
is exactly what makes misbehaving workers injectable.
"""

import json
import multiprocessing
import os
import time

import pytest

import repro.engine.worker as worker_module
from repro.engine import (
    AuditEngine,
    AuditTask,
    EngineConfig,
    JsonlSink,
    ResultCache,
)
from repro.policy.preludefile import parse_prelude
from repro.websari.pipeline import WebSSARI

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash/timeout injection requires the fork start method",
)

VULN = "<?php echo $_GET['q'];\n"
SAFE = "<?php echo 'hello';\n"
BROKEN = "<?php if (\n"


def make_tasks(sources):
    return [
        AuditTask(index=i, filename=name, source=src)
        for i, (name, src) in enumerate(sources)
    ]


def patch_execute(monkeypatch, special):
    """Route specific filenames to injected behaviours, rest to the real
    pipeline.  Both inline and pool modes resolve ``execute_task``
    through the worker module at call time (and ``fork`` inherits the
    patch), so one setattr covers everything."""
    real = worker_module.execute_task

    def fake(task, websari, want_report=False):
        action = special.get(task.filename)
        if action is not None:
            return action(task, websari, want_report)
        return real(task, websari, want_report)

    monkeypatch.setattr(worker_module, "execute_task", fake)


class TestInline:
    def test_outcomes_in_input_order(self):
        tasks = make_tasks([("v.php", VULN), ("s.php", SAFE), ("b.php", BROKEN)])
        result = AuditEngine(config=EngineConfig(jobs=1)).run(tasks)
        assert [o.filename for o in result.outcomes] == ["v.php", "s.php", "b.php"]
        assert [o.status for o in result.outcomes] == ["ok", "ok", "frontend-error"]
        assert result.outcomes[0].safe is False
        assert result.outcomes[1].safe is True
        assert result.any_vulnerable and result.any_failed

    def test_counts_and_stage_timings(self):
        result = AuditEngine(config=EngineConfig(jobs=1)).run(make_tasks([("v.php", VULN)]))
        outcome = result.outcomes[0]
        assert outcome.ts_errors == 1 and outcome.bmc_groups == 1
        assert set(outcome.timings) == {"parse", "filter", "ai", "sat"}
        assert "VULNERABLE" in outcome.summary
        assert "counterexample" in outcome.detailed

    def test_analysis_exception_is_isolated(self, monkeypatch):
        def boom(task, websari, want_report):
            raise ValueError("injected failure")

        patch_execute(monkeypatch, {"bad.php": boom})
        tasks = make_tasks([("bad.php", SAFE), ("v.php", VULN)])
        result = AuditEngine(config=EngineConfig(jobs=1)).run(tasks)
        # Even an executor that raises (rather than returning an error
        # record itself) must become a structured outcome, not an abort.
        assert result.outcomes[0].status == "error"
        assert "injected failure" in result.outcomes[0].error
        assert result.outcomes[1].status == "ok"

    def test_stats_tally(self):
        tasks = make_tasks([("v.php", VULN), ("s.php", SAFE), ("b.php", BROKEN)])
        stats = AuditEngine(config=EngineConfig(jobs=1)).run(tasks).stats
        assert stats.total == stats.completed == 3
        assert stats.vulnerable == 1 and stats.safe == 1 and stats.frontend_errors == 1
        assert stats.failed == 1
        assert stats.cache_misses == 3 and stats.cache_hits == 0
        # >= 0, not > 0: a coarse-resolution monotonic clock can report a
        # zero-length wall time for a three-file inline run.
        assert stats.wall_seconds >= 0
        assert any("audited 3/3" in line for line in stats.summary_lines())


class TestParallel:
    def test_matches_inline_results(self):
        tasks = make_tasks([("v.php", VULN), ("s.php", SAFE), ("b.php", BROKEN)])
        inline = AuditEngine(config=EngineConfig(jobs=1)).run(tasks)
        pooled = AuditEngine(config=EngineConfig(jobs=2)).run(tasks)
        assert [o.to_record()["summary"] for o in inline.outcomes] == [
            o.to_record()["summary"] for o in pooled.outcomes
        ]
        assert [o.status for o in inline.outcomes] == [o.status for o in pooled.outcomes]

    @needs_fork
    def test_order_is_input_order_not_completion_order(self, monkeypatch):
        real = worker_module.execute_task

        def slow(task, websari, want_report):
            time.sleep(0.4)
            return real(task, websari, want_report)

        patch_execute(monkeypatch, {"slow.php": slow})
        tasks = make_tasks([("slow.php", SAFE), ("fast1.php", VULN), ("fast2.php", SAFE)])
        result = AuditEngine(config=EngineConfig(jobs=3)).run(tasks)
        # slow.php finishes last but must still be reported first.
        assert [o.filename for o in result.outcomes] == ["slow.php", "fast1.php", "fast2.php"]
        assert all(o.status == "ok" for o in result.outcomes)


class TestRobustness:
    @needs_fork
    def test_worker_crash_is_isolated_and_retried(self, monkeypatch):
        def crash(task, websari, want_report):
            os._exit(13)

        patch_execute(monkeypatch, {"crash.php": crash})
        tasks = make_tasks([("crash.php", SAFE), ("v.php", VULN), ("s.php", SAFE)])
        result = AuditEngine(config=EngineConfig(jobs=2)).run(tasks)
        crash_outcome = result.outcomes[0]
        assert crash_outcome.status == "crash"
        assert crash_outcome.attempts == 2  # retried once
        assert "code 13" in crash_outcome.error
        # Sibling jobs are unaffected.
        assert result.outcomes[1].status == "ok" and not result.outcomes[1].safe
        assert result.outcomes[2].status == "ok" and result.outcomes[2].safe
        assert result.stats.crashes == 1 and result.stats.retries == 1

    @needs_fork
    def test_crash_retry_can_succeed(self, monkeypatch, tmp_path):
        marker = tmp_path / "crashed-once"
        real = worker_module.execute_task

        def flaky(task, websari, want_report):
            if not marker.exists():
                marker.write_text("x")
                os._exit(13)
            return real(task, websari, want_report)

        patch_execute(monkeypatch, {"flaky.php": flaky})
        result = AuditEngine(config=EngineConfig(jobs=2)).run(
            make_tasks([("flaky.php", VULN)])
        )
        outcome = result.outcomes[0]
        assert outcome.status == "ok" and outcome.attempts == 2
        assert result.stats.retries == 1 and result.stats.crashes == 0

    @needs_fork
    def test_timeout_kills_only_the_offender(self, monkeypatch):
        def hang(task, websari, want_report):
            time.sleep(60)

        patch_execute(monkeypatch, {"hang.php": hang})
        tasks = make_tasks([("hang.php", SAFE), ("v.php", VULN)])
        # No wall-clock bound here: the timeout outcome itself proves the
        # hang was killed, and elapsed-time assertions flake on loaded CI
        # runners.
        result = AuditEngine(config=EngineConfig(jobs=2, timeout=0.5)).run(tasks)
        assert result.outcomes[0].status == "timeout"
        assert "0.5s" in result.outcomes[0].error
        assert result.outcomes[1].status == "ok"
        assert result.stats.timeouts == 1


class TestPipelining:
    """The pool buffers up to two tasks per worker pipe; these pin the
    semantics that must survive pipelining (order, attempt accounting,
    crash/timeout isolation for queued-but-unstarted tasks)."""

    @needs_fork
    def test_many_tasks_preserve_order_and_verdicts(self):
        # 10 tasks over 2 workers exercises refilling both queue slots
        # repeatedly; outcomes must stay in input order with one attempt
        # each.
        tasks = make_tasks(
            [(f"f{i}.php", VULN if i % 2 else SAFE) for i in range(10)]
        )
        result = AuditEngine(config=EngineConfig(jobs=2)).run(tasks)
        assert [o.filename for o in result.outcomes] == [t.filename for t in tasks]
        assert all(o.status == "ok" for o in result.outcomes)
        assert [o.safe for o in result.outcomes] == [i % 2 == 0 for i in range(10)]
        assert all(o.attempts == 1 for o in result.outcomes)

    @needs_fork
    def test_task_queued_behind_crash_is_not_charged_an_attempt(self, monkeypatch):
        def crash(task, websari, want_report):
            os._exit(13)

        patch_execute(monkeypatch, {"crash.php": crash})
        # Enough tasks that something is queued behind the crasher in its
        # worker's pipe; those never ran, so they must be requeued with
        # their attempt count intact.
        tasks = make_tasks(
            [("crash.php", SAFE)] + [(f"f{i}.php", SAFE) for i in range(5)]
        )
        result = AuditEngine(config=EngineConfig(jobs=2)).run(tasks)
        assert result.outcomes[0].status == "crash"
        assert result.outcomes[0].attempts == 2  # the crasher alone is retried
        for outcome in result.outcomes[1:]:
            assert outcome.status == "ok" and outcome.attempts == 1
        assert result.stats.retries == 1

    @needs_fork
    def test_task_queued_behind_timeout_still_completes(self, monkeypatch):
        def hang(task, websari, want_report):
            time.sleep(60)

        patch_execute(monkeypatch, {"hang.php": hang})
        tasks = make_tasks(
            [("hang.php", SAFE)] + [(f"f{i}.php", VULN) for i in range(4)]
        )
        # As above: the timeout status is the proof; no elapsed-time bound.
        result = AuditEngine(config=EngineConfig(jobs=2, timeout=0.5)).run(tasks)
        assert result.outcomes[0].status == "timeout"
        for outcome in result.outcomes[1:]:
            assert outcome.status == "ok" and outcome.attempts == 1
        assert result.stats.timeouts == 1


class TestCacheIntegration:
    def test_second_run_hits_with_identical_verdicts(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = make_tasks([("v.php", VULN), ("s.php", SAFE), ("b.php", BROKEN)])
        first = AuditEngine(config=EngineConfig(jobs=1, cache=cache)).run(tasks)
        second = AuditEngine(config=EngineConfig(jobs=1, cache=cache)).run(tasks)
        assert first.stats.cache_hits == 0 and first.stats.cache_misses == 3
        assert second.stats.cache_hits == 3 and second.stats.cache_misses == 0
        assert second.stats.hit_rate() == 1.0
        for a, b in zip(first.outcomes, second.outcomes):
            assert b.cached and not a.cached
            assert (a.status, a.safe, a.summary, a.detailed, a.error) == (
                b.status,
                b.safe,
                b.summary,
                b.detailed,
                b.error,
            )

    def test_source_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = EngineConfig(jobs=1, cache=cache)
        AuditEngine(config=config).run(make_tasks([("a.php", SAFE)]))
        changed = AuditEngine(config=config).run(make_tasks([("a.php", VULN)]))
        assert changed.stats.cache_misses == 1
        assert changed.outcomes[0].safe is False

    def test_prelude_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        source = "<?php $x = read_config(); show($x);\n"
        stock = AuditEngine(
            websari=WebSSARI(), config=EngineConfig(jobs=1, cache=cache)
        ).run(make_tasks([("a.php", source)]))
        assert stock.outcomes[0].safe is True
        custom = parse_prelude("source read_config tainted\nsink show tainted xss\n")
        hardened = AuditEngine(
            websari=WebSSARI(prelude=custom), config=EngineConfig(jobs=1, cache=cache)
        ).run(make_tasks([("a.php", source)]))
        assert hardened.stats.cache_misses == 1, "prelude change must invalidate"
        assert hardened.outcomes[0].safe is False

    def test_failures_are_not_cached(self, monkeypatch, tmp_path):
        def boom(task, websari, want_report):
            raise RuntimeError("transient")

        cache = ResultCache(tmp_path / "cache")
        patch_execute(monkeypatch, {"bad.php": boom})
        first = AuditEngine(config=EngineConfig(jobs=1, cache=cache)).run(
            make_tasks([("bad.php", SAFE)])
        )
        assert first.outcomes[0].status == "error"
        assert len(cache) == 0

    def test_same_content_different_filename_not_aliased(self, tmp_path):
        # Report text embeds the filename, so two identically-byted files
        # must not serve each other's cached records.
        cache = ResultCache(tmp_path / "cache")
        config = EngineConfig(jobs=1, cache=cache)
        AuditEngine(config=config).run(make_tasks([("a.php", VULN)]))
        result = AuditEngine(config=config).run(make_tasks([("b.php", VULN)]))
        assert result.stats.cache_misses == 1
        assert result.outcomes[0].summary.startswith("b.php:")

    def test_project_entry_keys_include_included_files(self):
        files_a = {"entry.php": "<?php include 'lib.php';", "lib.php": "<?php echo 1;"}
        files_b = {"entry.php": "<?php include 'lib.php';", "lib.php": "<?php echo 2;"}
        task_a = AuditTask(0, "entry.php", project_files=files_a, entry="entry.php")
        task_b = AuditTask(0, "entry.php", project_files=files_b, entry="entry.php")
        assert task_a.cache_material() != task_b.cache_material()


class TestJsonl:
    def test_sink_records_and_final_stats(self, tmp_path):
        out = tmp_path / "audit.jsonl"
        tasks = make_tasks([("v.php", VULN), ("b.php", BROKEN)])
        with JsonlSink(out) as sink:
            AuditEngine(config=EngineConfig(jobs=1, jsonl=sink)).run(tasks)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 3
        assert {l["type"] for l in lines[:-1]} == {"file"}
        assert lines[-1]["type"] == "stats"
        assert lines[-1]["completed"] == 2 and lines[-1]["vulnerable"] == 1
        by_name = {l["filename"]: l for l in lines[:-1]}
        assert by_name["v.php"]["status"] == "ok" and by_name["v.php"]["safe"] is False
        assert by_name["b.php"]["status"] == "frontend-error"


class TestSolverStatsInOutcomes:
    def test_ok_outcome_carries_cdcl_counters(self):
        result = AuditEngine(config=EngineConfig(jobs=1)).run(make_tasks([("v.php", VULN)]))
        solver = result.outcomes[0].solver
        assert solver["backend"] == "cdcl"
        assert solver["solve_calls"] > 0
        for key in ("decisions", "propagations", "conflicts"):
            assert key in solver

    def test_dpll_backend_same_verdicts_own_counters(self):
        tasks = make_tasks([("v.php", VULN), ("s.php", SAFE)])
        cdcl = AuditEngine(websari=WebSSARI(solver="cdcl"), config=EngineConfig(jobs=1)).run(tasks)
        dpll = AuditEngine(websari=WebSSARI(solver="dpll"), config=EngineConfig(jobs=1)).run(tasks)
        assert [o.safe for o in cdcl.outcomes] == [o.safe for o in dpll.outcomes]
        assert dpll.outcomes[0].solver["backend"] == "dpll"
        assert dpll.outcomes[0].solver["solve_calls"] > 0

    def test_stats_aggregate_solver_totals(self):
        tasks = make_tasks([("v.php", VULN), ("s.php", SAFE)])
        stats = AuditEngine(config=EngineConfig(jobs=1)).run(tasks).stats
        assert stats.solver_totals["solve_calls"] > 0
        assert "solver" in stats.as_dict()
        assert any(line.startswith("solver:") for line in stats.summary_lines())

    def test_jsonl_records_include_solver(self, tmp_path):
        out = tmp_path / "audit.jsonl"
        with JsonlSink(out) as sink:
            AuditEngine(config=EngineConfig(jobs=1, jsonl=sink)).run(
                make_tasks([("v.php", VULN)])
            )
        record = json.loads(out.read_text().splitlines()[0])
        assert record["solver"]["backend"] == "cdcl"
        assert record["solver"]["solve_calls"] > 0
        stats_line = json.loads(out.read_text().splitlines()[-1])
        assert stats_line["solver"]["solve_calls"] > 0

    def test_failed_outcome_has_empty_solver(self):
        result = AuditEngine(config=EngineConfig(jobs=1)).run(make_tasks([("b.php", BROKEN)]))
        assert result.outcomes[0].solver == {}


class TestTracing:
    def _config(self, jobs=1):
        from repro.obs import MetricsRegistry, Tracer

        return EngineConfig(
            jobs=jobs, tracer=Tracer(enabled=True), metrics=MetricsRegistry()
        )

    def _file_roots(self, config):
        roots = config.tracer.take_roots()
        assert [r.name for r in roots] == ["audit"]
        return roots[0].children

    def test_inline_run_produces_nested_spans(self):
        config = self._config(jobs=1)
        AuditEngine(config=config).run(make_tasks([("v.php", VULN)]))
        file_spans = self._file_roots(config)
        assert [s.name for s in file_spans] == ["file:v.php"]
        root = file_spans[0]
        assert root.attrs["status"] == "ok" and root.attrs["safe"] is False
        stage_names = [c.name for c in root.children]
        assert stage_names == ["parse", "filter", "ai", "sat"]
        sat = root.children[-1]
        solves = [s for s in sat.walk() if s.name == "sat.solve"]
        assert solves, "per-assertion SAT solves must appear under the sat stage"
        assert "decisions" in solves[0].attrs

    @needs_fork
    def test_pooled_run_stitches_worker_spans(self):
        config = self._config(jobs=2)
        AuditEngine(config=config).run(make_tasks([("v.php", VULN), ("s.php", SAFE)]))
        file_spans = self._file_roots(config)
        assert sorted(s.name for s in file_spans) == ["file:s.php", "file:v.php"]
        for root in file_spans:
            assert root.pid == os.getpid()
            assert [c.name for c in root.children] == ["parse", "filter", "ai", "sat"]
            # Stage spans keep the worker's pid (separate track per worker).
            assert all(c.pid != os.getpid() for c in root.children)

    def test_metrics_observed(self):
        config = self._config(jobs=1)
        AuditEngine(config=config).run(make_tasks([("v.php", VULN), ("b.php", BROKEN)]))
        text = config.metrics.render()
        assert 'repro_files_total{status="ok"} 1' in text
        assert 'repro_files_total{status="frontend-error"} 1' in text
        assert 'repro_verdicts_total{verdict="vulnerable"} 1' in text
        assert 'repro_solver_events_total{backend="cdcl",kind="solve_calls"}' in text

    def test_no_tracer_collects_no_trace(self):
        result = AuditEngine(config=EngineConfig(jobs=1)).run(make_tasks([("v.php", VULN)]))
        assert result.outcomes[0].trace is None

    def test_cached_outcomes_have_flagged_root(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        AuditEngine(config=EngineConfig(jobs=1, cache=cache)).run(make_tasks([("v.php", VULN)]))
        config = self._config(jobs=1)
        config.cache = cache
        AuditEngine(config=config).run(make_tasks([("v.php", VULN)]))
        root = self._file_roots(config)[0]
        assert root.attrs["cached"] is True
        assert root.children == []


class TestStatsTolerance:
    def test_unknown_stage_keys_and_values_do_not_crash(self):
        from repro.engine.stats import EngineStats
        from repro.engine.worker import FileOutcome

        stats = EngineStats(total=1)
        outcome = FileOutcome(
            filename="x.php",
            status="ok",
            safe=True,
            timings={"parse": 0.1, "mystery_stage": 0.2, "bogus": "fast", "flag": True},
        )
        stats.record(outcome)
        assert stats.stage_seconds["mystery_stage"] == pytest.approx(0.2)
        assert "bogus" not in stats.stage_seconds and "flag" not in stats.stage_seconds
        assert any("mystery_stage" in line for line in stats.summary_lines())

    def test_unknown_status_counted_not_crashed(self):
        from repro.engine.stats import EngineStats
        from repro.engine.worker import FileOutcome

        stats = EngineStats(total=1)
        stats.record(FileOutcome(filename="x.php", status="exotic-new-status"))
        assert stats.other_statuses == {"exotic-new-status": 1}
        assert stats.failed == 1 and stats.errors == 0
        assert stats.as_dict()["other_statuses"] == {"exotic-new-status": 1}
        assert any("exotic-new-status" in line for line in stats.summary_lines())


class TestInterruptedRun:
    def test_jsonl_trailer_written_on_keyboard_interrupt(self, monkeypatch, tmp_path):
        def interrupt(task, websari, want_report):
            raise KeyboardInterrupt

        patch_execute(monkeypatch, {"stop.php": interrupt})
        out = tmp_path / "audit.jsonl"
        tasks = make_tasks([("v.php", VULN), ("stop.php", SAFE), ("never.php", SAFE)])
        with JsonlSink(out) as sink:
            with pytest.raises(KeyboardInterrupt):
                AuditEngine(config=EngineConfig(jobs=1, jsonl=sink)).run(tasks)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines, "completed records must be flushed before the interrupt"
        trailer = lines[-1]
        assert trailer["type"] == "stats"
        assert trailer["interrupted"] is True
        assert trailer["completed"] == 1

    def test_sink_is_reusable_safe_after_close(self, tmp_path):
        sink = JsonlSink(tmp_path / "a.jsonl")
        sink.write_stats({"completed": 0})
        sink.write_stats({"completed": 99})  # second trailer ignored
        sink.close()
        sink.write({"type": "file"})  # write-after-close is a no-op
        sink.close()
        lines = (tmp_path / "a.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["completed"] == 0


class TestAllStatusesInJsonl:
    @needs_fork
    def test_every_status_yields_enriched_record(self, monkeypatch, tmp_path):
        def hang(task, websari, want_report):
            time.sleep(60)

        def crash(task, websari, want_report):
            os._exit(13)

        patch_execute(monkeypatch, {"hang.php": hang, "crash.php": crash})
        out = tmp_path / "audit.jsonl"
        tasks = make_tasks(
            [
                ("ok.php", VULN),
                ("hang.php", SAFE),
                ("crash.php", SAFE),
                ("broken.php", BROKEN),
            ]
        )
        with JsonlSink(out) as sink:
            config = EngineConfig(jobs=2, timeout=0.5, crash_retries=0, jsonl=sink)
            result = AuditEngine(config=config).run(tasks)
        assert [o.status for o in result.outcomes] == [
            "ok",
            "timeout",
            "crash",
            "frontend-error",
        ]
        records = [json.loads(line) for line in out.read_text().splitlines()]
        by_name = {r["filename"]: r for r in records if r["type"] == "file"}
        assert set(by_name) == {"ok.php", "hang.php", "crash.php", "broken.php"}
        for record in by_name.values():
            assert "solver" in record and "timings" in record
            assert "duration" in record and "attempts" in record
        assert by_name["ok.php"]["solver"]["solve_calls"] > 0
        assert by_name["hang.php"]["solver"] == {}
        assert by_name["crash.php"]["solver"] == {}
        assert by_name["broken.php"]["solver"] == {}
        assert records[-1]["type"] == "stats"


class TestWantReports:
    def test_reports_attached_and_cache_bypassed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = make_tasks([("v.php", VULN)])
        AuditEngine(config=EngineConfig(jobs=1, cache=cache)).run(tasks)
        result = AuditEngine(
            config=EngineConfig(jobs=1, cache=cache, want_reports=True)
        ).run(tasks)
        outcome = result.outcomes[0]
        assert not outcome.cached, "want_reports must not serve JSON cache hits"
        assert outcome.report is not None
        assert outcome.report.bmc_group_count == 1

    def test_parallel_reports_cross_process(self):
        tasks = make_tasks([("v.php", VULN), ("s.php", SAFE)])
        result = AuditEngine(config=EngineConfig(jobs=2, want_reports=True)).run(tasks)
        assert result.outcomes[0].report.ts_error_count == 1
        assert result.outcomes[1].report.safe


class TestVerifyProjectParallel:
    def test_parity_with_sequential(self):
        from repro.php.includes import SourceProject

        project = SourceProject(
            {
                "index.php": "<?php include 'lib.php'; echo $_GET['q'];",
                "lib.php": "<?php $greeting = 'hi';",
                "safe.php": "<?php echo 'static';",
            }
        )
        websari = WebSSARI()
        seq = websari.verify_project(project)
        par = websari.verify_project(project, jobs=2)
        assert [r.filename for r in seq.reports] == [r.filename for r in par.reports]
        assert [r.summary() for r in seq.reports] == [r.summary() for r in par.reports]
        assert seq.num_statements == par.num_statements
        assert seq.ts_error_count == par.ts_error_count
        assert seq.bmc_group_count == par.bmc_group_count

    def test_frontend_error_raises_like_sequential(self):
        from repro.php.errors import FrontendError
        from repro.php.includes import SourceProject

        project = SourceProject({"broken.php": "<?php if ("})
        websari = WebSSARI()
        with pytest.raises(FrontendError):
            websari.verify_project(project)
        with pytest.raises(FrontendError):
            websari.verify_project(project, jobs=2)
