"""Tests for the PHP lexer."""

import pytest

from repro.php import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def php(source):
    """Tokenize a snippet inside <?php ... ?>, dropping OPEN/EOF bookkeeping."""
    return [t for t in tokenize("<?php " + source) if t.kind is not TokenKind.EOF]


class TestTags:
    def test_pure_html(self):
        tokens = tokenize("<html><body>hi</body></html>")
        assert [t.kind for t in tokens] == [TokenKind.INLINE_HTML, TokenKind.EOF]
        assert tokens[0].value == "<html><body>hi</body></html>"

    def test_html_then_php(self):
        tokens = tokenize("<b>x</b><?php $a = 1;")
        assert tokens[0].kind is TokenKind.INLINE_HTML
        assert tokens[1].kind is TokenKind.VARIABLE
        assert tokens[1].value == "a"

    def test_close_tag_returns_to_html(self):
        tokens = tokenize("<?php $a; ?>rest")
        values = [(t.kind, t.value) for t in tokens]
        assert (TokenKind.INLINE_HTML, "rest") in values

    def test_short_echo_tag(self):
        tokens = tokenize("<?= $x ?>")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].value == "echo"
        assert tokens[1].kind is TokenKind.VARIABLE

    def test_short_echo_after_html(self):
        tokens = tokenize("hi<?= $x ?>")
        assert tokens[0].kind is TokenKind.INLINE_HTML
        assert tokens[1].is_keyword("echo")

    def test_newline_after_close_tag_swallowed(self):
        tokens = tokenize("<?php $a; ?>\nrest")
        html = [t for t in tokens if t.kind is TokenKind.INLINE_HTML]
        assert html[0].value == "rest"

    def test_bare_short_open_tag(self):
        tokens = tokenize("<? $a;")
        assert tokens[0].kind is TokenKind.VARIABLE


class TestVariablesAndIdentifiers:
    def test_variable(self):
        tok = php("$ticketsubject")[0]
        assert tok.kind is TokenKind.VARIABLE
        assert tok.value == "ticketsubject"

    def test_superglobal(self):
        tok = php("$_GET")[0]
        assert tok.value == "_GET"

    def test_dollar_without_name_is_error(self):
        with pytest.raises(LexError):
            tokenize("<?php $ ;")

    def test_keywords_case_insensitive(self):
        for text in ("IF", "If", "if", "WHILE", "Echo"):
            tok = php(text)[0]
            assert tok.kind is TokenKind.KEYWORD
            assert tok.value == text.lower()

    def test_identifier(self):
        tok = php("mysql_query")[0]
        assert tok.kind is TokenKind.IDENTIFIER
        assert tok.value == "mysql_query"


class TestNumbers:
    def test_int(self):
        assert php("42")[0].value == 42

    def test_float(self):
        assert php("3.25")[0].value == 3.25

    def test_exponent(self):
        assert php("1e3")[0].value == 1000.0
        assert php("2.5e-2")[0].value == 0.025

    def test_hex(self):
        assert php("0xFF")[0].value == 255

    def test_octal(self):
        assert php("0755")[0].value == 0o755
        assert php("0644")[0].value == 0o644

    def test_zero_is_just_zero(self):
        assert php("0")[0].value == 0

    def test_leading_zero_decimal_not_octal(self):
        # 0123.5 and 0129 continue into decimal territory.
        assert php("0123.5")[0].value == 123.5
        tokens = php("0129")
        assert tokens[0].value == 129

    def test_octal_then_operator(self):
        tokens = php("0755 + 1")
        assert tokens[0].value == 0o755
        assert tokens[2].value == 1

    def test_leading_dot_float(self):
        tokens = php(".5")
        assert tokens[0].kind is TokenKind.FLOAT

    def test_trailing_dot_at_eof(self):
        # Regression: '' is a substring of any string, so an unguarded
        # `peek() in "0123456789"` check spun forever at end-of-input.
        tokens = php("$x .")
        assert [t.kind for t in tokens] == [TokenKind.VARIABLE, TokenKind.DOT]

    def test_unicode_digit_is_not_a_number(self):
        with pytest.raises(LexError):
            tokenize("<?php ¹;")

    def test_int_then_member_dot(self):
        # `1 . $x` is concatenation, not a float.
        tokens = php("1 . $x")
        assert [t.kind for t in tokens] == [
            TokenKind.INT,
            TokenKind.DOT,
            TokenKind.VARIABLE,
        ]


class TestStrings:
    def test_single_quoted_literal(self):
        tok = php(r"'no $interp \n'")[0]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "no $interp \\n"

    def test_single_quoted_escapes(self):
        assert php(r"'it\'s'")[0].value == "it's"
        assert php(r"'a\\b'")[0].value == "a\\b"

    def test_double_quoted_plain(self):
        tok = php('"hello"')[0]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hello"

    def test_double_quoted_escapes(self):
        assert php(r'"a\nb\tc"')[0].value == "a\nb\tc"
        assert php(r'"\$x"')[0].value == "$x"

    def test_interpolation_simple(self):
        tok = php('"hi $name!"')[0]
        assert tok.kind is TokenKind.TEMPLATE_STRING
        assert tok.value == [("text", "hi "), ("var", "name"), ("text", "!")]

    def test_interpolation_array_subscript(self):
        tok = php('"x=$row[name]"')[0]
        assert ("index", "row", "name") in tok.value

    def test_interpolation_numeric_subscript(self):
        tok = php('"x=$row[0]"')[0]
        assert ("index", "row", 0) in tok.value

    def test_interpolation_property(self):
        tok = php('"x=$obj->prop"')[0]
        assert ("prop", "obj", "prop") in tok.value

    def test_interpolation_braced(self):
        tok = php('"x={$name}y"')[0]
        assert tok.value == [("text", "x="), ("var", "name"), ("text", "y")]

    def test_interpolation_braced_subscript(self):
        tok = php("\"{$row['key']}\"")[0]
        assert tok.value == [("index", "row", "key")]

    def test_figure1_style_query(self):
        # The paper's Figure 1 builds SQL by interpolation.
        tok = php('"INSERT INTO t VALUES(\'$subject\')"')[0]
        assert tok.kind is TokenKind.TEMPLATE_STRING
        assert ("var", "subject") in tok.value

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('<?php "oops')
        with pytest.raises(LexError):
            tokenize("<?php 'oops")

    def test_dollar_not_followed_by_name_is_text(self):
        tok = php('"cost: $5"')[0]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "cost: $5"


class TestHeredoc:
    def test_heredoc_plain(self):
        source = "<?php $x = <<<EOT\nline1\nline2\nEOT;\n"
        tokens = [t for t in tokenize(source) if t.kind is not TokenKind.EOF]
        string = tokens[2]
        assert string.kind is TokenKind.STRING
        assert string.value == "line1\nline2"

    def test_heredoc_interpolates(self):
        source = '<?php $x = <<<EOT\nhello $name\nEOT;\n'
        string = [t for t in tokenize(source)][2]
        assert string.kind is TokenKind.TEMPLATE_STRING
        assert ("var", "name") in string.value

    def test_nowdoc_literal(self):
        source = "<?php $x = <<<'EOT'\nhello $name\nEOT;\n"
        string = [t for t in tokenize(source)][2]
        assert string.kind is TokenKind.STRING
        assert "$name" in string.value

    def test_unterminated_heredoc(self):
        with pytest.raises(LexError):
            tokenize("<?php $x = <<<EOT\nno end")


class TestComments:
    def test_line_comments(self):
        assert [t.kind for t in php("// gone\n$x")] == [TokenKind.VARIABLE]
        assert [t.kind for t in php("# gone\n$x")] == [TokenKind.VARIABLE]

    def test_block_comment(self):
        assert [t.kind for t in php("/* gone \n over lines */$x")] == [TokenKind.VARIABLE]

    def test_line_comment_ends_at_close_tag(self):
        tokens = tokenize("<?php // comment ?>html")
        html = [t for t in tokens if t.kind is TokenKind.INLINE_HTML]
        assert html and html[0].value == "html"

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("<?php /* forever")


class TestOperators:
    def test_maximal_munch(self):
        tokens = php("=== == = !== != <= < .= .")
        assert [t.kind for t in tokens] == [
            TokenKind.IDENTICAL,
            TokenKind.EQ,
            TokenKind.ASSIGN,
            TokenKind.NOT_IDENTICAL,
            TokenKind.NEQ,
            TokenKind.LE,
            TokenKind.LT,
            TokenKind.DOT_ASSIGN,
            TokenKind.DOT,
        ]

    def test_arrow_and_double_arrow(self):
        tokens = php("-> =>")
        assert [t.kind for t in tokens] == [TokenKind.ARROW, TokenKind.DOUBLE_ARROW]

    def test_increment_vs_plus(self):
        tokens = php("++ + --")
        assert [t.kind for t in tokens] == [
            TokenKind.INCREMENT,
            TokenKind.PLUS,
            TokenKind.DECREMENT,
        ]

    def test_at_suppression(self):
        tokens = php("@mysql_query")
        assert tokens[0].kind is TokenKind.AT

    def test_casts(self):
        assert php("(int)")[0].kind is TokenKind.CAST
        assert php("(int)")[0].value == "int"
        assert php("( string )")[0].value == "string"

    def test_paren_not_cast(self):
        tokens = php("($x)")
        assert tokens[0].kind is TokenKind.LPAREN

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("<?php `backtick`")


class TestSpans:
    def test_line_and_column_tracking(self):
        tokens = tokenize("<?php\n$a;\n  $b;")
        a = next(t for t in tokens if t.value == "a")
        b = next(t for t in tokens if t.value == "b")
        assert a.span.start.line == 2
        assert a.span.start.column == 1
        assert b.span.start.line == 3
        assert b.span.start.column == 3

    def test_filename_recorded(self):
        tokens = tokenize("<?php $a;", filename="index.php")
        assert tokens[0].span.filename == "index.php"

    def test_offsets_cover_token_text(self):
        source = "<?php $abc;"
        tokens = tokenize(source)
        var = tokens[0]
        assert source[var.span.start.offset : var.span.end.offset] == "$abc"
