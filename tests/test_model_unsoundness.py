"""Knowledge capture: the Figure 6 in-place sanitizer model is unsound.

The paper models sanitization as a UIC postcondition on the argument
variable itself (Figure 6: ``echo(htmlspecialchars($tmp))`` yields
``t_tmp = U``).  For the idiomatic uses the paper shows — sanitizing at
the sink, or ``$x = htmlspecialchars($x)`` — this is fine, but when the
sanitizer's *result is stored elsewhere and the original is reused*::

    $b = htmlspecialchars($a);
    echo $a;                      // $a is still raw at runtime!

the model marks ``$a`` clean and calls the program safe — a false
negative, demonstrated concretely against the interpreter below.  The
reproduction keeps the paper-faithful behaviour as the default and
offers ``sanitize_in_place=False`` (pure-function semantics: only the
call's result is clean) which is sound on this pattern.

Found by the end-to-end property test
(tests/test_end_to_end_soundness.py) during the reproduction.
"""

from repro import WebSSARI
from repro.interp import HttpRequest, run_php

FALSE_NEGATIVE = """<?php
$a = $_GET['k'];
$b = htmlspecialchars($a);
echo $a;
"""

PAYLOAD = "<script>x</script>"


class TestPaperModel:
    def test_paper_model_calls_it_safe(self):
        report = WebSSARI(sanitize_in_place=True).verify_source(FALSE_NEGATIVE)
        assert report.safe  # the false negative, reproduced

    def test_runtime_disagrees(self):
        env = run_php(FALSE_NEGATIVE, request=HttpRequest(get={"k": PAYLOAD}))
        assert "<script>" in env.response_body()

    def test_figure6_idiom_still_handled(self):
        # The idiom the paper actually shows is fine in both modes.
        source = "<?php $tmp = $_GET['n']; echo htmlspecialchars($tmp);"
        assert WebSSARI(sanitize_in_place=True).verify_source(source).safe
        env = run_php(source, request=HttpRequest(get={"n": PAYLOAD}))
        assert "<script>" not in env.response_body()


class TestSoundMode:
    def test_sound_mode_flags_it(self):
        report = WebSSARI(sanitize_in_place=False).verify_source(FALSE_NEGATIVE)
        assert not report.safe

    def test_sound_mode_keeps_self_sanitize_safe(self):
        source = "<?php $a = $_GET['k']; $a = htmlspecialchars($a); echo $a;"
        assert WebSSARI(sanitize_in_place=False).verify_source(source).safe

    def test_sound_mode_keeps_sink_wrap_safe(self):
        source = "<?php echo htmlspecialchars($_GET['k']);"
        assert WebSSARI(sanitize_in_place=False).verify_source(source).safe

    def test_sound_mode_result_variable_is_clean(self):
        source = "<?php $a = $_GET['k']; $b = htmlspecialchars($a); echo $b;"
        assert WebSSARI(sanitize_in_place=False).verify_source(source).safe

    def test_modes_agree_on_figure7(self):
        source = """<?php
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = 'a' . $sid; DoSQL($iq);
"""
        paper = WebSSARI(sanitize_in_place=True).verify_source(source)
        sound = WebSSARI(sanitize_in_place=False).verify_source(source)
        assert not paper.safe and not sound.safe
        assert paper.bmc_group_count == sound.bmc_group_count == 1
