"""The audit coordinator and its lease queue: submission, leasing,
exactly-once completion, lease expiry/re-queue, policy agreement, drain,
and the merged-JSONL stream contract."""

import io
import json
import tarfile
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, load_audit
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.service import Coordinator, LeaseQueue
from repro.service.httpbase import HttpError


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def record_for(filename, safe=True, status="ok", **extra):
    record = {
        "filename": filename,
        "status": status,
        "safe": safe if status == "ok" else None,
        "duration": 0.01,
        "timings": {"parse": 0.004, "sat": 0.006},
    }
    record.update(extra)
    return record


CORPUS = {
    "a.php": "<?php echo $a; ?>",
    "b.php": "<?php echo $b; ?>",
    "c.php": "<?php echo $c; ?>",
}


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def coord(clock):
    coordinator = Coordinator(lease_timeout=10.0, clock=clock)
    try:
        yield coordinator
    finally:
        coordinator.close()


class TestLeaseQueue:
    def test_fifo_lease_and_complete(self, clock):
        queue = LeaseQueue(timeout=5.0, clock=clock)
        for task in ("t1", "t2", "t3"):
            queue.add(task)
        assert queue.lease("w1", max_tasks=2) == ["t1", "t2"]
        assert queue.owner_of("t1") == "w1"
        assert queue.complete("t1") is True
        assert queue.complete("t1") is False  # exactly once
        assert queue.outstanding == 2

    def test_expiry_requeues_to_front(self, clock):
        queue = LeaseQueue(timeout=5.0, clock=clock)
        queue.add("t1")
        queue.add("t2")
        assert queue.lease("w1") == ["t1"]
        clock.advance(6.0)
        # The dead node's task is re-leasable ahead of the backlog.
        assert queue.lease("w2", max_tasks=2) == ["t1", "t2"]
        assert queue.requeues == 1

    def test_heartbeat_extends_leases(self, clock):
        queue = LeaseQueue(timeout=5.0, clock=clock)
        queue.add("t1")
        queue.lease("w1")
        clock.advance(4.0)
        assert queue.extend("w1") == 1
        clock.advance(4.0)
        assert queue.reap() == []  # extension kept it alive
        assert queue.owner_of("t1") == "w1"

    def test_zombie_completion_accepted_once_while_open(self, clock):
        """A node finishing after its lease expired still settles the
        task (verdicts are deterministic) — but only the first result."""
        queue = LeaseQueue(timeout=5.0, clock=clock)
        queue.add("t1")
        queue.lease("w1")
        clock.advance(6.0)
        queue.reap()
        assert queue.complete("t1") is True  # zombie's result, task open
        assert queue.lease("w2") == []  # nothing left to hand out
        assert queue.complete("t1") is False

    def test_release_hands_leases_back(self, clock):
        queue = LeaseQueue(timeout=5.0, clock=clock)
        queue.add("t1")
        queue.lease("w1")
        assert queue.release("w1") == ["t1"]
        assert queue.lease("w2") == ["t1"]

    def test_unknown_completion_rejected(self, clock):
        queue = LeaseQueue(clock=clock)
        assert queue.complete("never-added") is False


class TestSubmission:
    def test_files_sorted_into_tasks(self, coord):
        job = coord.submit_files({"z.php": "<?php ?>", "a.php": "<?php ?>"})
        assert [task.filename for task in job.tasks] == ["a.php", "z.php"]
        assert [task.task_id for task in job.tasks] == [
            f"{job.job_id}:000000",
            f"{job.job_id}:000001",
        ]

    def test_non_php_filtered_and_empty_rejected(self, coord):
        with pytest.raises(HttpError) as err:
            coord.submit_files({"notes.txt": "hello"})
        assert err.value.status == 400

    def test_tar_submission_over_http(self, coord):
        coord.start()
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w") as archive:
            for name, text in CORPUS.items():
                data = text.encode()
                info = tarfile.TarInfo(name=f"proj/{name}")
                info.size = len(data)
                archive.addfile(info, io.BytesIO(data))
        request = urllib.request.Request(
            coord.url + "/api/submit",
            data=buffer.getvalue(),
            headers={"Content-Type": "application/x-tar"},
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            reply = json.loads(response.read())
        assert response.status == 201 and reply["tasks"] == 3

    def test_submit_rejected_while_draining(self, coord):
        coord.drain()
        with pytest.raises(HttpError) as err:
            coord._handle_submit(b'{"files": {"a.php": "<?php ?>"}}')
        assert err.value.status == 503


class TestWorkerProtocol:
    def test_policy_fingerprint_first_wins_then_409(self, coord):
        coord.register_worker("n1", policy_fp="abc")
        coord.register_worker("n2", policy_fp="abc")
        with pytest.raises(HttpError) as err:
            coord.register_worker("n3", policy_fp="different")
        assert err.value.status == 409

    def test_unknown_worker_404(self, coord):
        with pytest.raises(HttpError) as err:
            coord.lease_tasks("ghost#1")
        assert err.value.status == 404

    def test_lease_report_merge_roundtrip(self, coord, tmp_path):
        job = coord.submit_files(CORPUS)
        worker = coord.register_worker("n1")
        lease = coord.lease_tasks(worker.worker_id, max_tasks=10)
        assert [t["filename"] for t in lease["tasks"]] == ["a.php", "b.php", "c.php"]
        for task in lease["tasks"]:
            safe = task["filename"] != "b.php"
            assert coord.report_result(
                worker.worker_id, task["task_id"], record_for(task["filename"], safe)
            )
        records = coord.job_records(job)
        kinds = [record["type"] for record in records]
        assert kinds == ["file", "file", "file", "stats", "stats"]
        assert all(record["node"] == "n1" for record in records[:3])
        node_trailer, global_trailer = records[3], records[4]
        assert node_trailer["node"] == "n1" and node_trailer["files"] == 3
        assert "node" not in global_trailer
        assert global_trailer["safe"] == 2 and global_trailer["vulnerable"] == 1

        # The merged stream is a valid repro-report input.
        path = tmp_path / "merged.jsonl"
        path.write_text(coord.render_job_stream(job))
        run = load_audit(path)
        assert not run.truncated
        assert run.stats["total"] == 3
        assert run.node_stats["n1"]["files"] == 3

    def test_duplicate_result_rejected(self, coord):
        coord.submit_files({"a.php": "<?php ?>"})
        worker = coord.register_worker("n1")
        task = coord.lease_tasks(worker.worker_id)["tasks"][0]
        assert coord.report_result(worker.worker_id, task["task_id"], record_for("a.php"))
        assert not coord.report_result(
            worker.worker_id, task["task_id"], record_for("a.php")
        )
        assert coord._workers[worker.worker_id].rejected == 1

    def test_malformed_record_400(self, coord):
        coord.submit_files({"a.php": "<?php ?>"})
        worker = coord.register_worker("n1")
        task = coord.lease_tasks(worker.worker_id)["tasks"][0]
        with pytest.raises(HttpError) as err:
            coord.report_result(worker.worker_id, task["task_id"], record_for("wrong.php"))
        assert err.value.status == 400

    def test_lease_expiry_moves_task_to_live_node(self, coord, clock):
        """The worker-loss story end to end: n1 leases, dies (never
        heartbeats), the lease expires, n2 gets the task and completes
        it; n1's late result is then rejected — exactly one record."""
        job = coord.submit_files({"a.php": "<?php ?>"})
        dead = coord.register_worker("n1")
        live = coord.register_worker("n2")
        task = coord.lease_tasks(dead.worker_id)["tasks"][0]
        assert coord.lease_tasks(live.worker_id)["tasks"] == []
        clock.advance(11.0)  # lease_timeout is 10
        retried = coord.lease_tasks(live.worker_id)["tasks"]
        assert [t["task_id"] for t in retried] == [task["task_id"]]
        assert coord.report_result(live.worker_id, task["task_id"], record_for("a.php"))
        assert not coord.report_result(dead.worker_id, task["task_id"], record_for("a.php"))
        records = coord.job_records(job)
        assert [r["node"] for r in records if r["type"] == "file"] == ["n2"]
        assert coord.queue.requeues == 1

    def test_heartbeat_keeps_lease_alive(self, coord, clock):
        coord.submit_files({"a.php": "<?php ?>"})
        worker = coord.register_worker("n1")
        coord.lease_tasks(worker.worker_id)
        clock.advance(8.0)
        coord._touch_worker(worker.worker_id)
        coord.queue.extend(worker.worker_id)
        clock.advance(8.0)
        other = coord.register_worker("n2")
        assert coord.lease_tasks(other.worker_id)["tasks"] == []


class TestDrain:
    def test_drain_flag_on_lease_and_ack_tracking(self, coord):
        coord.submit_files({"a.php": "<?php ?>"})
        worker = coord.register_worker("n1")
        coord.drain()
        reply = coord.lease_tasks(worker.worker_id)
        assert reply["draining"] is True and reply["tasks"] == []
        assert coord._workers[worker.worker_id].saw_drain
        assert coord.wait_for_drain(grace=1.0)

    def test_wait_for_drain_times_out_on_silent_live_node(self, coord):
        coord.register_worker("n1")  # never polls after drain
        coord.drain()
        assert not coord.wait_for_drain(grace=0.2)

    def test_release_counts_as_ack(self, coord):
        worker = coord.register_worker("n1")
        coord.drain()
        coord.release_worker(worker.worker_id)
        assert coord.wait_for_drain(grace=1.0)


class TestFleetObservability:
    def heartbeat(self, coord, worker, registry):
        body = json.dumps(
            {"worker_id": worker.worker_id, "metrics": registry.snapshot()}
        ).encode()
        return coord.handle("POST", "/api/workers/heartbeat", body)

    def node_registry(self, files):
        registry = MetricsRegistry()
        registry.counter("repro_files_total", "files").inc(files)
        registry.histogram("repro_file_seconds", "seconds").observe(0.01 * files)
        return registry

    def test_heartbeat_snapshots_roll_up_per_node_and_fleet(self, coord):
        a = coord.register_worker("nodeA")
        b = coord.register_worker("nodeB")
        self.heartbeat(coord, a, self.node_registry(2))
        self.heartbeat(coord, b, self.node_registry(3))
        status, content_type, body = coord.handle("GET", "/metrics", b"")
        text = body.decode()
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert 'repro_files_total{node="nodeA"} 2' in text
        assert 'repro_files_total{node="nodeB"} 3' in text
        assert "\nrepro_files_total 5" in text
        assert 'repro_file_seconds_count{node="nodeA"} 1' in text

    def test_repeated_cumulative_snapshots_not_double_counted(self, coord):
        worker = coord.register_worker("nodeA")
        registry = self.node_registry(4)
        self.heartbeat(coord, worker, registry)
        self.heartbeat(coord, worker, registry)
        text = coord.handle("GET", "/metrics", b"")[2].decode()
        assert 'repro_files_total{node="nodeA"} 4' in text

    def test_bucket_mismatch_snapshot_rejected_with_400(self, coord):
        worker = coord.register_worker("nodeA")
        self.heartbeat(coord, worker, self.node_registry(1))
        odd = MetricsRegistry()
        odd.histogram("repro_file_seconds", buckets=(0.5, 5.0)).observe(0.1)
        with pytest.raises(HttpError) as err:
            self.heartbeat(coord, worker, odd)
        assert err.value.status == 400
        assert "metrics snapshot rejected" in err.value.message

    def test_metrics_render_quantile_gauges(self, coord):
        worker = coord.register_worker("nodeA")
        self.heartbeat(coord, worker, self.node_registry(1))
        text = coord.handle("GET", "/metrics", b"")[2].decode()
        assert "# TYPE repro_file_seconds_quantile gauge" in text

    def test_trailers_carry_slow_query_ledgers(self, coord, tmp_path):
        job = coord.submit_files(CORPUS)
        worker = coord.register_worker("n1")
        for task in coord.lease_tasks(worker.worker_id, max_tasks=10)["tasks"]:
            record = record_for(task["filename"])
            record["slow_queries"] = [
                {"seconds": 0.05, "file": task["filename"], "assert_id": 1}
            ]
            coord.report_result(worker.worker_id, task["task_id"], record)
        records = coord.job_records(job)
        node_trailer, global_trailer = records[-2], records[-1]
        assert len(node_trailer["slow_queries"]) == 3
        assert all(q["node"] == "n1" for q in node_trailer["slow_queries"])
        assert len(global_trailer["slow_queries"]) == 3
        # The merged stream round-trips through the report loader.
        path = tmp_path / "merged.jsonl"
        path.write_text(coord.render_job_stream(job))
        run = load_audit(path)
        assert {q["node"] for q in run.slow_queries()} == {"n1"}

    def test_empty_ledger_trailer_is_explicit_empty_list(self, coord):
        """Nodes whose records carry no slow queries still get a
        ``slow_queries`` key — consumers need not special-case."""
        job = coord.submit_files({"a.php": "<?php ?>"})
        worker = coord.register_worker("n1")
        task = coord.lease_tasks(worker.worker_id)["tasks"][0]
        coord.report_result(worker.worker_id, task["task_id"], record_for("a.php"))
        records = coord.job_records(job)
        node_trailer, global_trailer = records[-2], records[-1]
        assert node_trailer["slow_queries"] == []
        assert global_trailer["slow_queries"] == []


class TestIncompleteStream:
    def test_partial_job_reads_as_truncated(self, coord, tmp_path):
        job = coord.submit_files(CORPUS)
        worker = coord.register_worker("n1")
        task = coord.lease_tasks(worker.worker_id)["tasks"][0]
        coord.report_result(worker.worker_id, task["task_id"], record_for("a.php"))
        path = tmp_path / "partial.jsonl"
        path.write_text(coord.render_job_stream(job))
        run = load_audit(path)
        # Node trailer present, global trailer absent: truncated, and the
        # node trailer must not masquerade as run-level stats.
        assert run.truncated and run.stats is None
        assert run.node_stats["n1"]["files"] == 1
