"""Tests for include/require resolution across project files."""

import pytest

from repro.php import IncludeError, SourceProject, resolve_includes
from repro.php import ast_nodes as ast


def project(**files):
    return SourceProject({name.replace("__", "/"): text for name, text in files.items()})


class TestSourceProject:
    def test_add_and_get(self):
        p = SourceProject({"a.php": "<?php $x;"})
        assert p.has("a.php")
        assert p.source("a.php") == "<?php $x;"

    def test_normalization(self):
        p = SourceProject({"./lib/a.php": "<?php $x;"})
        assert p.has("lib/a.php")
        assert p.has("lib/../lib/a.php")

    def test_from_directory(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "index.php").write_text("<?php $a;")
        (tmp_path / "sub" / "lib.php").write_text("<?php $b;")
        (tmp_path / "notes.txt").write_text("not php")
        p = SourceProject.from_directory(tmp_path)
        assert p.paths() == ["index.php", "sub/lib.php"]

    def test_len(self):
        assert len(project(**{"a.php": "<?php"})) == 1


class TestResolveIncludes:
    def test_simple_include_spliced(self):
        p = project(**{
            "index.php": "<?php include 'lib.php'; echo $x;",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        kinds = [type(s).__name__ for s in result.program.statements]
        assert kinds == ["ExpressionStatement", "Echo"]
        assert result.included_files == ["lib.php"]

    def test_nested_includes(self):
        p = project(**{
            "a.php": "<?php include 'b.php'; $a = 1;",
            "b.php": "<?php include 'c.php'; $b = 1;",
            "c.php": "<?php $c = 1;",
        })
        result = resolve_includes(p, "a.php")
        assert result.included_files == ["b.php", "c.php"]
        assert len(result.program.statements) == 3

    def test_include_inside_if(self):
        p = project(**{
            "index.php": "<?php if ($admin) { include 'admin.php'; }",
            "admin.php": "<?php $secret = 1;",
        })
        result = resolve_includes(p, "index.php")
        branch = result.program.statements[0].then
        assert isinstance(branch.statements[0], ast.ExpressionStatement)

    def test_include_once_deduplicated(self):
        p = project(**{
            "index.php": "<?php include_once 'lib.php'; include_once 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert result.included_files == ["lib.php"]
        assert len(result.program.statements) == 1

    def test_plain_include_duplicates(self):
        p = project(**{
            "index.php": "<?php include 'lib.php'; include 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert len(result.program.statements) == 2

    def test_relative_to_including_file(self):
        p = project(**{
            "sub/page.php": "<?php include 'helper.php';",
            "sub/helper.php": "<?php $h = 1;",
        })
        result = resolve_includes(p, "sub/page.php")
        assert result.included_files == ["sub/helper.php"]

    def test_cycle_detected(self):
        p = project(**{
            "a.php": "<?php include 'b.php';",
            "b.php": "<?php include 'a.php';",
        })
        with pytest.raises(IncludeError, match="cycle"):
            resolve_includes(p, "a.php")

    def test_self_include_once_is_fine(self):
        p = project(**{"a.php": "<?php include_once 'a.php'; $x = 1;"})
        result = resolve_includes(p, "a.php")
        assert len(result.program.statements) == 1

    def test_missing_require_raises(self):
        p = project(**{"index.php": "<?php require 'gone.php';"})
        with pytest.raises(IncludeError, match="not found"):
            resolve_includes(p, "index.php")

    def test_missing_include_warns(self):
        p = project(**{"index.php": "<?php include 'gone.php'; $x = 1;"})
        result = resolve_includes(p, "index.php")
        assert len(result.warnings) == 1
        assert len(result.program.statements) == 1

    def test_dynamic_include_left_unresolved(self):
        p = project(**{"index.php": "<?php include $page; $x = 1;"})
        result = resolve_includes(p, "index.php")
        assert len(result.unresolved) == 1
        assert len(result.program.statements) == 2

    def test_constant_concatenation_resolves(self):
        p = project(**{
            "index.php": "<?php include 'li' . 'b.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert result.included_files == ["lib.php"]

    def test_suppressed_include_resolves(self):
        p = project(**{
            "index.php": "<?php @include 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert result.included_files == ["lib.php"]

    def test_missing_entry_raises(self):
        with pytest.raises(IncludeError, match="entry"):
            resolve_includes(project(), "nope.php")

    def test_include_inside_function_body(self):
        p = project(**{
            "index.php": "<?php function f() { include 'lib.php'; }",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        fn = result.program.statements[0]
        assert isinstance(fn, ast.FunctionDecl)
        assert isinstance(fn.body.statements[0], ast.ExpressionStatement)
