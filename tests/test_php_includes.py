"""Tests for include/require resolution across project files."""

import pytest

from repro.php import IncludeError, SourceProject, resolve_includes, scan_includes
from repro.php import ast_nodes as ast
from repro.php.parsecache import ParseCache, content_digest


def project(**files):
    return SourceProject({name.replace("__", "/"): text for name, text in files.items()})


class TestSourceProject:
    def test_add_and_get(self):
        p = SourceProject({"a.php": "<?php $x;"})
        assert p.has("a.php")
        assert p.source("a.php") == "<?php $x;"

    def test_normalization(self):
        p = SourceProject({"./lib/a.php": "<?php $x;"})
        assert p.has("lib/a.php")
        assert p.has("lib/../lib/a.php")

    def test_from_directory(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "index.php").write_text("<?php $a;")
        (tmp_path / "sub" / "lib.php").write_text("<?php $b;")
        (tmp_path / "notes.txt").write_text("not php")
        p = SourceProject.from_directory(tmp_path)
        assert p.paths() == ["index.php", "sub/lib.php"]

    def test_len(self):
        assert len(project(**{"a.php": "<?php"})) == 1


class TestResolveIncludes:
    def test_simple_include_spliced(self):
        p = project(**{
            "index.php": "<?php include 'lib.php'; echo $x;",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        kinds = [type(s).__name__ for s in result.program.statements]
        assert kinds == ["ExpressionStatement", "Echo"]
        assert result.included_files == ["lib.php"]

    def test_nested_includes(self):
        p = project(**{
            "a.php": "<?php include 'b.php'; $a = 1;",
            "b.php": "<?php include 'c.php'; $b = 1;",
            "c.php": "<?php $c = 1;",
        })
        result = resolve_includes(p, "a.php")
        assert result.included_files == ["b.php", "c.php"]
        assert len(result.program.statements) == 3

    def test_include_inside_if(self):
        p = project(**{
            "index.php": "<?php if ($admin) { include 'admin.php'; }",
            "admin.php": "<?php $secret = 1;",
        })
        result = resolve_includes(p, "index.php")
        branch = result.program.statements[0].then
        assert isinstance(branch.statements[0], ast.ExpressionStatement)

    def test_include_once_deduplicated(self):
        p = project(**{
            "index.php": "<?php include_once 'lib.php'; include_once 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert result.included_files == ["lib.php"]
        assert len(result.program.statements) == 1

    def test_plain_include_duplicates(self):
        p = project(**{
            "index.php": "<?php include 'lib.php'; include 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert len(result.program.statements) == 2

    def test_relative_to_including_file(self):
        p = project(**{
            "sub/page.php": "<?php include 'helper.php';",
            "sub/helper.php": "<?php $h = 1;",
        })
        result = resolve_includes(p, "sub/page.php")
        assert result.included_files == ["sub/helper.php"]

    def test_cycle_detected(self):
        p = project(**{
            "a.php": "<?php include 'b.php';",
            "b.php": "<?php include 'a.php';",
        })
        with pytest.raises(IncludeError, match="cycle"):
            resolve_includes(p, "a.php")

    def test_self_include_once_is_fine(self):
        p = project(**{"a.php": "<?php include_once 'a.php'; $x = 1;"})
        result = resolve_includes(p, "a.php")
        assert len(result.program.statements) == 1

    def test_missing_require_raises(self):
        p = project(**{"index.php": "<?php require 'gone.php';"})
        with pytest.raises(IncludeError, match="not found"):
            resolve_includes(p, "index.php")

    def test_missing_include_warns(self):
        p = project(**{"index.php": "<?php include 'gone.php'; $x = 1;"})
        result = resolve_includes(p, "index.php")
        assert len(result.warnings) == 1
        assert len(result.program.statements) == 1

    def test_dynamic_include_left_unresolved(self):
        p = project(**{"index.php": "<?php include $page; $x = 1;"})
        result = resolve_includes(p, "index.php")
        assert len(result.unresolved) == 1
        assert len(result.program.statements) == 2

    def test_constant_concatenation_resolves(self):
        p = project(**{
            "index.php": "<?php include 'li' . 'b.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert result.included_files == ["lib.php"]

    def test_suppressed_include_resolves(self):
        p = project(**{
            "index.php": "<?php @include 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert result.included_files == ["lib.php"]

    def test_missing_entry_raises(self):
        with pytest.raises(IncludeError, match="entry"):
            resolve_includes(project(), "nope.php")

    def test_include_inside_function_body(self):
        p = project(**{
            "index.php": "<?php function f() { include 'lib.php'; }",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        fn = result.program.statements[0]
        assert isinstance(fn, ast.FunctionDecl)
        assert isinstance(fn.body.statements[0], ast.ExpressionStatement)

    def test_edges_recorded_per_splice(self):
        p = project(**{
            "index.php": "<?php include 'mid.php';",
            "mid.php": "<?php include 'leaf.php';",
            "leaf.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "index.php")
        assert result.edges == [("index.php", "mid.php"), ("mid.php", "leaf.php")]

    def test_edges_survive_once_dedup(self):
        # A second include_once splices nothing, but the dependency edge
        # is still real — the graph must record it.
        p = project(**{
            "a.php": "<?php include_once 'lib.php'; include 'b.php';",
            "b.php": "<?php include_once 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        result = resolve_includes(p, "a.php")
        assert ("b.php", "lib.php") in result.edges
        assert ("a.php", "lib.php") in result.edges

    def test_entry_program_is_the_unspliced_entry(self):
        p = project(**{
            "index.php": "<?php include 'lib.php'; echo $x;",
            "lib.php": "<?php $x = 1; $y = 2; $z = 3;",
        })
        result = resolve_includes(p, "index.php")
        assert result.entry_program is not None
        # Two own statements, regardless of how much the splice added.
        assert len(result.entry_program.statements) == 2
        assert len(result.program.statements) == 4

    def test_parse_hook_is_used_for_every_file(self):
        p = project(**{
            "index.php": "<?php include 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        cache = ParseCache()
        resolve_includes(p, "index.php", parse_hook=cache.parse)
        assert cache.misses == 2
        resolve_includes(p, "index.php", parse_hook=cache.parse)
        assert cache.hits == 2


class TestScanIncludes:
    def test_closure_and_edges(self):
        p = project(**{
            "index.php": "<?php include 'mid.php'; echo $x;",
            "mid.php": "<?php include 'leaf.php';",
            "leaf.php": "<?php $x = 1;",
            "unrelated.php": "<?php $y = 2;",
        })
        scan = scan_includes(p, "index.php")
        assert scan.closure == {"index.php", "mid.php", "leaf.php"}
        assert set(scan.edges) == {("index.php", "mid.php"), ("mid.php", "leaf.php")}
        assert scan.includes_by_file["mid.php"] == {"leaf.php"}
        assert scan.includes_by_file["leaf.php"] == set()
        assert not scan.widened

    def test_digests_stamp_closure_members(self):
        p = project(**{
            "index.php": "<?php include 'lib.php';",
            "lib.php": "<?php $x = 1;",
        })
        scan = scan_includes(p, "index.php")
        assert scan.digests["lib.php"] == content_digest("<?php $x = 1;")

    def test_missing_target_recorded_not_raised(self):
        p = project(**{"index.php": "<?php require 'gone.php'; $x = 1;"})
        scan = scan_includes(p, "index.php")
        assert scan.missing == ["gone.php"]
        # A missing file cannot widen the closure: the splice outcome is
        # still a pure function of the project snapshot.
        assert not scan.widened

    def test_dynamic_include_widens(self):
        p = project(**{"index.php": "<?php include $page;"})
        scan = scan_includes(p, "index.php")
        assert len(scan.unresolved) == 1
        assert scan.widened

    def test_parse_failure_widens_but_stays_in_closure(self):
        p = project(**{
            "index.php": "<?php include 'broken.php';",
            "broken.php": "<?php if (",
        })
        scan = scan_includes(p, "index.php")
        assert scan.closure == {"index.php", "broken.php"}
        assert scan.parse_failures == ["broken.php"]
        assert scan.widened

    def test_cycles_terminate(self):
        p = project(**{
            "a.php": "<?php include 'b.php';",
            "b.php": "<?php include 'a.php';",
        })
        scan = scan_includes(p, "a.php")
        assert scan.closure == {"a.php", "b.php"}
        assert not scan.widened

    def test_relative_resolution_matches_resolver(self):
        p = project(**{
            "sub/page.php": "<?php include 'helper.php';",
            "sub/helper.php": "<?php $h = 1;",
        })
        scan = scan_includes(p, "sub/page.php")
        assert scan.closure == {"sub/page.php", "sub/helper.php"}

    def test_includes_inside_nested_bodies_are_seen(self):
        p = project(**{
            "index.php": (
                "<?php if ($a) { include 'x.php'; } "
                "while ($b) { include 'y.php'; } "
                "function f() { include 'z.php'; }"
            ),
            "x.php": "<?php $x = 1;",
            "y.php": "<?php $y = 1;",
            "z.php": "<?php $z = 1;",
        })
        scan = scan_includes(p, "index.php")
        assert scan.closure == {"index.php", "x.php", "y.php", "z.php"}

    def test_missing_entry_raises(self):
        with pytest.raises(IncludeError, match="entry"):
            scan_includes(project(), "nope.php")

    def test_parse_hook_shares_parses_across_entries(self):
        p = project(**{
            "a.php": "<?php include 'common.php';",
            "b.php": "<?php include 'common.php';",
            "common.php": "<?php $c = 1;",
        })
        cache = ParseCache()
        scan_includes(p, "a.php", parse_hook=cache.parse)
        scan_includes(p, "b.php", parse_hook=cache.parse)
        # common.php parsed once, hit once; each entry parsed once.
        assert cache.misses == 3 and cache.hits == 1
