"""Tests for the SAT-level query cache (repro.sat.cache).

Covers the store (LRU bound, disk persistence, corruption tolerance,
pickling) and the :class:`CachingSatSolver` facade (canonical
fingerprinting, hit/miss accounting, model replay fidelity across
variable renamings and both backends).
"""

import json
import pickle

import pytest

from repro.sat.cache import SAT_CACHE_VERSION, CachingSatSolver, SatQueryCache
from repro.sat.cnf import CNF
from repro.sat.dpll import IncrementalDPLL
from repro.sat.solver import CDCLSolver


def caching(cache, backend="cdcl"):
    inner = CDCLSolver() if backend == "cdcl" else IncrementalDPLL()
    return CachingSatSolver(inner, cache, backend=backend)


class TestSatQueryCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = SatQueryCache()
        assert cache.get("k1") is None
        cache.put("k1", {"sat": True, "true": [1, 3]})
        assert cache.get("k1") == {"sat": True, "true": [1, 3]}
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_evicts_oldest(self):
        cache = SatQueryCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, {"sat": False, "true": []})
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted
        assert cache.get("c") is not None

    def test_get_refreshes_lru_order(self):
        cache = SatQueryCache(max_entries=2)
        cache.put("a", {"sat": False, "true": []})
        cache.put("b", {"sat": False, "true": []})
        cache.get("a")  # a is now most-recent
        cache.put("c", {"sat": False, "true": []})
        assert cache.get("b") is None and cache.get("a") is not None

    def test_disk_persistence_across_instances(self, tmp_path):
        first = SatQueryCache(persist_dir=tmp_path / "sat")
        first.put("ab" + "0" * 62, {"sat": True, "true": [2]})
        second = SatQueryCache(persist_dir=tmp_path / "sat")
        assert second.get("ab" + "0" * 62) == {"sat": True, "true": [2]}
        # Fan-out layout: <dir>/<key[:2]>/<key>.json
        assert (tmp_path / "sat" / "ab" / ("ab" + "0" * 62 + ".json")).is_file()

    def test_corrupt_disk_entry_is_evicted_not_served(self, tmp_path):
        cache = SatQueryCache(persist_dir=tmp_path / "sat")
        key = "cd" + "0" * 62
        path = tmp_path / "sat" / "cd" / (key + ".json")
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        path.write_text(json.dumps({"sat": "yes", "true": [1]}))  # wrong shape
        assert cache.get(key) is None
        assert not path.exists(), "invalid entries must be evicted"

    def test_pickling_drops_memo_keeps_config(self, tmp_path):
        cache = SatQueryCache(persist_dir=tmp_path / "sat", max_entries=7)
        cache.put("k", {"sat": False, "true": []})
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.persist_dir == cache.persist_dir
        assert clone.max_entries == 7
        assert len(clone) == 0  # memo dropped...
        assert clone.get("k") == {"sat": False, "true": []}  # ...re-warmed from disk


class TestCachingSatSolver:
    def test_first_solve_misses_second_identical_shape_hits(self):
        cache = SatQueryCache()
        a = caching(cache)
        a.add_formula(CNF([[1, 2], [-1, 2]], num_vars=2))
        ra = a.solve()
        assert ra.satisfiable is True
        assert ra.stats.cache_misses == 1 and ra.stats.cache_hits == 0

        # Same shape under a different variable numbering: must hit.
        b = caching(cache)
        b.add_formula(CNF([[5, 9], [-5, 9]], num_vars=9))
        rb = b.solve()
        assert rb.satisfiable is True
        assert rb.stats.cache_hits == 1 and rb.stats.cache_misses == 0

    def test_replayed_model_satisfies_renamed_formula(self):
        cache = SatQueryCache()
        a = caching(cache)
        a.add_formula(CNF([[1, 2], [-1, 3], [-2, -3]], num_vars=3))
        assert a.solve().satisfiable is True

        formula_b = CNF([[4, 7], [-4, 8], [-7, -8]], num_vars=8)
        b = caching(cache)
        b.add_formula(formula_b)
        rb = b.solve()
        assert rb.stats.cache_hits == 1
        assert formula_b.evaluate(rb.model)

    def test_unsat_is_cached(self):
        cache = SatQueryCache()
        a = caching(cache)
        a.add_formula(CNF([[1], [-1]], num_vars=1))
        assert a.solve().satisfiable is False
        b = caching(cache)
        b.add_formula(CNF([[3], [-3]], num_vars=3))
        rb = b.solve()
        assert rb.satisfiable is False and rb.stats.cache_hits == 1

    def test_assumptions_distinguish_queries(self):
        cache = SatQueryCache()
        s = caching(cache)
        s.add_formula(CNF([[1, 2]], num_vars=2))
        assert s.solve(assumptions=[1]).satisfiable is True
        r = s.solve(assumptions=[-1])
        # Different assumptions: a fresh query, not a (wrong) hit.
        assert r.stats.cache_misses == 1
        assert r.satisfiable is True and r.model[2] is True

    def test_incremental_clause_addition_extends_key(self):
        cache = SatQueryCache()
        s = caching(cache)
        s.add_formula(CNF([[1, 2]], num_vars=2))
        assert s.solve().stats.cache_misses == 1
        s.add_clause([-1])
        r = s.solve()
        assert r.stats.cache_misses == 1, "grown formula must not alias the old key"
        assert r.model[2] is True

    def test_unconstrained_variables_replay_false(self):
        cache = SatQueryCache()
        a = caching(cache)
        a.add_formula(CNF([[1]], num_vars=5))  # vars 2..5 in no clause
        ra = a.solve()
        b = caching(cache)
        b.add_formula(CNF([[1]], num_vars=5))
        rb = b.solve()
        assert rb.stats.cache_hits == 1
        for var in range(2, 6):
            assert rb.model[var] is ra.model[var] is False

    def test_budget_exhaustion_is_not_cached(self):
        class Budgeted:
            def add_formula(self, formula):
                pass

            def solve(self, assumptions=(), conflict_budget=None):
                from repro.sat.solver import SolveResult, SolverStats

                return SolveResult(satisfiable=None, stats=SolverStats())

        cache = SatQueryCache()
        s = CachingSatSolver(Budgeted(), cache)
        s.add_formula(CNF([[1]], num_vars=1))
        assert s.solve(conflict_budget=1).satisfiable is None
        assert len(cache) == 0, "indeterminate outcomes must never be stored"

    def test_backends_never_alias(self):
        cache = SatQueryCache()
        c = caching(cache, backend="cdcl")
        c.add_formula(CNF([[1, 2]], num_vars=2))
        assert c.solve().stats.cache_misses == 1
        d = caching(cache, backend="dpll")
        d.add_formula(CNF([[1, 2]], num_vars=2))
        assert d.solve().stats.cache_misses == 1, "backend name is part of the key"

    def test_dpll_inner_replays_identically(self):
        cache = SatQueryCache()
        a = caching(cache, backend="dpll")
        formula = CNF([[1, 2], [-1, 3], [-2, -3]], num_vars=3)
        a.add_formula(formula)
        ra = a.solve()
        b = caching(cache, backend="dpll")
        b.add_formula(formula)
        rb = b.solve()
        assert rb.stats.cache_hits == 1
        assert rb.model == ra.model

    def test_version_is_part_of_the_key_seed(self, monkeypatch):
        cache = SatQueryCache()
        a = caching(cache)
        a.add_formula(CNF([[1]], num_vars=1))
        a.solve()
        monkeypatch.setattr("repro.sat.cache.SAT_CACHE_VERSION", SAT_CACHE_VERSION + "x")
        b = caching(cache)
        b.add_formula(CNF([[1]], num_vars=1))
        assert b.solve().stats.cache_misses == 1


class TestCheckerIntegration:
    def test_cross_file_hits_with_identical_verdicts(self):
        from repro.websari.pipeline import WebSSARI

        shape = (
            "<?php\n"
            "$out{0} = 'ok';\n"
            "if ($_GET['q{0}']) {{ $out{0} = $out{0} . $_GET['q{0}']; }}\n"
            "echo $out{0};\n"
        )
        cache = SatQueryCache()
        websari = WebSSARI(sat_cache=cache)
        baseline = WebSSARI()
        for i in range(3):
            source = shape.format(i)
            cached_report = websari.verify_source(source, f"f{i}.php")
            plain_report = baseline.verify_source(source, f"f{i}.php")
            assert cached_report.safe is plain_report.safe is False
            assert cached_report.bmc_group_count == plain_report.bmc_group_count
            assert cached_report.summary() == plain_report.summary()
        assert cache.hits > 0, "files 2..3 must replay file 1's queries"

    def test_solver_stats_surface_hit_counters(self):
        from repro.websari.pipeline import WebSSARI

        cache = SatQueryCache()
        websari = WebSSARI(sat_cache=cache)
        source = "<?php if ($_GET['a']) { echo $_GET['a']; }\n"
        first = websari.verify_source(source, "a.php")
        second = websari.verify_source(source, "b.php")
        assert first.bmc.solver_stats.get("cache_misses", 0) > 0
        assert second.bmc.solver_stats.get("cache_hits", 0) > 0
        assert second.bmc.solver_stats.get("cache_misses", 0) == 0
