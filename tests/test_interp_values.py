"""Property and unit tests for the PHP value model (coercions, arrays)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.values import (
    PhpArray,
    PhpObject,
    loose_equals,
    to_bool,
    to_number,
    to_string,
    type_name,
)


class TestToBool:
    def test_falsy_table(self):
        for value in (None, False, 0, 0.0, "", "0", PhpArray()):
            assert to_bool(value) is False, value

    def test_truthy_table(self):
        for value in (True, 1, -1, 0.5, "0.0", "a", " ", PhpArray({0: 1}), PhpObject("C")):
            assert to_bool(value) is True, value


class TestToNumber:
    def test_numeric_strings(self):
        assert to_number("42") == 42
        assert to_number("3.5") == 3.5
        assert to_number("-7") == -7
        assert to_number("1e2") == 100.0
        assert to_number("2.5e-1") == 0.25

    def test_leading_numeric_prefix(self):
        assert to_number("12abc") == 12
        assert to_number("3.5kg") == 3.5
        assert to_number("  8 ") == 8

    def test_non_numeric_is_zero(self):
        assert to_number("abc") == 0
        assert to_number("") == 0
        assert to_number("-") == 0
        assert to_number(".") == 0
        assert to_number(None) == 0

    def test_exponent_without_digits_stops(self):
        assert to_number("2e") == 2
        assert to_number("2e+") == 2

    def test_bool_and_array(self):
        assert to_number(True) == 1
        assert to_number(False) == 0
        assert to_number(PhpArray()) == 0
        assert to_number(PhpArray({0: "x"})) == 1


class TestToString:
    def test_basic(self):
        assert to_string(None) == ""
        assert to_string(True) == "1"
        assert to_string(False) == ""
        assert to_string(42) == "42"
        assert to_string("s") == "s"
        assert to_string(PhpArray()) == "Array"

    def test_float_integral_renders_without_point(self):
        assert to_string(3.0) == "3"
        assert to_string(2.5) == "2.5"


class TestLooseEquals:
    def test_same_type(self):
        assert loose_equals(1, 1)
        assert loose_equals("a", "a")
        assert not loose_equals("a", "b")

    def test_numeric_string_vs_number(self):
        assert loose_equals("1", 1)
        assert loose_equals(1.0, "1")
        assert not loose_equals("2", 1)

    def test_null_comparisons(self):
        assert loose_equals(None, "")
        assert loose_equals(None, 0)
        assert loose_equals(None, False)
        assert not loose_equals(None, "x")

    def test_bool_coercion(self):
        assert loose_equals(True, 1)
        assert loose_equals(True, "yes")
        assert loose_equals(False, "")

    def test_arrays(self):
        assert loose_equals(PhpArray({0: 1}), PhpArray({0: 1}))
        assert not loose_equals(PhpArray({0: 1}), PhpArray({0: 2}))


class TestTypeName:
    def test_all_types(self):
        assert type_name(None) == "NULL"
        assert type_name(True) == "boolean"
        assert type_name(1) == "integer"
        assert type_name(1.5) == "double"
        assert type_name("s") == "string"
        assert type_name(PhpArray()) == "array"
        assert type_name(PhpObject("C")) == "object"


class TestPhpArray:
    def test_insertion_order_preserved(self):
        array = PhpArray()
        array.set("z", 1)
        array.set("a", 2)
        assert array.keys() == ["z", "a"]

    def test_overwrite_keeps_position(self):
        array = PhpArray()
        array.set("a", 1)
        array.set("b", 2)
        array.set("a", 3)
        assert array.keys() == ["a", "b"]
        assert array.get("a") == 3

    def test_negative_string_key_normalizes(self):
        array = PhpArray()
        array.set("-3", "x")
        assert array.get(-3) == "x"

    def test_float_key_truncates(self):
        array = PhpArray()
        array.set(2.9, "x")
        assert array.get(2) == "x"

    def test_bool_key_is_int(self):
        array = PhpArray()
        array.set(True, "x")
        assert array.get(1) == "x"

    def test_null_key_is_empty_string(self):
        # PHP: $a[null] === $a[""]
        array = PhpArray({"": "x"})
        assert array.has("")

    def test_copy_is_shallow_but_independent(self):
        array = PhpArray({0: "x"})
        dup = array.copy()
        dup.set(1, "y")
        assert len(array) == 1
        assert len(dup) == 2

    def test_unset_then_push_does_not_reuse_index(self):
        array = PhpArray()
        array.set(None, "a")  # 0
        array.set(None, "b")  # 1
        array.unset(1)
        array.set(None, "c")  # 2 (PHP keeps the high-water mark)
        assert array.keys() == [0, 2]


# -- properties ------------------------------------------------------------

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)


@settings(max_examples=200, deadline=None)
@given(scalar)
def test_to_string_round_trips_through_bool(value):
    # PHP invariant: a value and its string form have the same truthiness,
    # except floats in (-1, 1) excluding 0 whose string form "0.xxx" is truthy
    # and ints/floats formatting; restrict to the stable classes:
    if isinstance(value, float):
        return
    assert to_bool(to_string(value)) == to_bool(value) or value is True


@settings(max_examples=200, deadline=None)
@given(scalar, scalar)
def test_loose_equals_symmetric(a, b):
    assert loose_equals(a, b) == loose_equals(b, a)


@settings(max_examples=200, deadline=None)
@given(scalar)
def test_loose_equals_reflexive(value):
    assert loose_equals(value, value)


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=16))
def test_to_number_total_on_strings(text):
    result = to_number(text)
    assert isinstance(result, (int, float))
