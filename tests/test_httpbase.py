"""The shared HTTP endpoint base (repro.service.httpbase): bind parsing,
dispatch, HttpError mapping, crash containment, and port fallback."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.httpbase import HttpEndpoint, HttpError, parse_bind


class Echo(HttpEndpoint):
    """Minimal endpoint exercising every dispatch path."""

    def handle(self, method, path, body):
        if path == "/json":
            return self.json_reply({"method": method, "body": body.decode()})
        if path == "/teapot":
            raise HttpError(418, "short and stout")
        if path == "/boom":
            raise RuntimeError("handler exploded")
        if path == "/echo-json":
            return self.json_reply(self.read_json(body))
        raise HttpError(404, "nope")


def fetch(url, data=None):
    request = urllib.request.Request(url, data=data)
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, response.read().decode()


class TestParseBind:
    def test_forms(self):
        assert parse_bind("9410") == ("127.0.0.1", 9410)
        assert parse_bind(":9410") == ("127.0.0.1", 9410)
        assert parse_bind("0.0.0.0:80") == ("0.0.0.0", 80)

    @pytest.mark.parametrize("spec", ["", "host:", "host:port", "1.2.3.4:99999"])
    def test_invalid(self, spec):
        with pytest.raises(ValueError):
            parse_bind(spec)


class TestDispatch:
    def test_get_and_post_share_handle(self):
        with Echo() as server:
            _, body = fetch(server.url + "/json")
            assert json.loads(body) == {"method": "GET", "body": ""}
            _, body = fetch(server.url + "/json", data=b"hi")
            assert json.loads(body) == {"method": "POST", "body": "hi"}

    def test_http_error_maps_to_status_and_json(self):
        with Echo() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(server.url + "/teapot")
            assert err.value.code == 418
            assert json.loads(err.value.read().decode()) == {"error": "short and stout"}

    def test_handler_crash_is_a_500_not_a_dead_server(self):
        with Echo() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(server.url + "/boom")
            assert err.value.code == 500
            # The server must still answer after a handler crash.
            status, _ = fetch(server.url + "/json")
            assert status == 200

    def test_read_json_rejects_non_objects(self):
        with Echo() as server:
            for payload in (b"not json", b"[1, 2]"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    fetch(server.url + "/echo-json", data=payload)
                assert err.value.code == 400


class TestLifecycle:
    def test_ephemeral_port_fallback_when_taken(self):
        with Echo() as first:
            second = Echo(port=first.port)
            try:
                assert second.fell_back
                assert second.port != first.port
                second.start()
                status, _ = fetch(second.url + "/json")
                assert status == 200
            finally:
                second.close()

    def test_close_without_start_releases_socket(self):
        server = Echo()
        port = server.port
        server.close()
        # The port must be immediately rebindable.
        with Echo(port=port) as again:
            assert again.port == port and not again.fell_back

    def test_url_property(self):
        with Echo(host="127.0.0.1") as server:
            assert server.url == f"http://127.0.0.1:{server.port}"
