"""Patch validation for the ``examples/`` audit scenarios.

Each scenario's witness must replay ``confirmed`` against the original
source and ``refuted`` against the auto-patched source — the end-to-end
validation of §3.3.4's instrumentation that the paper only argues
symbolically (Lemma 1).  The sources mirror the example scripts
verbatim; the ad-hoc ``run_php`` attack checks those scripts carry are
promoted to the shared helpers in :mod:`replayutil`.
"""

from replayutil import (
    assert_confirmed_then_patch_refutes,
    attack_delivered,
    verify_and_replay,
)

from repro.interp import HttpRequest, MockDatabase, run_php
from repro.replay import SENTINEL
from repro.websari.pipeline import WebSSARI

# examples/xss_audit.py — the paper's PHP Support Tickets stored XSS
# (Figures 1-2): submit inserts unsanitized, display renders stored rows.
SUBMIT = """<?php
$query = "INSERT INTO tickets_tickets (tickets_username, tickets_subject)
          VALUES ('{$_SESSION_username}', '{$_POST['ticketsubject']}')";
$result = @mysql_query($query);
echo "Ticket submitted.";
"""

DISPLAY = """<?php
$query = "SELECT tickets_username, tickets_subject FROM tickets_tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
  extract($row);
  echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}
"""

# examples/sql_injection_audit.py — the ILIAS HTTP_REFERER injection
# (Figure 3).
TRACKER = """<?php
$sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');";
mysql_query($sql);
"""

# examples/oop_audit.py — taint through a PHP4-style class property.
TICKET_CLASS = """<?php
class Ticket {
  var $subject;
  var $status = 'open';
  function Ticket($subject) {
    $this->subject = $subject;
  }
  function render_row() {
    echo '<tr><td>' . $this->subject . '</td><td>' . $this->status . '</td></tr>';
  }
  function save() {
    mysql_query("INSERT INTO tickets (subject, status) VALUES ('{$this->subject}', '{$this->status}')");
  }
}

$ticket = new Ticket($_POST['subject']);
$ticket->save();
$ticket->render_row();
"""


def ticket_database() -> MockDatabase:
    db = MockDatabase()
    db.create_table("tickets_tickets", [])
    return db


def tracker_database() -> MockDatabase:
    db = MockDatabase()
    db.create_table("users", [{"name": "admin"}])
    db.create_table("track_temp", [])
    return db


class TestXssAuditScenario:
    def test_submit_witness_confirms_and_patch_refutes(self):
        report, results = verify_and_replay(
            SUBMIT, "submit.php", database=ticket_database()
        )
        assert not report.safe
        assert_confirmed_then_patch_refutes(results, "submit.php")
        assert any(result.channel == "sql" for result in results)

    def test_stored_taint_confirms_through_the_database(self):
        # Display side of the stored-XSS passthrough: a poisoned row
        # already sitting in the database (what the submit script's
        # injection leaves behind) must resurface in the rendered
        # response.  The row is seeded directly because the sentinel's
        # embedded quote — the very thing that makes it injection-shaped
        # — terminates the SQL string literal on a genuine INSERT
        # round-trip and comes back split.
        db = MockDatabase()
        db.create_table(
            "tickets_tickets",
            [{"tickets_username": "mallory", "tickets_subject": SENTINEL}],
        )
        report, display_results = verify_and_replay(
            DISPLAY, "display.php", database=db
        )
        assert not report.safe
        assert_confirmed_then_patch_refutes(display_results, "display.php")
        assert any(
            result.channel == "response" for result in display_results
        ), "stored sentinel must resurface in the rendered response"
        # The while condition is an assignment over a fetch — outside
        # the condition solver's fragment — so it stays unsolved and
        # confirmation is optimistic, exactly as documented.
        assert all(result.unsolved == ["b1"] for result in display_results)

    def test_shared_helper_agrees_with_the_example_script(self):
        # The promoted attack_delivered helper reproduces the example's
        # inline checks: script payload delivered unpatched, dead patched.
        payload = "<script>steal()</script>"
        db = ticket_database()
        run_php(
            SUBMIT, request=HttpRequest(post={"ticketsubject": payload}), database=db
        )
        assert attack_delivered(DISPLAY, HttpRequest(), "<script>", database=db)
        websari = WebSSARI()
        _, patched = websari.patch_source(
            DISPLAY, filename="display.php", strategy="bmc"
        )
        assert not attack_delivered(
            patched.source, HttpRequest(), "<script>", database=db
        )


class TestSqlInjectionAuditScenario:
    def test_referer_witness_confirms_and_patch_refutes(self):
        report, results = verify_and_replay(
            TRACKER, "tracker.php", database=tracker_database()
        )
        assert not report.safe
        assert_confirmed_then_patch_refutes(results, "tracker.php")
        assert all(result.channel == "sql" for result in results)
        # The synthesized request carries the sentinel on the referrer —
        # the one input this scenario reads.
        assert all(
            result.request.get("referer") == SENTINEL for result in results
        )

    def test_shared_helper_agrees_with_the_example_script(self):
        attack = "');DROP TABLE ('users"
        assert attack_delivered(
            TRACKER,
            HttpRequest(referer=attack),
            attack,
            database=tracker_database(),
        )
        websari = WebSSARI()
        _, patched = websari.patch_source(
            TRACKER, filename="tracker.php", strategy="bmc"
        )
        assert not attack_delivered(
            patched.source,
            HttpRequest(referer=attack),
            attack,
            database=tracker_database(),
        )


class TestOopAuditScenario:
    def test_property_witness_confirms_and_patch_refutes(self):
        report, results = verify_and_replay(TICKET_CLASS, "ticket.php")
        assert not report.safe
        assert_confirmed_then_patch_refutes(results, "ticket.php")
        # The payload rides $_POST['subject'] into both sinks; the
        # replayer must plant the sentinel on the post channel.
        assert all(
            result.request.get("post", {}).get("subject") == SENTINEL
            for result in results
        )

    def test_shared_helper_agrees_with_the_example_script(self):
        payload = "<script>steal()</script>"
        assert attack_delivered(
            TICKET_CLASS, HttpRequest(post={"subject": payload}), "<script>"
        )
        websari = WebSSARI()
        _, patched = websari.patch_source(
            TICKET_CLASS, filename="ticket.php", strategy="bmc"
        )
        assert not attack_delivered(
            patched.source, HttpRequest(post={"subject": payload}), "<script>"
        )
