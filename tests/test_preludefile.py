"""Tests for the textual prelude file format."""

import pytest

from repro import WebSSARI
from repro.policy import EffectKind, Prelude, VulnClass, default_php_prelude
from repro.policy.preludefile import (
    PreludeSyntaxError,
    load_prelude,
    parse_prelude,
    render_prelude,
)


class TestParsing:
    def test_empty_text_gives_default_policy(self):
        prelude = parse_prelude("")
        assert prelude.function_effect("mysql_query").kind is EffectKind.SINK
        assert prelude.is_superglobal("_GET")

    def test_comments_and_blanks_ignored(self):
        prelude = parse_prelude("# comment\n\n   # more\n")
        assert prelude.is_superglobal("_GET")

    def test_extends_default(self):
        prelude = parse_prelude("sink my_custom_sink tainted sql\n")
        effect = prelude.function_effect("my_custom_sink")
        assert effect.kind is EffectKind.SINK
        assert effect.vuln_class is VulnClass.SQL
        # Defaults still present.
        assert prelude.function_effect("echo").kind is EffectKind.SINK

    def test_from_scratch_base(self):
        prelude = parse_prelude("sink only_sink\n", base=Prelude())
        assert prelude.function_effect("echo") is None
        assert prelude.function_effect("only_sink") is not None

    def test_all_directives(self):
        text = """
superglobal _MYGLOBAL tainted
source read_feed tainted
sink log_it tainted other
sanitizer clean untainted
propagator shuffle
tainter slurp_vars
method_sink rawquery tainted sql
"""
        prelude = parse_prelude(text)
        assert prelude.is_superglobal("_MYGLOBAL")
        assert prelude.function_effect("read_feed").kind is EffectKind.SOURCE
        assert prelude.function_effect("log_it").kind is EffectKind.SINK
        assert prelude.function_effect("clean").kind is EffectKind.SANITIZER
        assert prelude.function_effect("shuffle").kind is EffectKind.PROPAGATE
        assert prelude.function_effect("slurp_vars").kind is EffectKind.TAINT_ENVIRONMENT
        assert prelude.method_effect("rawquery").vuln_class is VulnClass.SQL

    def test_linear_lattice_directive(self):
        text = """
lattice linear public internal secret
superglobal _GET internal
sink render internal
"""
        prelude = parse_prelude(text)
        assert prelude.lattice.bottom == "public"
        assert prelude.lattice.top == "secret"
        assert prelude.superglobal_level("_GET") == "internal"

    def test_taint_lattice_directive(self):
        prelude = parse_prelude("lattice taint\nsink f tainted\n")
        assert prelude.lattice.top == "tainted"

    def test_lattice_must_be_first(self):
        with pytest.raises(PreludeSyntaxError, match="precede"):
            parse_prelude("sink f\nlattice taint\n")

    def test_unknown_directive(self):
        with pytest.raises(PreludeSyntaxError, match="unknown directive"):
            parse_prelude("frobnicate f\n")

    def test_unknown_level(self):
        with pytest.raises(PreludeSyntaxError, match="unknown lattice level"):
            parse_prelude("sink f hyperspace\n")

    def test_unknown_vuln_class(self):
        with pytest.raises(PreludeSyntaxError, match="vulnerability class"):
            parse_prelude("sink f tainted bogus\n")

    def test_bad_lattice_kind(self):
        with pytest.raises(PreludeSyntaxError, match="unknown lattice kind"):
            parse_prelude("lattice hypercube a b\n")

    def test_error_carries_line_number(self):
        try:
            parse_prelude("# c\n\nnonsense here\n")
        except PreludeSyntaxError as err:
            assert err.line_number == 3
        else:
            pytest.fail("expected PreludeSyntaxError")


class TestRoundTrip:
    def test_render_parse_round_trip(self):
        original = default_php_prelude()
        original.add_sink("custom_exec", vuln_class=VulnClass.COMMAND)
        text = render_prelude(original)
        reparsed = parse_prelude(text, base=Prelude())
        assert reparsed.sink_names() == original.sink_names()
        assert reparsed.sanitizer_names() == original.sanitizer_names()
        assert reparsed.function_effect("custom_exec").vuln_class is VulnClass.COMMAND

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "policy.prelude"
        path.write_text("sink audit tainted other\n")
        prelude = load_prelude(path)
        assert prelude.function_effect("audit") is not None


class TestEndToEnd:
    def test_custom_prelude_changes_verdict(self):
        source = "<?php $x = read_config(); show($x);"
        # Default: unknown functions propagate, no sink => safe.
        assert WebSSARI().verify_source(source).safe
        prelude = parse_prelude("source read_config tainted\nsink show tainted xss\n")
        report = WebSSARI(prelude=prelude).verify_source(source)
        assert not report.safe
