"""Deterministic corpus sharding (repro.service.sharding): spec parsing,
disjoint/exhaustive partitions, and stability under rename/add."""

import pytest

from repro.service import assign_shard, parse_shard, shard_partition


def corpus(count=40):
    """A synthetic corpus of (filename, content) pairs."""
    return [
        (f"app/module{i:02d}.php", f"<?php echo $x + {i}; ?>")
        for i in range(count)
    ]


class TestParseShard:
    def test_one_based_spec_to_zero_based_pair(self):
        assert parse_shard("1/1") == (0, 1)
        assert parse_shard("2/4") == (1, 4)
        assert parse_shard("16/16") == (15, 16)

    @pytest.mark.parametrize(
        "spec", ["", "3", "a/b", "1/0", "0/4", "5/4", "-1/4", "1/-2", "1//2"]
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_shard(spec)


class TestAssignShard:
    def test_deterministic_and_in_range(self):
        for _, content in corpus():
            first = assign_shard(content, 7)
            assert first == assign_shard(content, 7)
            assert 0 <= first < 7

    def test_str_and_bytes_agree(self):
        assert assign_shard("<?php ?>", 5) == assign_shard(b"<?php ?>", 5)

    def test_single_shard_owns_everything(self):
        assert all(assign_shard(c, 1) == 0 for _, c in corpus())

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            assign_shard("x", 0)


class TestPartition:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_disjoint_and_exhaustive(self, count):
        """Every file lands on exactly one of the n shards, so the union
        of all shard audits is the whole corpus with no duplicates."""
        items = corpus()
        shards = [shard_partition(items, i, count) for i in range(count)]
        union = [name for shard in shards for name in shard]
        assert sorted(union) == sorted(name for name, _ in items)
        assert len(union) == len(set(union))

    def test_order_preserved_within_shard(self):
        items = corpus()
        names = [name for name, _ in items]
        shard = shard_partition(items, 0, 3)
        positions = [names.index(name) for name in shard]
        assert positions == sorted(positions)

    def test_stable_under_rename(self):
        """Assignment is a pure function of content: renaming every file
        moves nothing between shards."""
        items = corpus()
        by_name = dict(items)
        renamed = [
            (f"deep/nested/{i}.php", content)
            for i, (_, content) in enumerate(items)
        ]
        by_new_name = dict(renamed)
        for count in (2, 3, 5):
            for index in range(count):
                original = [by_name[n] for n in shard_partition(items, index, count)]
                moved = [by_new_name[n] for n in shard_partition(renamed, index, count)]
                assert original == moved

    def test_stable_under_add_and_remove(self):
        """Adding or removing files never reshuffles the survivors."""
        items = corpus()
        grown = items + [("extra.php", "<?php exit; ?>")]
        shrunk = items[:-5]
        for index in range(4):
            base = set(shard_partition(items, index, 4))
            assert base <= set(shard_partition(grown, index, 4))
            survivors = set(shard_partition(shrunk, index, 4))
            assert survivors == {name for name, _ in shrunk} & base

    def test_duplicate_content_colocates(self):
        """Identical files share a cache entry, so they must share a shard."""
        twin = "<?php echo $dup; ?>"
        items = [("a.php", twin), ("b/z.php", twin)]
        owners = [
            index
            for index in range(6)
            if shard_partition(items, index, 6)
        ]
        assert len(owners) == 1
        assert len(shard_partition(items, owners[0], 6)) == 2

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            shard_partition(corpus(), 4, 4)
