"""Tests for the observability layer (repro.obs): span tracer, metrics
registry, and Chrome trace-event export."""

import json
import os
import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace_events,
    get_tracer,
    set_tracer,
    span_from_dict,
    write_chrome_trace,
)


class TestSpanNesting:
    def test_with_blocks_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        roots = tracer.take_roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]

    def test_take_roots_drains(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.take_roots()) == 1
        assert tracer.take_roots() == []

    def test_durations_are_positive_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.take_roots()[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0
        assert outer.start <= inner.start
        assert inner.end <= outer.end + 1e-6

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("solve", iteration=3) as sp:
            sp.set(decisions=42, conflicts=1)
        span = tracer.take_roots()[0]
        assert span.attrs == {"iteration": 3, "decisions": 42, "conflicts": 1}

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        span = tracer.take_roots()[0]
        assert span.attrs["error"] == "ValueError"

    def test_span_ids_unique_and_pid_recorded(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        roots = tracer.take_roots()
        ids = [r.span_id for r in roots]
        assert len(set(ids)) == 3
        assert all(r.pid == os.getpid() for r in roots)

    def test_add_attaches_under_open_span_or_as_root(self):
        tracer = Tracer()
        orphan = Span("worker-tree", start=1.0, duration=0.5)
        with tracer.span("parent"):
            tracer.add(orphan)
        parent = tracer.take_roots()[0]
        assert parent.children == [orphan]
        rootless = Span("loose")
        tracer.add(rootless)
        assert tracer.take_roots() == [rootless]


class TestDisabledMode:
    def test_disabled_span_is_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", key="value") is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN

    def test_null_span_context_manager_and_set(self):
        with NULL_SPAN as sp:
            sp.set(decisions=1)  # silently ignored

    def test_disabled_tracer_collects_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a"):
            pass
        tracer.add(Span("b"))
        assert tracer.take_roots() == []

    def test_global_default_is_disabled(self):
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous_and_none_restores(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)
        assert get_tracer() is NULL_TRACER
        set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestSerialization:
    def test_round_trip_preserves_tree(self):
        tracer = Tracer()
        with tracer.span("file", filename="a.php"):
            with tracer.span("sat.solve", iteration=0) as sp:
                sp.set(decisions=7)
        original = tracer.take_roots()[0]
        rebuilt = span_from_dict(original.to_dict())
        assert rebuilt.name == original.name
        assert rebuilt.attrs == original.attrs
        assert rebuilt.start == original.start
        assert rebuilt.duration == original.duration
        assert rebuilt.pid == original.pid
        assert [c.name for c in rebuilt.children] == ["sat.solve"]
        assert rebuilt.children[0].attrs == {"iteration": 0, "decisions": 7}

    def test_to_dict_is_json_able(self):
        tracer = Tracer()
        with tracer.span("s", n=1):
            pass
        payload = tracer.take_roots()[0].to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_from_dict_tolerates_missing_fields(self):
        span = span_from_dict({"name": "bare"})
        assert span.name == "bare"
        assert span.children == [] and span.attrs == {}


class TestThreadSafety:
    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def work(tag):
            try:
                for i in range(50):
                    with tracer.span(f"{tag}-outer"):
                        with tracer.span(f"{tag}-inner", i=i):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in ("a", "b", "c")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        roots = tracer.take_roots()
        assert len(roots) == 150
        # Inner spans always nest under an outer of the same thread's tag.
        for root in roots:
            tag = root.name.split("-")[0]
            assert [c.name for c in root.children] == [f"{tag}-inner"]
        ids = [s.span_id for r in roots for s in r.walk()]
        assert len(ids) == len(set(ids))


class TestChromeExport:
    def _sample_roots(self):
        tracer = Tracer()
        with tracer.span("file", filename="a.php"):
            with tracer.span("sat.solve", decisions=3):
                pass
        return tracer.take_roots()

    def test_events_structure(self):
        events = chrome_trace_events(self._sample_roots())
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert [e["name"] for e in complete] == ["file", "sat.solve"]
        assert meta and meta[0]["name"] == "process_name"
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == os.getpid()
        assert complete[1]["args"] == {"decisions": 3}

    def test_timestamps_relative_to_earliest(self):
        events = chrome_trace_events(self._sample_roots())
        assert min(e["ts"] for e in events if e["ph"] == "X") == 0

    def test_write_chrome_trace_valid_file(self, tmp_path):
        out = tmp_path / "nested" / "trace.json"
        written = write_chrome_trace(out, self._sample_roots())
        assert written == out
        payload = json.loads(out.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["producer"] == "repro.obs"

    def test_empty_roots(self, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace(out, [])
        assert json.loads(out.read_text())["traceEvents"] == []


class TestMetrics:
    def test_counter_increments_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("files_total", "files")
        counter.inc(status="ok")
        counter.inc(status="ok")
        counter.inc(status="crash")
        assert counter.value(status="ok") == 2
        assert counter.value(status="crash") == 1
        assert counter.value(status="missing") == 0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        assert gauge.value() == 7

    def test_histogram_buckets_cumulative(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(55.55)
        # bucket counts: <=0.1 -> 1, <=1 -> 2, <=10 -> 3, +Inf -> 4
        lines = hist._samples()
        assert 'h_bucket{le="0.1"} 1' in lines
        assert 'h_bucket{le="1"} 2' in lines
        assert 'h_bucket{le="10"} 3' in lines
        assert 'h_bucket{le="+Inf"} 4' in lines

    def test_registry_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("m") is registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_render_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("repro_files_total", "files by status").inc(status="ok")
        registry.histogram("repro_file_seconds", "wall time").observe(0.25)
        text = registry.render()
        assert "# HELP repro_files_total files by status" in text
        assert "# TYPE repro_files_total counter" in text
        assert 'repro_files_total{status="ok"} 1' in text
        assert "# TYPE repro_file_seconds histogram" in text
        assert "repro_file_seconds_sum 0.25" in text
        assert "repro_file_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(path='a"b\\c')
        assert 'path="a\\"b\\\\c"' in registry.render()
