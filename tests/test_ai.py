"""Tests for the AI translation (Figure 4) and the renaming ρ (§3.3.2)."""

from repro.ai import (
    AISeq,
    AIStop,
    Assertion,
    Branch,
    IndexedVar,
    RenamedAssert,
    RenamedAssign,
    RenamedStop,
    TypeAssign,
    assertions_of,
    branch_variables,
    count_instructions,
    rename,
    translate,
    translate_filter_result,
)
from repro.ir import Const, Join, LevelConst, VarRef, filter_source
from repro.lattice.types import TAINTED


def ai_of(source, **kwargs):
    return translate_filter_result(filter_source("<?php " + source, **kwargs))


def renamed_of(source):
    return rename(ai_of(source))


class TestTranslate:
    def test_assignment_becomes_type_assign(self):
        program = ai_of("$x = $y;")
        (instr,) = list(program)
        assert isinstance(instr, TypeAssign)
        assert instr.var == "x"
        assert instr.expr == VarRef("y")

    def test_sink_becomes_assertion(self):
        program = ai_of("echo $x;")
        (instr,) = list(program)
        assert isinstance(instr, Assertion)
        assert instr.variables == ("x",)
        assert instr.required == TAINTED
        assert instr.function == "echo"

    def test_if_becomes_nondeterministic_branch(self):
        program = ai_of("if ($c) { $x = 1; } else { $x = 2; }")
        (branch,) = list(program)
        assert isinstance(branch, Branch)
        assert branch.variable == "b1"
        assert len(branch.then) == 1
        assert len(branch.orelse) == 1

    def test_while_becomes_selection(self):
        # Figure 4: while e do c → if b_e then AI(c).
        program = ai_of("while ($c) { $x = $x . $y; }")
        branch = next(i for i in program if isinstance(i, Branch))
        assert len(branch.orelse) == 0
        assert any(isinstance(i, TypeAssign) for i in branch.then)

    def test_stop_preserved(self):
        program = ai_of("exit;")
        (instr,) = list(program)
        assert isinstance(instr, AIStop)

    def test_branch_ids_sequential(self):
        program = ai_of("if ($a) {} if ($b) {} if ($c) {}")
        ids = [i.branch_id for i in program if isinstance(i, Branch)]
        assert ids == [1, 2, 3]
        assert program.num_branches == 3

    def test_assert_ids_sequential(self):
        program = ai_of("echo $a; echo $b;")
        ids = [i.assert_id for i in assertions_of(program.body)]
        assert ids == [1, 2]
        assert program.num_assertions == 2

    def test_count_instructions(self):
        program = ai_of("if ($c) { $x = 1; } else { $y = 2; } echo $x;")
        assert count_instructions(program.body) == 4

    def test_branch_variables_inventory(self):
        program = ai_of("if ($a) { if ($b) {} } if ($c) {}")
        assert branch_variables(program.body) == ["b1", "b2", "b3"]

    def test_nested_branch_structure(self):
        program = ai_of("if ($a) { if ($b) { echo $x; } }")
        outer = next(i for i in program if isinstance(i, Branch))
        inner = next(i for i in outer.then if isinstance(i, Branch))
        assert isinstance(inner.then.instructions[0], Assertion)

    def test_filter_warnings_forwarded(self):
        source = "<?php function r($n){ return r($n); } $x = r($y);"
        program = translate_filter_result(filter_source(source))
        assert any("recursion" in w for w in program.warnings)


class TestRenaming:
    def test_sequential_versions(self):
        renamed = renamed_of("$x = 1; $x = 2; $x = 3;")
        targets = [e.target for e in renamed.assigns()]
        assert targets == [IndexedVar("x", 1), IndexedVar("x", 2), IndexedVar("x", 3)]
        assert renamed.final_versions["x"] == 3

    def test_read_uses_current_version(self):
        renamed = renamed_of("$x = 1; $y = $x; $x = 2; $z = $x;")
        assigns = renamed.assigns()
        assert assigns[1].expr == IndexedVar("x", 1)
        assert assigns[3].expr == IndexedVar("x", 2)

    def test_read_before_assignment_is_version_zero(self):
        renamed = renamed_of("$y = $x;")
        (assign,) = renamed.assigns()
        assert assign.expr == IndexedVar("x", 0)

    def test_branch_arms_continue_counter(self):
        # Figure 6: then-branch assigns tmp^{j+1}, else-branch tmp^{j+2}.
        renamed = renamed_of("if ($c) { $tmp = $a; } else { $tmp = $b; }")
        targets = [e.target for e in renamed.assigns() if e.target.name == "tmp"]
        assert targets == [IndexedVar("tmp", 1), IndexedVar("tmp", 2)]

    def test_guards_accumulate(self):
        renamed = renamed_of("if ($a) { if ($b) { $x = 1; } else { $x = 2; } }")
        assigns = renamed.assigns()
        inner_then = assigns[0]
        inner_else = assigns[1]
        assert [(g.variable, g.positive) for g in inner_then.guard] == [
            ("b1", True),
            ("b2", True),
        ]
        assert [(g.variable, g.positive) for g in inner_else.guard] == [
            ("b1", True),
            ("b2", False),
        ]

    def test_top_level_guard_empty(self):
        renamed = renamed_of("$x = 1;")
        assert renamed.assigns()[0].guard == ()

    def test_assertion_uses_current_versions(self):
        renamed = renamed_of("$x = $_GET['a']; echo $x; $x = 1; echo $x;")
        asserts = renamed.assertions()
        assert asserts[0].variables == (IndexedVar("x", 1),)
        assert asserts[1].variables == (IndexedVar("x", 2),)

    def test_join_renamed_recursively(self):
        renamed = renamed_of("$q = $a . $b;")
        (assign,) = renamed.assigns()
        assert assign.expr == Join((IndexedVar("a", 0), IndexedVar("b", 0)))

    def test_stop_event_guarded(self):
        renamed = renamed_of("if ($c) { exit; }")
        stops = [e for e in renamed.events if isinstance(e, RenamedStop)]
        assert len(stops) == 1
        assert stops[0].guard[0].variable == "b1"

    def test_branch_variable_inventory(self):
        renamed = renamed_of("if ($a) {} while ($b) {}")
        assert renamed.branch_variables == ["b1", "b2"]

    def test_figure6_full_shape(self):
        source = """
if ($Nick) {
  $tmp = $_GET["nick"];
  echo(htmlspecialchars($tmp));
} else {
  $tmp = "You are the" . $GuestCount . " guest";
  echo($tmp);
}
"""
        renamed = renamed_of(source)
        assigns = renamed.assigns()
        asserts = renamed.assertions()
        # Then branch: t_tmp^1 = T (from $_GET), t_tmp^2 = U (sanitizer),
        # assert on tmp^2.  Else branch: t_tmp^3 = t_GuestCount^0, assert
        # on tmp^3 — mirroring Figure 6's j+1/j+2 progression.
        tmp_targets = [a.target.index for a in assigns if a.target.name == "tmp"]
        assert tmp_targets == [1, 2, 3]
        assert assigns[0].expr == LevelConst(TAINTED)
        assert assigns[1].expr == LevelConst("untainted")
        assert assigns[2].expr == IndexedVar("GuestCount", 0)
        assert asserts[0].variables == (IndexedVar("tmp", 2),)
        assert asserts[1].variables == (IndexedVar("tmp", 3),)
        assert [g.positive for g in asserts[0].guard] == [True]
        assert [g.positive for g in asserts[1].guard] == [False]

    def test_events_in_program_order(self):
        renamed = renamed_of("$a = 1; if ($c) { echo $a; } $b = 2;")
        kinds = [type(e).__name__ for e in renamed.events]
        assert kinds == ["RenamedAssign", "RenamedAssert", "RenamedAssign"]
