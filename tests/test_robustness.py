"""Failure injection and fuzz robustness.

The pipeline's contract on malformed or adversarial input: raise a
:class:`FrontendError` subclass with a source span — never an arbitrary
exception, never a hang.  These tests inject broken inputs at each layer
and fuzz the frontend with random text.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WebSSARI
from repro.cli import main
from repro.php import FrontendError, parse, tokenize
from repro.php.errors import LexError, ParseError


class TestMalformedSource:
    BROKEN = [
        "<?php $x = ;",
        "<?php if (",
        "<?php function () {}",
        "<?php 'unterminated",
        '<?php "unterminated',
        "<?php /* forever",
        "<?php $ ;",
        "<?php foreach ($a) {}",
        "<?php class {}",
        "<?php class C { nonsense }",
        "<?php switch ($x) { nonsense; }",
        "<?php $x = <<<EOT\nnever closed",
    ]

    @pytest.mark.parametrize("source", BROKEN)
    def test_verify_raises_frontend_error(self, source):
        with pytest.raises(FrontendError) as info:
            WebSSARI().verify_source(source)
        assert info.value.span is not None

    @pytest.mark.parametrize("source", BROKEN)
    def test_error_message_mentions_location(self, source):
        with pytest.raises(FrontendError) as info:
            WebSSARI().verify_source(source)
        assert "at <string>" in str(info.value)


class TestCliErrorHandling:
    def test_unparsable_file_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.php"
        bad.write_text("<?php $x = ;")
        assert main(["verify", str(bad)]) == 2
        assert "frontend error" in capsys.readouterr().err

    def test_mixed_good_and_bad_files(self, tmp_path, capsys):
        (tmp_path / "bad.php").write_text("<?php if (")
        (tmp_path / "good.php").write_text("<?php echo 'x';")
        assert main(["verify", str(tmp_path)]) == 2
        captured = capsys.readouterr()
        assert "SAFE" in captured.out  # good file still reported
        assert "frontend error" in captured.err

    def test_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "ghost.php"
        assert main(["verify", str(missing)]) == 2


class TestResourceLimits:
    def test_deep_nesting_parses(self):
        depth = 60
        source = "<?php " + "if ($c) { " * depth + "$x = 1;" + " }" * depth
        program = parse(source)
        assert program.statements

    def test_long_concatenation_chain(self):
        source = "<?php $x = " + " . ".join(f"$v{i}" for i in range(300)) + ";"
        report = WebSSARI().verify_source(source)
        assert report.safe

    def test_many_statements(self):
        source = "<?php " + " ".join(f"$v{i} = {i};" for i in range(2000))
        report = WebSSARI().verify_source(source)
        assert report.num_statements == 2000

    def test_wide_branch_fan(self):
        source = "<?php $x = '';" + "".join(
            f"if ($c{i}) {{ $x = 'k{i}'; }}" for i in range(24)
        ) + "echo $x;"
        # 2^24 paths exist; verification must not enumerate them (the
        # program is safe, so the solver proves UNSAT directly).
        report = WebSSARI().verify_source(source)
        assert report.safe


# -- fuzzing ------------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=60))
def test_lexer_total_on_random_text(text):
    try:
        tokenize("<?php " + text)
    except LexError:
        pass  # the only acceptable failure


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=60))
def test_parser_total_on_random_text(text):
    try:
        parse("<?php " + text)
    except (LexError, ParseError):
        pass


_PHPISH = st.text(
    alphabet=st.sampled_from(list("$abc123='\";(){}[]<>!&|.+-*/ \n#@,:?")), max_size=80
)


@settings(max_examples=300, deadline=None)
@given(_PHPISH)
def test_full_pipeline_total_on_phpish_text(text):
    try:
        WebSSARI().verify_source("<?php " + text)
    except FrontendError:
        pass
