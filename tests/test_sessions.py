"""Session support: $_SESSION as an untrusted channel and at runtime."""

from repro import WebSSARI
from repro.interp import HttpRequest, MockDatabase, run_php


class TestSessionPolicy:
    def test_session_read_is_tainted(self):
        report = WebSSARI().verify_source("<?php echo $_SESSION['username'];")
        assert not report.safe

    def test_figure1_session_and_post(self):
        # Figure 1 of the paper inserts both $_SESSION['username'] and
        # $_POST values into SQL without sanitization.
        source = """<?php
$query = "INSERT INTO tickets_tickets (tickets_username, tickets_subject, tickets_question)
          VALUES ('{$_SESSION['username']}', '{$_POST['ticketsubject']}', '{$_POST['message']}')";
$result = @mysql_query($query);
"""
        report = WebSSARI().verify_source(source)
        assert not report.safe
        assert report.ts_error_count == 1  # one sink site
        assert report.bmc_group_count == 1

    def test_sanitized_session_is_safe(self):
        source = "<?php echo htmlspecialchars($_SESSION['name']);"
        assert WebSSARI().verify_source(source).safe


class TestSessionRuntime:
    def test_session_persists_across_requests(self):
        session: dict = {}
        login = """<?php
session_start();
$_SESSION['username'] = $_POST['user'];
echo 'logged in';
"""
        profile = """<?php
session_start();
echo 'Hello ' . $_SESSION['username'];
"""
        run_php(login, request=HttpRequest(post={"user": "alice"}), session=session)
        assert session["username"] == "alice"
        env = run_php(profile, session=session)
        assert env.response_body() == "Hello alice"

    def test_session_destroy(self):
        session = {"username": "bob"}
        source = "<?php session_start(); session_destroy();"
        run_php(source, session=session)
        assert session == {}

    def test_without_session_start_no_session(self):
        env = run_php("<?php echo isset($_SESSION) ? 'y' : 'n';")
        assert env.response_body() == "n"

    def test_session_xss_end_to_end(self):
        """Stored XSS via the session: payload set at login, delivered on
        a later page — then blocked by the patched page."""
        websari = WebSSARI()
        session: dict = {}
        payload = "<script>hijack()</script>"
        login = "<?php session_start(); $_SESSION['username'] = $_POST['user'];"
        greet = "<?php session_start(); echo 'Welcome ' . $_SESSION['username'];"

        run_php(login, request=HttpRequest(post={"user": payload}), session=session)
        env = run_php(greet, session=session)
        assert "<script>" in env.response_body()

        report, patched = websari.patch_source(greet, strategy="bmc")
        assert websari.verify_source(patched.source).safe
        env = run_php(patched.source, session=session)
        assert "<script>" not in env.response_body()

    def test_paper_figure1_full_scenario(self):
        """Figure 1 + Figure 2 with a session username, end to end."""
        db = MockDatabase()
        db.create_table("tickets_tickets", [])
        session = {"username": "support_user"}
        submit = """<?php
session_start();
$query = "INSERT INTO tickets_tickets (tickets_username, tickets_subject) VALUES ('{$_SESSION['username']}', '{$_POST['ticketsubject']}')";
@mysql_query($query);
"""
        display = """<?php
$result = @mysql_query("SELECT tickets_username, tickets_subject FROM tickets_tickets");
while ($row = @mysql_fetch_array($result)) {
  extract($row);
  echo "$tickets_username: $tickets_subject<BR>";
}
"""
        run_php(
            submit,
            request=HttpRequest(post={"ticketsubject": "<script>x</script>"}),
            database=db,
            session=session,
        )
        env = run_php(display, database=db)
        body = env.response_body()
        assert "support_user" in body
        assert "<script>" in body  # the stored XSS fires
