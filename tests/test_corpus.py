"""Tests for the synthetic corpus: the analyzer must REDISCOVER the
seeded vulnerability topology without being shown the ground truth."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WebSSARI
from repro.corpus import (
    CORPUS_AGGREGATES,
    FIGURE_10,
    PAPER_TOTALS,
    catalog_totals,
    corpus_statistics,
    generate_catalog_project,
    generate_corpus,
    generate_project,
    partition_errors,
    ProjectSpec,
)


class TestCatalog:
    def test_38_projects(self):
        assert len(FIGURE_10) == CORPUS_AGGREGATES["num_acknowledged_projects"] == 38

    def test_bmc_total_matches_paper_exactly(self):
        assert catalog_totals()["bmc_groups"] == PAPER_TOTALS["bmc_groups"] == 578

    def test_ts_total_close_to_paper(self):
        # Known transcription discrepancy: 969 in the printed rows vs 980
        # stated in the text (see catalog docstring / EXPERIMENTS.md).
        total = catalog_totals()["ts_errors"]
        assert 960 <= total <= 980

    def test_headline_reduction(self):
        stated = PAPER_TOTALS
        reduction = 100.0 * (stated["ts_errors"] - stated["bmc_groups"]) / stated["ts_errors"]
        assert round(reduction, 1) == 41.0

    def test_bmc_never_exceeds_ts_per_project(self):
        for entry in FIGURE_10:
            assert entry.bmc_groups <= entry.ts_errors

    def test_surveyor_row(self):
        surveyor = next(e for e in FIGURE_10 if e.name == "PHP Surveyor")
        assert (surveyor.ts_errors, surveyor.bmc_groups) == (169, 90)


class TestPartition:
    def test_sizes_sum_and_floor(self):
        rng = random.Random(0)
        sizes = partition_errors(20, 7, rng)
        assert sum(sizes) == 20
        assert len(sizes) == 7
        assert all(s >= 1 for s in sizes)

    def test_equal_counts_all_singletons(self):
        sizes = partition_errors(5, 5, random.Random(0))
        assert sizes == [1, 1, 1, 1, 1]

    def test_zero_groups(self):
        assert partition_errors(0, 0, random.Random(0)) == []

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            partition_errors(3, 5, random.Random(0))
        with pytest.raises(ValueError):
            partition_errors(3, 0, random.Random(0))

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=1000),
    )
    def test_partition_property(self, groups, extra, seed):
        ts = groups + extra
        sizes = partition_errors(ts, groups, random.Random(seed))
        assert sum(sizes) == ts and len(sizes) == groups and min(sizes) >= 1


class TestGeneratedProjectsAnalyzeCorrectly:
    """The load-bearing property: analysis recovers the seeded counts."""

    @pytest.fixture(scope="class")
    def websari(self):
        return WebSSARI()

    @pytest.mark.parametrize("ts,bmc", [(1, 1), (4, 2), (7, 7), (10, 3), (16, 1)])
    def test_counts_recovered(self, websari, ts, bmc):
        generated = generate_project(
            ProjectSpec(name=f"t{ts}b{bmc}", ts_errors=ts, bmc_groups=bmc)
        )
        report = websari.verify_project(generated.project)
        assert report.ts_error_count == ts
        assert report.bmc_group_count == bmc

    def test_clean_project_is_safe(self, websari):
        generated = generate_project(
            ProjectSpec(name="clean", ts_errors=0, bmc_groups=0, target_statements=200)
        )
        report = websari.verify_project(generated.project)
        assert report.safe
        assert report.ts_error_count == 0

    def test_vulnerable_files_match_ground_truth(self, websari):
        generated = generate_project(
            ProjectSpec(name="vf", ts_errors=6, bmc_groups=3, target_files=4)
        )
        report = websari.verify_project(generated.project)
        measured = {r.filename for r in report.vulnerable_reports}
        assert measured == generated.vulnerable_files

    def test_deterministic_generation(self):
        a = generate_project(ProjectSpec(name="same", ts_errors=5, bmc_groups=2))
        b = generate_project(ProjectSpec(name="same", ts_errors=5, bmc_groups=2))
        assert a.project.paths() == b.project.paths()
        for path in a.project.paths():
            assert a.project.source(path) == b.project.source(path)

    def test_all_cluster_shapes_analyze_correctly(self, websari):
        # Exercise every shape by seeding until all have appeared.
        seen = set()
        seed = 0
        while len(seen) < 7 and seed < 120:
            generated = generate_project(
                ProjectSpec(name=f"shape{seed}", ts_errors=9, bmc_groups=3, seed=seed)
            )
            for cluster in generated.clusters:
                seen.add(cluster.shape)
            report = websari.verify_project(generated.project)
            assert report.ts_error_count == 9, f"seed {seed}"
            assert report.bmc_group_count == 3, f"seed {seed}"
            seed += 1
        assert seen == {"star", "chain", "conditional", "function", "loop", "class", "include"}

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_random_specs_recovered(self, groups, extra, seed):
        websari = WebSSARI()
        ts = groups + extra
        generated = generate_project(
            ProjectSpec(name=f"rnd{seed}", ts_errors=ts, bmc_groups=groups, seed=seed)
        )
        report = websari.verify_project(generated.project)
        assert report.ts_error_count == ts
        assert report.bmc_group_count == groups


class TestCatalogProjects:
    def test_small_catalog_entries_round_trip(self):
        websari = WebSSARI()
        for entry in FIGURE_10:
            if entry.ts_errors > 10:
                continue  # big ones covered by the FIG10 benchmark
            generated = generate_catalog_project(entry)
            report = websari.verify_project(generated.project)
            assert report.ts_error_count == entry.ts_errors, entry.name
            assert report.bmc_group_count == entry.bmc_groups, entry.name


class TestCorpusGeneration:
    def test_population_structure(self):
        projects = generate_corpus(scale=0.004, seed=1)
        stats = corpus_statistics(projects)
        assert stats["num_projects"] == 230
        assert stats["num_vulnerable_projects"] == 69
        assert stats["seeded_bmc_groups"] >= 578  # catalog + 31 extra
        catalog = catalog_totals()
        assert stats["seeded_ts_errors"] >= catalog["ts_errors"]

    def test_scale_controls_size(self):
        small = corpus_statistics(generate_corpus(scale=0.004, seed=1))
        large = corpus_statistics(generate_corpus(scale=0.012, seed=1))
        assert large["num_statements"] > small["num_statements"]
        assert large["num_files"] >= small["num_files"]

    def test_deterministic_for_seed(self):
        a = corpus_statistics(generate_corpus(scale=0.004, seed=7))
        b = corpus_statistics(generate_corpus(scale=0.004, seed=7))
        assert a == b
