"""Verdict parity across solver backends and the SAT query cache.

All acceleration layers — the query cache, the incremental CDCL
machinery (trail/VSIDS/lemma retention across the enumeration plus
cross-query clause import), and the portfolio racer — are pure
optimizations: for any program, every ``(solver backend, sat-cache,
incremental)`` combination must produce the same :class:`BMCResult`
verdicts, the same counterexample counts, and the same witness
signatures.  These tests pin that property over Figure-10-generator
projects (the property-style corpus: deterministic seeds, varied
topology/shapes), random fuzz programs, and a few hand-picked tricky
sources, and pin byte-stable JSONL output for a fixed ``--sat-seed``.
"""

import json
import random

import pytest

from repro.corpus.generator import ProjectSpec, generate_fuzz_program, generate_project
from repro.sat.cache import SatQueryCache
from repro.websari.pipeline import WebSSARI


def _variants():
    """One verifier per (backend, cache) combination, fresh caches each.

    Covers the full cdcl/dpll/portfolio × cache on/off grid plus the
    incremental-machinery ablation and the non-default tuning knobs
    (Luby restarts, nonzero VSIDS/phase seed).
    """
    return {
        ("cdcl", "off"): WebSSARI(solver="cdcl"),
        ("cdcl", "on"): WebSSARI(solver="cdcl", sat_cache=SatQueryCache()),
        ("dpll", "off"): WebSSARI(solver="dpll"),
        ("dpll", "on"): WebSSARI(solver="dpll", sat_cache=SatQueryCache()),
        ("portfolio", "off"): WebSSARI(solver="portfolio"),
        ("portfolio", "on"): WebSSARI(
            solver="portfolio", sat_cache=SatQueryCache()
        ),
        ("cdcl-nonincremental", "off"): WebSSARI(
            solver="cdcl", sat_incremental=False
        ),
        ("cdcl-nonincremental", "on"): WebSSARI(
            solver="cdcl", sat_cache=SatQueryCache(), sat_incremental=False
        ),
        ("cdcl-luby-seeded", "on"): WebSSARI(
            solver="cdcl",
            sat_cache=SatQueryCache(),
            restart_strategy="luby",
            sat_seed=7,
        ),
    }


def _witnesses(assertion):
    """Order-insensitive witness signature of one assertion: the set of
    enumerated paths (deciding-branch assignments) and what each one
    violates.  Enumeration *order* is solver-dependent; the set is not.
    """
    return tuple(
        sorted(
            (
                tuple(sorted(cx.deciding_branches.items())),
                tuple(sorted(cx.violating_names)),
            )
            for cx in assertion.counterexamples
        )
    )


def _signature(report):
    """Everything that must agree across variants for one entry file."""
    return (
        report.safe,
        report.bmc.safe,
        [
            (a.assert_id, a.safe, len(a.counterexamples), a.truncated, _witnesses(a))
            for a in report.bmc.assertions
        ],
        report.bmc_group_count,
        report.ts_error_count,
    )


SPECS = [
    # Small on purpose: dpll is the slow ablation baseline.  Varied
    # seeds rotate the generator through its cluster shapes (star,
    # chain, conditional root, function propagation, loop sinks).
    ProjectSpec(name="parity-a", ts_errors=3, bmc_groups=2, target_statements=30,
                target_files=2, seed=11),
    ProjectSpec(name="parity-b", ts_errors=4, bmc_groups=2, target_statements=30,
                target_files=2, seed=22),
    ProjectSpec(name="parity-c", ts_errors=2, bmc_groups=1, target_statements=40,
                target_files=2, seed=33),
    ProjectSpec(name="parity-d", ts_errors=5, bmc_groups=3, target_statements=30,
                target_files=3, seed=44),
]


class TestGeneratedProjectParity:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_all_variants_agree(self, spec):
        generated = generate_project(spec)
        variants = _variants()
        signatures = {}
        for key, websari in variants.items():
            report = websari.verify_project(generated.project)
            signatures[key] = [
                (r.filename, _signature(r)) for r in report.reports
            ]
        baseline = signatures[("cdcl", "off")]
        for key, signature in signatures.items():
            assert signature == baseline, f"variant {key} diverged"
        # The corpus must actually exercise the solvers (vulnerable files).
        assert any(not sig[0] for _, sig in baseline)

    def test_warm_cache_replays_identically(self):
        # Verify the same project twice through ONE cached verifier: the
        # second pass is (almost) pure replay and must not drift.
        generated = generate_project(SPECS[0])
        websari = WebSSARI(solver="cdcl", sat_cache=SatQueryCache())
        first = websari.verify_project(generated.project)
        second = websari.verify_project(generated.project)
        assert [_signature(r) for r in first.reports] == [
            _signature(r) for r in second.reports
        ]
        warm_stats = [r.bmc.solver_stats for r in second.reports]
        assert any(s.get("cache_hits", 0) > 0 for s in warm_stats)
        assert all(s.get("cache_misses", 0) == 0 for s in warm_stats)


class TestFuzzProgramParity:
    """The ISSUE-8 parity sweep: random loop-free F(p) programs through
    the full variant grid, witness-equivalence included."""

    SEED = 20260808
    COUNT = 6

    @pytest.mark.parametrize("index", range(COUNT))
    def test_all_variants_agree(self, index):
        program = generate_fuzz_program(random.Random(self.SEED + index))
        signatures = {
            key: _signature(
                websari.verify_source(program.source, f"fuzz{index}.php")
            )
            for key, websari in _variants().items()
        }
        baseline = signatures[("cdcl", "off")]
        for key, signature in signatures.items():
            assert signature == baseline, (
                f"fuzz{index}: variant {key} diverged "
                f"(seed={self.SEED + index})\nsource:\n{program.source}"
            )


class TestSeededJsonlDeterminism:
    """A fixed ``--sat-seed`` must make two identical audits emit
    byte-identical JSONL modulo wall-clock fields."""

    VOLATILE = {"duration", "timings", "stage_seconds", "ts", "wall_seconds", "seconds"}

    def _scrub(self, record):
        out = {}
        for key, value in record.items():
            if key in self.VOLATILE:
                continue
            if key == "slow_queries":
                # The ledger ranks by wall seconds — a timing artifact —
                # so compare it as an order-free set of scrubbed records.
                value = sorted(
                    (
                        {k: v for k, v in q.items() if k not in self.VOLATILE}
                        for q in value
                    ),
                    key=lambda q: (q.get("fingerprint", ""), q.get("assert_id", 0)),
                )
            out[key] = value
        return out

    def _audit(self, tmp_path, corpus, tag):
        from repro.cli import main

        out = tmp_path / f"audit-{tag}.jsonl"
        main(
            [
                "audit",
                str(corpus),
                "--jobs",
                "1",
                "--no-cache",
                "--sat-cache",
                "on",
                "--sat-seed",
                "7",
                "--restart-strategy",
                "luby",
                "--jsonl",
                str(out),
                "--quiet",
            ]
        )
        with open(out) as handle:
            return [self._scrub(json.loads(line)) for line in handle]

    def test_two_runs_identical(self, tmp_path):
        corpus = tmp_path / "php"
        corpus.mkdir()
        rng = random.Random(99)
        for i in range(4):
            program = generate_fuzz_program(rng)
            (corpus / f"f{i}.php").write_text(program.source)
        first = self._audit(tmp_path, corpus, "a")
        second = self._audit(tmp_path, corpus, "b")
        assert first == second


class TestTrickySourcesParity:
    SOURCES = {
        "multi-sink": (
            "<?php $a = $_GET['x']; echo $a; print $a; "
            "mysql_query('SELECT ' . $a);\n"
        ),
        "accumulation": (
            "<?php $y = 'ok';\n"
            "if ($_GET['a']) { $y = $y . $_GET['a']; }\n"
            "if ($_GET['b']) { $y = $y . $_GET['b']; }\n"
            "if ($_GET['c']) { $y = $y . $_GET['c']; }\n"
            "echo $y;\n"
        ),
        "sanitized": (
            "<?php $q = htmlspecialchars($_GET['q']); echo $q;\n"
        ),
        "mixed": (
            "<?php $s = htmlspecialchars($_POST['s']); echo $s; "
            "echo $_COOKIE['session'];\n"
        ),
    }

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_all_variants_agree(self, name):
        source = self.SOURCES[name]
        signatures = {
            key: _signature(websari.verify_source(source, f"{name}.php"))
            for key, websari in _variants().items()
        }
        baseline = signatures[("cdcl", "off")]
        for key, signature in signatures.items():
            assert signature == baseline, f"variant {key} diverged"
