"""Verdict parity across solver backends and the SAT query cache.

Both acceleration layers are pure optimizations: for any program, every
``(solver backend, sat-cache)`` combination must produce the same
:class:`BMCResult` verdicts and the same counterexample counts.  These
tests pin that property over Figure-10-generator projects (the
property-style corpus: deterministic seeds, varied topology/shapes) plus
a few hand-picked tricky sources.
"""

import pytest

from repro.corpus.generator import ProjectSpec, generate_project
from repro.sat.cache import SatQueryCache
from repro.websari.pipeline import WebSSARI


def _variants():
    """One verifier per (backend, cache) combination, fresh caches each."""
    return {
        ("cdcl", "off"): WebSSARI(solver="cdcl"),
        ("cdcl", "on"): WebSSARI(solver="cdcl", sat_cache=SatQueryCache()),
        ("dpll", "off"): WebSSARI(solver="dpll"),
        ("dpll", "on"): WebSSARI(solver="dpll", sat_cache=SatQueryCache()),
    }


def _signature(report):
    """Everything that must agree across variants for one entry file."""
    return (
        report.safe,
        report.bmc.safe,
        [
            (a.assert_id, a.safe, len(a.counterexamples), a.truncated)
            for a in report.bmc.assertions
        ],
        report.bmc_group_count,
        report.ts_error_count,
    )


SPECS = [
    # Small on purpose: dpll is the slow ablation baseline.  Varied
    # seeds rotate the generator through its cluster shapes (star,
    # chain, conditional root, function propagation, loop sinks).
    ProjectSpec(name="parity-a", ts_errors=3, bmc_groups=2, target_statements=30,
                target_files=2, seed=11),
    ProjectSpec(name="parity-b", ts_errors=4, bmc_groups=2, target_statements=30,
                target_files=2, seed=22),
    ProjectSpec(name="parity-c", ts_errors=2, bmc_groups=1, target_statements=40,
                target_files=2, seed=33),
    ProjectSpec(name="parity-d", ts_errors=5, bmc_groups=3, target_statements=30,
                target_files=3, seed=44),
]


class TestGeneratedProjectParity:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_all_variants_agree(self, spec):
        generated = generate_project(spec)
        variants = _variants()
        signatures = {}
        for key, websari in variants.items():
            report = websari.verify_project(generated.project)
            signatures[key] = [
                (r.filename, _signature(r)) for r in report.reports
            ]
        baseline = signatures[("cdcl", "off")]
        for key, signature in signatures.items():
            assert signature == baseline, f"variant {key} diverged"
        # The corpus must actually exercise the solvers (vulnerable files).
        assert any(not sig[0] for _, sig in baseline)

    def test_warm_cache_replays_identically(self):
        # Verify the same project twice through ONE cached verifier: the
        # second pass is (almost) pure replay and must not drift.
        generated = generate_project(SPECS[0])
        websari = WebSSARI(solver="cdcl", sat_cache=SatQueryCache())
        first = websari.verify_project(generated.project)
        second = websari.verify_project(generated.project)
        assert [_signature(r) for r in first.reports] == [
            _signature(r) for r in second.reports
        ]
        warm_stats = [r.bmc.solver_stats for r in second.reports]
        assert any(s.get("cache_hits", 0) > 0 for s in warm_stats)
        assert all(s.get("cache_misses", 0) == 0 for s in warm_stats)


class TestTrickySourcesParity:
    SOURCES = {
        "multi-sink": (
            "<?php $a = $_GET['x']; echo $a; print $a; "
            "mysql_query('SELECT ' . $a);\n"
        ),
        "accumulation": (
            "<?php $y = 'ok';\n"
            "if ($_GET['a']) { $y = $y . $_GET['a']; }\n"
            "if ($_GET['b']) { $y = $y . $_GET['b']; }\n"
            "if ($_GET['c']) { $y = $y . $_GET['c']; }\n"
            "echo $y;\n"
        ),
        "sanitized": (
            "<?php $q = htmlspecialchars($_GET['q']); echo $q;\n"
        ),
        "mixed": (
            "<?php $s = htmlspecialchars($_POST['s']); echo $s; "
            "echo $_COOKIE['session'];\n"
        ),
    }

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_all_variants_agree(self, name):
        source = self.SOURCES[name]
        signatures = {
            key: _signature(websari.verify_source(source, f"{name}.php"))
            for key, websari in _variants().items()
        }
        baseline = signatures[("cdcl", "off")]
        for key, signature in signatures.items():
            assert signature == baseline, f"variant {key} diverged"
