"""The bounded slow-query ledger: top-K retention, ordering, merging."""

from repro.obs.ledger import SlowQueryLedger


def query(seconds, **extra):
    record = {"seconds": seconds, "file": "a.php", "assert_id": 1}
    record.update(extra)
    return record


class TestSlowQueryLedger:
    def test_records_sorted_most_expensive_first(self):
        ledger = SlowQueryLedger()
        for seconds in (0.2, 0.9, 0.5):
            ledger.observe(query(seconds))
        assert [q["seconds"] for q in ledger.records()] == [0.9, 0.5, 0.2]

    def test_capacity_evicts_cheapest(self):
        ledger = SlowQueryLedger(capacity=3)
        for seconds in (0.1, 0.4, 0.2, 0.9, 0.05):
            ledger.observe(query(seconds))
        assert [q["seconds"] for q in ledger.records()] == [0.9, 0.4, 0.2]
        assert len(ledger) == 3

    def test_merge_unions_and_rebounds(self):
        a = SlowQueryLedger(capacity=2)
        a.observe(query(0.3, node="a"))
        b = SlowQueryLedger(capacity=2)
        b.observe(query(0.7, node="b"))
        b.observe(query(0.1, node="b"))
        a.merge(b.records())
        assert [q["seconds"] for q in a.records()] == [0.7, 0.3]

    def test_merge_tolerates_none_and_junk(self):
        ledger = SlowQueryLedger()
        ledger.merge(None)
        ledger.merge([None, "nope", query(0.2)])
        assert len(ledger) == 1

    def test_missing_seconds_treated_as_zero(self):
        ledger = SlowQueryLedger(capacity=1)
        ledger.observe({"file": "a.php"})
        ledger.observe(query(0.5))
        assert ledger.records()[0]["seconds"] == 0.5

    def test_empty_ledger_is_falsy(self):
        ledger = SlowQueryLedger()
        assert not ledger and ledger.records() == [] and list(ledger) == []

    def test_insertion_order_breaks_ties(self):
        ledger = SlowQueryLedger()
        ledger.observe(query(0.5, tag="first"))
        ledger.observe(query(0.5, tag="second"))
        assert [q["tag"] for q in ledger.records()] == ["first", "second"]
