"""The daemon's re-audit loop: dirty-set batching, cache-hit accounting
across cycles, per-cycle streams, crash retry, graceful drain.

Cycles are stepped directly through ``WatchLoop.run_cycle`` with a
``daemonutil.FakeClock`` driving both the watcher clock and every mtime
— fully deterministic, no real sleeps.
"""

import json
import multiprocessing
import os
import threading

import pytest

from daemonutil import FakeClock, TreeDriver
from test_engine import patch_execute

from repro.daemon import WatchLoop
from repro.engine import HotResultCache
from repro.obs import diff_runs, load_audit
from repro.websari.pipeline import WebSSARI

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash injection requires the fork start method",
)

VULN = "<?php echo $_GET['q'];\n"
SAFE = "<?php echo 'hello';\n"


def make_loop(tmp_path, *, jobs=1, cache=True, out=True, **kwargs):
    clock = FakeClock()
    driver = TreeDriver(tmp_path / "tree", clock)
    loop = WatchLoop(
        driver.root,
        WebSSARI(),
        cache=HotResultCache(tmp_path / "cache") if cache else None,
        jobs=jobs,
        out_dir=(tmp_path / "cycles") if out else None,
        clock=clock,
        debounce=0.0,
        **kwargs,
    )
    return clock, driver, loop


class TestDirtyBatching:
    def test_only_the_dirty_file_is_reaudited(self, tmp_path):
        """Acceptance: one of N files changes → exactly that file goes
        through the engine; the verdict counters prove nothing else ran."""
        clock, driver, loop = make_loop(tmp_path)
        for i in range(5):
            driver.write(f"f{i}.php", SAFE)
        first = loop.run_cycle()
        assert first.result.stats.total == 5
        assert first.result.stats.cache_misses == 5

        clock.advance(10)
        driver.write("f2.php", VULN)
        second = loop.run_cycle()
        assert second.dirty == [str(driver.path("f2.php"))]
        assert second.result.stats.total == 1
        assert second.result.stats.cache_misses == 1
        assert second.result.stats.cache_hits == 0
        assert second.result.stats.vulnerable == 1

    def test_idle_poll_runs_no_engine_cycle(self, tmp_path):
        _, _driver, loop = make_loop(tmp_path)
        assert loop.run_cycle() is None  # empty tree
        assert loop.cycles == 0 and loop.polls == 1

    def test_touch_without_change_is_a_cache_hit(self, tmp_path):
        clock, driver, loop = make_loop(tmp_path)
        driver.write("a.php", SAFE)
        loop.run_cycle()
        clock.advance(10)
        driver.touch("a.php")
        cycle = loop.run_cycle()
        # Dirty by mtime, but the content-addressed key is unchanged:
        # the cycle costs one cache lookup, zero verifications.
        assert cycle.dirty == [str(driver.path("a.php"))]
        assert cycle.result.stats.cache_hits == 1
        assert cycle.result.stats.cache_misses == 0

    def test_revert_is_served_from_cache(self, tmp_path):
        clock, driver, loop = make_loop(tmp_path)
        driver.write("a.php", SAFE)
        loop.run_cycle()
        clock.advance(10)
        driver.write("a.php", VULN)
        assert loop.run_cycle().result.stats.cache_misses == 1
        clock.advance(10)
        driver.write("a.php", SAFE)  # back to cycle-1 content
        cycle = loop.run_cycle()
        assert cycle.result.stats.cache_hits == 1
        assert cycle.result.stats.cache_misses == 0


class TestHotCacheAccounting:
    def test_hot_layer_answers_repeat_probes_without_disk(self, tmp_path):
        clock, driver, loop = make_loop(tmp_path)
        driver.write("a.php", SAFE)
        loop.run_cycle()
        cache = loop.cache
        assert cache.hot_hits == 0
        clock.advance(10)
        driver.touch("a.php")
        loop.run_cycle()
        assert cache.hot_hits == 1, "put() must prime the in-memory layer"
        assert cache.disk_hits == 0

    def test_fresh_process_warms_from_disk_then_memory(self, tmp_path):
        clock, driver, loop = make_loop(tmp_path)
        driver.write("a.php", SAFE)
        loop.run_cycle()
        # A second daemon sharing the cache directory (restart story).
        loop2 = WatchLoop(
            driver.root,
            WebSSARI(),
            cache=HotResultCache(tmp_path / "cache"),
            out_dir=tmp_path / "cycles2",
            clock=clock,
            debounce=0.0,
        )
        loop2.run_cycle()
        assert loop2.cache.disk_hits == 1 and loop2.cache.hot_hits == 0
        clock.advance(10)
        driver.touch("a.php")
        loop2.run_cycle()
        assert loop2.cache.hot_hits == 1


class TestCycleStreams:
    def test_stream_merges_unchanged_records(self, tmp_path):
        clock, driver, loop = make_loop(tmp_path)
        driver.write("a.php", SAFE)
        driver.write("b.php", SAFE)
        loop.run_cycle()
        clock.advance(10)
        driver.write("a.php", VULN)
        cycle = loop.run_cycle()
        lines = [json.loads(l) for l in cycle.stream_path.read_text().splitlines()]
        files = {l["filename"]: l for l in lines if l["type"] == "file"}
        # Both files present: the dirty one fresh, the other carried over.
        assert set(files) == {str(driver.path("a.php")), str(driver.path("b.php"))}
        assert files[str(driver.path("a.php"))]["safe"] is False
        trailer = lines[-1]
        assert trailer["type"] == "stats"
        assert trailer["cycle"] == 2 and trailer["watched_files"] == 2
        assert "interrupted" not in trailer

    def test_deleted_file_drops_out_of_the_stream(self, tmp_path):
        clock, driver, loop = make_loop(tmp_path)
        driver.write("a.php", SAFE)
        driver.write("b.php", SAFE)
        loop.run_cycle()
        clock.advance(10)
        driver.remove("b.php")
        driver.write("a.php", VULN)
        cycle = loop.run_cycle()
        files = [
            json.loads(l)["filename"]
            for l in cycle.stream_path.read_text().splitlines()
            if json.loads(l)["type"] == "file"
        ]
        assert files == [str(driver.path("a.php"))]

    def test_report_diff_between_any_two_cycles(self, tmp_path):
        clock, driver, loop = make_loop(tmp_path)
        driver.write("a.php", SAFE)
        driver.write("b.php", SAFE)
        first = loop.run_cycle()
        clock.advance(10)
        driver.write("a.php", VULN)
        second = loop.run_cycle()
        diff = diff_runs(load_audit(first.stream_path), load_audit(second.stream_path))
        assert diff.regressed == [str(driver.path("a.php"))]
        assert diff.has_regressions


class TestCrashRetry:
    @needs_fork
    def test_worker_crash_mid_cycle_is_retried_and_isolated(self, tmp_path, monkeypatch):
        crash_marker = tmp_path / "crashed-once"
        import repro.engine.worker as worker_module

        real = worker_module.execute_task

        def flaky(task, websari, want_report=False):
            if not crash_marker.exists():
                crash_marker.write_text("x")
                os._exit(13)
            return real(task, websari, want_report)

        clock, driver, loop = make_loop(tmp_path, jobs=2)
        driver.write("flaky.php", VULN)
        driver.write("ok.php", SAFE)
        patch_execute(monkeypatch, {str(driver.path("flaky.php")): flaky})
        cycle = loop.run_cycle()
        outcomes = {o.filename: o for o in cycle.result.outcomes}
        flaky_outcome = outcomes[str(driver.path("flaky.php"))]
        assert flaky_outcome.status == "ok" and flaky_outcome.attempts == 2
        assert outcomes[str(driver.path("ok.php"))].status == "ok"
        assert cycle.result.stats.retries == 1 and cycle.result.stats.crashes == 0
        assert not cycle.interrupted


class TestGracefulDrain:
    def test_stop_event_drains_cycle_with_interrupted_trailer(self, tmp_path):
        stop = threading.Event()
        clock, driver, loop = make_loop(tmp_path, stop_event=stop)
        driver.write("a.php", SAFE)
        driver.write("b.php", SAFE)
        stop.set()  # signal arrives before dispatch: everything skips
        cycle = loop.run_cycle()
        assert cycle.interrupted
        assert all(o.status == "skipped" for o in cycle.result.outcomes)
        trailer = json.loads(cycle.stream_path.read_text().splitlines()[-1])
        assert trailer["type"] == "stats" and trailer["interrupted"] is True
        assert trailer["other_statuses"] == {"skipped": 2}

    def test_skipped_files_keep_their_last_known_record(self, tmp_path):
        stop = threading.Event()
        clock, driver, loop = make_loop(tmp_path, stop_event=stop)
        driver.write("a.php", SAFE)
        first = loop.run_cycle()
        assert not first.interrupted
        clock.advance(10)
        driver.write("a.php", VULN)
        stop.set()
        cycle = loop.run_cycle()
        files = [
            json.loads(l)
            for l in cycle.stream_path.read_text().splitlines()
            if json.loads(l)["type"] == "file"
        ]
        # The drained cycle must not lose the cycle-1 verdict (nor invent
        # a fresh one for a file that never ran).
        assert len(files) == 1 and files[0]["safe"] is True

    def test_run_forever_exits_zero_once_stopped(self, tmp_path):
        stop = threading.Event()
        _, driver, loop = make_loop(tmp_path, stop_event=stop)
        driver.write("a.php", SAFE)
        stop.set()
        assert loop.run_forever() == 0

    def test_skipped_outcomes_never_enter_the_cache(self, tmp_path):
        stop = threading.Event()
        clock, driver, loop = make_loop(tmp_path, stop_event=stop)
        driver.write("a.php", SAFE)
        stop.set()
        loop.run_cycle()
        assert len(loop.cache) == 0
        # After a restart (fresh event), the file is a genuine miss: the
        # drain left no poisoned "skipped" entry behind.
        loop2 = WatchLoop(
            driver.root,
            WebSSARI(),
            cache=loop.cache,
            out_dir=tmp_path / "cycles2",
            clock=clock,
            debounce=0.0,
        )
        cycle = loop2.run_cycle()
        assert cycle.result.stats.cache_misses == 1
        assert cycle.result.outcomes[0].status == "ok"


class TestIncludeInvalidation:
    """ROADMAP staleness fix: a shared include changes → every tracked
    entry that transitively splices it re-audits, others stay cached."""

    COMMON = "<?php $c = 'shared';\n"
    INCLUDER = "<?php include 'common.php'; echo $c;\n"

    def make_graph_loop(self, tmp_path, **kwargs):
        from repro.php.parsecache import IncludeGraph

        graph = IncludeGraph(tmp_path / "graph.json")
        clock, driver, loop = make_loop(tmp_path, include_graph=graph, **kwargs)
        return clock, driver, loop, graph

    def test_editing_shared_include_reaudits_includers_only(self, tmp_path):
        clock, driver, loop, _graph = self.make_graph_loop(tmp_path)
        driver.write("common.php", self.COMMON)
        driver.write("a.php", self.INCLUDER)
        driver.write("b.php", SAFE)
        first = loop.run_cycle()
        assert first.result.stats.total == 3
        assert first.invalidated == []

        clock.advance(10)
        driver.write("common.php", "<?php $c = $_GET['q'];\n")
        cycle = loop.run_cycle()
        # a.php's bytes did not change, but its spliced program did.
        assert cycle.invalidated == [str(driver.path("a.php"))]
        assert set(cycle.dirty) == {
            str(driver.path("a.php")),
            str(driver.path("common.php")),
        }
        assert cycle.result.stats.total == 2
        assert cycle.result.stats.cache_misses == 2  # closure keys moved
        outcomes = {o.filename: o for o in cycle.result.outcomes}
        assert outcomes[str(driver.path("a.php"))].safe is False
        # b.php never ran, but its record is carried into the stream.
        lines = [json.loads(l) for l in cycle.stream_path.read_text().splitlines()]
        files = {l["filename"] for l in lines if l["type"] == "file"}
        assert str(driver.path("b.php")) in files
        trailer = lines[-1]
        assert trailer["includers_invalidated"] == 1

    def test_invalidation_is_transitive(self, tmp_path):
        clock, driver, loop, _graph = self.make_graph_loop(tmp_path)
        driver.write("deep.php", "<?php $d = 1;\n")
        driver.write("mid.php", "<?php include 'deep.php'; $m = $d;\n")
        driver.write("page.php", "<?php include 'mid.php'; echo 'p';\n")
        loop.run_cycle()
        clock.advance(10)
        driver.write("deep.php", "<?php $d = 2;\n")
        cycle = loop.run_cycle()
        assert cycle.invalidated == [
            str(driver.path("mid.php")),
            str(driver.path("page.php")),
        ]
        assert cycle.result.stats.total == 3

    def test_deleting_shared_include_reaudits_includers(self, tmp_path):
        clock, driver, loop, _graph = self.make_graph_loop(tmp_path)
        driver.write("common.php", self.COMMON)
        driver.write("a.php", self.INCLUDER)
        loop.run_cycle()
        clock.advance(10)
        driver.remove("common.php")
        cycle = loop.run_cycle()
        assert cycle.invalidated == [str(driver.path("a.php"))]
        assert cycle.result.stats.total == 1
        outcome = cycle.result.outcomes[0]
        # The include is now missing: still verifies, with a warning.
        assert outcome.status == "ok"
        assert any("common.php" in w for w in outcome.warnings)

    def test_graph_persists_across_restarts(self, tmp_path):
        from repro.php.parsecache import IncludeGraph

        _clock, driver, loop, graph = self.make_graph_loop(tmp_path)
        driver.write("common.php", self.COMMON)
        driver.write("a.php", self.INCLUDER)
        loop.run_cycle()
        assert graph.includes_of("a.php") == {"common.php"}
        reloaded = IncludeGraph(tmp_path / "graph.json")
        assert reloaded.includes_of("a.php") == {"common.php"}
        assert reloaded.includers_of(["common.php"]) == {"a.php"}

    def test_without_graph_only_byte_dirty_files_run(self, tmp_path):
        # The pre-graph behaviour (and the ROADMAP staleness bug this PR
        # fixes): no graph attached → includers of a dirty include stay
        # stale rather than re-auditing.
        clock, driver, loop = make_loop(tmp_path)
        driver.write("common.php", self.COMMON)
        driver.write("a.php", self.INCLUDER)
        loop.run_cycle()
        clock.advance(10)
        driver.write("common.php", "<?php $c = $_GET['q'];\n")
        cycle = loop.run_cycle()
        assert cycle.invalidated == []
        assert cycle.dirty == [str(driver.path("common.php"))]

    def test_include_free_files_share_the_audit_cache(self, tmp_path):
        # A plain `repro audit` warms the cache with standalone keys;
        # the daemon's first cycle must hit them for include-free files
        # (only include-splicing entries use closure-scoped keys).
        from repro.engine import AuditEngine, AuditTask, EngineConfig

        clock, driver, loop, _graph = self.make_graph_loop(tmp_path)
        driver.write("a.php", SAFE)
        engine = AuditEngine(
            websari=WebSSARI(),
            config=EngineConfig(jobs=1, cache=loop.cache),
        )
        source = driver.path("a.php").read_text()
        prewarm = engine.run(
            [AuditTask(index=0, filename=str(driver.path("a.php")), source=source)]
        )
        assert prewarm.stats.cache_misses == 1
        cycle = loop.run_cycle()
        assert cycle.result.stats.cache_hits == 1
        assert cycle.result.stats.cache_misses == 0

    def test_health_and_metrics_expose_invalidations(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        clock, driver, loop, _graph = self.make_graph_loop(tmp_path, metrics=registry)
        driver.write("common.php", self.COMMON)
        driver.write("a.php", self.INCLUDER)
        loop.run_cycle()
        clock.advance(10)
        driver.write("common.php", "<?php $c = 'v2';\n")
        loop.run_cycle()
        assert loop.health()["includers_invalidated"] == 1
        assert "repro_watch_includers_invalidated_total 1" in registry.render()


class TestMetricsWiring:
    def test_watch_metrics_exposed(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        clock, driver, loop = make_loop(tmp_path, metrics=registry)
        driver.write("a.php", VULN)
        loop.run_cycle()
        loop.run_cycle()  # idle
        text = registry.render()
        assert 'repro_watch_polls_total{outcome="dirty"} 1' in text
        assert 'repro_watch_polls_total{outcome="idle"} 1' in text
        assert "repro_watch_cycles_total 1" in text
        assert "repro_watch_dirty_files 1" in text
        assert 'repro_files_total{status="ok"} 1' in text
