"""Fleet-wide metrics plumbing: registry snapshots, delta merging with
counter-reset tolerance, node-labelled + fleet-summed series, quantile
estimation, and exposition-format label hygiene."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    FleetMetrics,
    MetricsRegistry,
    estimate_quantile,
)


def snapshot_roundtrip(registry):
    """The wire format workers actually ship: JSON-encoded."""
    return json.loads(json.dumps(registry.snapshot()))


class TestLabelHygiene:
    def test_reserved_label_names_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="reserved"):
            counter.inc(le="0.5")
        with pytest.raises(ValueError, match="reserved"):
            counter.inc(quantile="0.9")

    def test_double_underscore_prefix_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="reserved"):
            counter.value(__name__="c")

    def test_invalid_chars_normalized(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(**{"sat-cache": "hit"})
        assert 'sat_cache="hit"' in registry.render()
        assert counter.value(sat_cache="hit") == 1

    def test_leading_digit_normalized(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(**{"9th": "x"})
        assert '_9th="x"' in registry.render()

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.histogram("0leading")

    def test_label_value_newline_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(path="a\nb")
        assert 'path="a\\nb"' in registry.render()

    def test_content_type_is_canonical(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


class TestQuantiles:
    def test_empty_series_is_none(self):
        assert estimate_quantile((0.1, 1.0), [0, 0], 0, 0.5) is None

    def test_interpolates_within_bucket(self):
        # 10 observations, all in the (0.1, 1.0] bucket: p50 lands midway.
        value = estimate_quantile((0.1, 1.0, 10.0), [0, 10, 10], 10, 0.5)
        assert value == pytest.approx(0.1 + (1.0 - 0.1) * 0.5)

    def test_overflow_clamps_to_highest_finite_bound(self):
        # Everything in the +Inf overflow bucket.
        assert estimate_quantile((0.1, 1.0), [0, 0], 5, 0.99) == 1.0

    def test_histogram_quantile_method(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        p50 = hist.quantile(0.5)
        assert p50 is not None and 1.0 <= p50 <= 2.0
        assert hist.quantile(0.5, missing="labels") is None

    def test_render_emits_quantile_gauges(self):
        registry = MetricsRegistry()
        registry.histogram("h", "help").observe(0.25)
        text = registry.render(quantiles=(0.5, 0.99))
        assert "# TYPE h_quantile gauge" in text
        assert 'h_quantile{quantile="0.5"}' in text
        assert 'h_quantile{quantile="0.99"}' in text
        # Plain render stays quantile-free.
        assert "quantile" not in registry.render()


class TestSnapshotMerge:
    def test_json_roundtrip_union_preserves_render(self):
        source = MetricsRegistry()
        source.counter("files_total", "files").inc(status="ok")
        source.counter("files_total").inc(2, status="crash")
        source.gauge("queue_depth").set(7)
        source.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)

        target = MetricsRegistry()
        target.merge_snapshot(snapshot_roundtrip(source))
        assert target.render() == source.render()

    def test_counters_and_histograms_accumulate(self):
        source = MetricsRegistry()
        source.counter("c").inc(5)
        source.histogram("h", buckets=(1.0,)).observe(0.5)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        target.merge_snapshot(source.snapshot())
        assert target.counter("c").value() == 10
        assert target.histogram("h", buckets=(1.0,)).count() == 2

    def test_gauge_merge_is_last_write(self):
        source = MetricsRegistry()
        source.gauge("g").set(3)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        target.merge_snapshot(source.snapshot())
        assert target.gauge("g").value() == 3

    def test_extra_labels_stamped(self):
        source = MetricsRegistry()
        source.counter("c").inc(status="ok")
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot(), labels={"node": "w1"})
        assert 'c{node="w1",status="ok"} 1' in target.render()

    def test_kinds_filter(self):
        source = MetricsRegistry()
        source.counter("c").inc()
        source.gauge("g").set(9)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot(), kinds=("counter",))
        text = target.render()
        assert "c 1" in text and "g" not in text.replace("# TYPE c counter", "")

    def test_bucket_boundary_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(0.5, 5.0)).observe(0.1)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0, 10.0)).observe(0.1)
        with pytest.raises(ValueError, match="incompatible bucket boundaries"):
            target.merge_snapshot(source.snapshot())


class TestFleetMetrics:
    def make_node(self, count):
        registry = MetricsRegistry()
        registry.counter("repro_files_total", "files").inc(count)
        registry.histogram("repro_file_seconds").observe(0.01 * count)
        return registry

    def test_per_node_and_fleet_summed_series(self):
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        fleet.ingest("a", self.make_node(2).snapshot())
        fleet.ingest("b", self.make_node(3).snapshot())
        text = fleet_registry.render()
        assert 'repro_files_total{node="a"} 2' in text
        assert 'repro_files_total{node="b"} 3' in text
        assert "repro_files_total 5" in text
        assert 'repro_file_seconds_count{node="a"} 1' in text
        assert "repro_file_seconds_count 2" in text

    def test_cumulative_snapshots_delta_merged(self):
        """Shipping the same cumulative snapshot twice must not double-count."""
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        node = self.make_node(4)
        fleet.ingest("a", node.snapshot())
        fleet.ingest("a", node.snapshot())  # no progress since last ship
        assert fleet_registry.counter("repro_files_total").value(node="a") == 4
        node.counter("repro_files_total").inc(1)
        fleet.ingest("a", node.snapshot())
        assert fleet_registry.counter("repro_files_total").value(node="a") == 5
        assert fleet_registry.counter("repro_files_total").value() == 5

    def test_counter_reset_never_goes_negative(self):
        """A node restart resets its cumulative counters; the fleet view
        must absorb the reset without any series moving backwards."""
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        fleet.ingest("a", self.make_node(10).snapshot())
        # Node restarts: fresh registry, smaller cumulative value.
        fleet.ingest("a", self.make_node(2).snapshot())
        assert fleet_registry.counter("repro_files_total").value(node="a") == 12
        assert fleet_registry.counter("repro_files_total").value() == 12

    def test_histogram_reset_replays_full_snapshot(self):
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        big = MetricsRegistry()
        for _ in range(5):
            big.histogram("h").observe(0.01)
        fleet.ingest("a", big.snapshot())
        small = MetricsRegistry()
        small.histogram("h").observe(0.01)
        fleet.ingest("a", small.snapshot())
        assert fleet_registry.histogram("h").count(node="a") == 6

    def test_changed_bucket_boundaries_rejected(self):
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        first = MetricsRegistry()
        first.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        fleet.ingest("a", first.snapshot())
        second = MetricsRegistry()
        second.histogram("h", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ValueError, match="bucket boundaries"):
            fleet.ingest("a", second.snapshot())
        # The failed ingest must not have polluted the fleet series.
        assert fleet_registry.histogram("h", buckets=(0.1, 1.0)).count(node="a") == 1

    def test_gauges_labelled_but_not_fleet_summed(self):
        """A point-in-time gauge per node is meaningful; a last-write-wins
        unlabelled 'sum' of them would be garbage."""
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        node = MetricsRegistry()
        node.gauge("depth").set(4)
        fleet.ingest("a", node.snapshot())
        text = fleet_registry.render()
        assert 'depth{node="a"} 4' in text
        assert "\ndepth 4" not in text

    def test_forget_drops_history_not_series(self):
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        node = self.make_node(3)
        fleet.ingest("a", node.snapshot())
        fleet.forget("a")
        # Re-ingesting the same cumulative snapshot now replays it in full.
        fleet.ingest("a", node.snapshot())
        assert fleet_registry.counter("repro_files_total").value(node="a") == 6

    def test_wire_format_survives_json(self):
        fleet_registry = MetricsRegistry()
        fleet = FleetMetrics(fleet_registry)
        fleet.ingest("a", snapshot_roundtrip(self.make_node(2)))
        assert fleet_registry.counter("repro_files_total").value(node="a") == 2

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS
