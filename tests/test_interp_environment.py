"""Tests for the execution environment: request, mock database."""

from repro.interp.environment import ExecutionEnvironment, HttpRequest, MockDatabase
from repro.interp.values import PhpArray


class TestHttpRequest:
    def test_superglobals_populated(self):
        request = HttpRequest(
            get={"q": "1"},
            post={"p": "2"},
            cookies={"c": "3"},
            referer="http://r/",
            user_agent="UA",
        )
        sg = request.superglobals()
        assert sg["_GET"].get("q") == "1"
        assert sg["_POST"].get("p") == "2"
        assert sg["_COOKIE"].get("c") == "3"
        assert sg["HTTP_REFERER"] == "http://r/"
        assert sg["_SERVER"].get("HTTP_USER_AGENT") == "UA"

    def test_request_merges_all(self):
        request = HttpRequest(get={"a": "g"}, post={"b": "p"}, cookies={"c": "k"})
        merged = request.superglobals()["_REQUEST"]
        assert merged.get("a") == "g"
        assert merged.get("b") == "p"
        assert merged.get("c") == "k"

    def test_legacy_register_globals_arrays(self):
        sg = HttpRequest(get={"x": "1"}).superglobals()
        assert sg["HTTP_GET_VARS"].get("x") == "1"

    def test_empty_request(self):
        sg = HttpRequest().superglobals()
        assert isinstance(sg["_GET"], PhpArray)
        assert len(sg["_GET"]) == 0


class TestMockDatabaseInsertSelect:
    def test_insert_with_columns(self):
        db = MockDatabase()
        db.execute("INSERT INTO t (a, b) VALUES ('x', 2)")
        assert db.tables["t"] == [{"a": "x", "b": 2}]

    def test_insert_without_columns(self):
        db = MockDatabase()
        db.execute("INSERT INTO t VALUES ('x', 'y')")
        assert db.tables["t"] == [{"col0": "x", "col1": "y"}]

    def test_select_star(self):
        db = MockDatabase()
        db.create_table("t", [{"a": 1}, {"a": 2}])
        result = db.execute("SELECT * FROM t")
        assert [row["a"] for row in result.rows] == [1, 2]

    def test_select_columns(self):
        db = MockDatabase()
        db.create_table("t", [{"a": 1, "b": 2}])
        result = db.execute("SELECT b FROM t")
        assert result.rows == [{"b": 2}]

    def test_select_qualified_column(self):
        db = MockDatabase()
        db.create_table("t", [{"a": 1}])
        result = db.execute("SELECT t.a FROM t")
        assert result.rows == [{"a": 1}]

    def test_select_where(self):
        db = MockDatabase()
        db.create_table("t", [{"id": 1, "v": "x"}, {"id": 2, "v": "y"}])
        result = db.execute("SELECT v FROM t WHERE id=2")
        assert result.rows == [{"v": "y"}]

    def test_where_string_comparison_is_loose(self):
        db = MockDatabase()
        db.create_table("t", [{"id": 1}])
        result = db.execute("SELECT * FROM t WHERE id='1'")
        assert len(result.rows) == 1

    def test_fetch_cursor(self):
        db = MockDatabase()
        db.create_table("t", [{"v": 1}, {"v": 2}])
        result = db.execute("SELECT * FROM t")
        assert result.fetch() == {"v": 1}
        assert result.fetch() == {"v": 2}
        assert result.fetch() is None


class TestMockDatabaseMutations:
    def test_update_with_where(self):
        db = MockDatabase()
        db.create_table("t", [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}])
        db.execute("UPDATE t SET v='z' WHERE id=1")
        assert db.tables["t"][0]["v"] == "z"
        assert db.tables["t"][1]["v"] == "b"

    def test_update_all(self):
        db = MockDatabase()
        db.create_table("t", [{"v": 1}, {"v": 2}])
        db.execute("UPDATE t SET v=9")
        assert all(row["v"] == 9 for row in db.tables["t"])

    def test_delete_with_where(self):
        db = MockDatabase()
        db.create_table("t", [{"id": 1}, {"id": 2}])
        db.execute("DELETE FROM t WHERE id=1")
        assert db.tables["t"] == [{"id": 2}]

    def test_drop_table(self):
        db = MockDatabase()
        db.create_table("users", [{"u": 1}])
        db.execute("DROP TABLE users")
        assert "users" not in db.tables
        assert db.dropped_tables == ["users"]

    def test_unknown_statement_tolerated(self):
        db = MockDatabase()
        assert db.execute("OPTIMIZE TABLE t") is True


class TestInjectionSemantics:
    def test_semicolon_inside_quotes_is_data(self):
        db = MockDatabase()
        db.create_table("users", [{"u": 1}])
        db.execute("INSERT INTO log VALUES ('a; DROP TABLE users')")
        assert "users" in db.tables
        assert db.tables["log"][0]["col0"] == "a; DROP TABLE users"

    def test_quote_breakout_executes_second_statement(self):
        db = MockDatabase()
        db.create_table("users", [{"u": 1}])
        db.execute("INSERT INTO log VALUES (''); DROP TABLE users")
        assert "users" not in db.tables

    def test_escaped_quote_stays_inside(self):
        db = MockDatabase()
        db.create_table("users", [{"u": 1}])
        db.execute(r"INSERT INTO log VALUES ('a\'; DROP TABLE users')")
        assert "users" in db.tables

    def test_query_log_is_verbatim(self):
        db = MockDatabase()
        db.execute("SELECT 1; SELECT 2")
        assert db.query_log == ["SELECT 1; SELECT 2"]

    def test_value_list_with_commas_in_strings(self):
        db = MockDatabase()
        db.execute("INSERT INTO t VALUES ('a,b', 'c')")
        assert db.tables["t"][0] == {"col0": "a,b", "col1": "c"}


class TestExecutionEnvironment:
    def test_output_accumulates(self):
        env = ExecutionEnvironment()
        env.write("a")
        env.write("b")
        assert env.response_body() == "ab"

    def test_default_factories_independent(self):
        first = ExecutionEnvironment()
        second = ExecutionEnvironment()
        first.write("x")
        first.sink_log.append(("echo", ("x",)))
        assert second.response_body() == ""
        assert second.sink_log == []
