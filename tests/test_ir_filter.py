"""Tests for the F(p) filter (paper §3.2)."""

import pytest

from repro.ir import (
    Assign,
    Const,
    If,
    InputCall,
    Join,
    LevelConst,
    Seq,
    SinkCall,
    Stop,
    VarRef,
    While,
    count_commands,
    filter_source,
    php_name_of,
)
from repro.lattice.types import TAINTED


def commands_of(source, **kwargs):
    return list(filter_source("<?php " + source, **kwargs).commands)


def flatten(commands):
    """All atomic commands in order, descending into branches/loops."""
    out = []
    for command in commands:
        if isinstance(command, Seq):
            out.extend(flatten(command.commands))
        elif isinstance(command, If):
            out.append(command)
            out.extend(flatten(command.then.commands))
            out.extend(flatten(command.orelse.commands))
        elif isinstance(command, While):
            out.append(command)
            out.extend(flatten(command.body.commands))
        else:
            out.append(command)
    return out


def sinks(commands):
    return [c for c in flatten(commands) if isinstance(c, SinkCall)]


def assigns(commands):
    return [c for c in flatten(commands) if isinstance(c, Assign)]


class TestAssignments:
    def test_constant_assignment(self):
        cmds = commands_of("$x = 1;")
        assert cmds == [Assign("x", Const(), cmds[0].span)]

    def test_variable_copy(self):
        (cmd,) = commands_of("$y = $x;")
        assert cmd.target == "y"
        assert cmd.value == VarRef("x")

    def test_superglobal_read_is_tainted(self):
        (cmd,) = commands_of("$x = $_GET['q'];")
        assert cmd.value == LevelConst(TAINTED)

    def test_referer_is_tainted(self):
        # Paper §2.2: developers forget that HTTP_REFERER is untrusted.
        (cmd,) = commands_of("$sql = $HTTP_REFERER;")
        assert cmd.value == LevelConst(TAINTED)

    def test_concatenation_joins(self):
        (cmd,) = commands_of("$q = $a . $b;")
        assert cmd.value == Join((VarRef("a"), VarRef("b")))

    def test_concatenation_with_constant_drops_const(self):
        (cmd,) = commands_of("$q = 'SELECT ' . $x;")
        assert cmd.value == VarRef("x")

    def test_interpolation_joins(self):
        (cmd,) = commands_of('$q = "a $x b $y";')
        assert cmd.value == Join((VarRef("x"), VarRef("y")))

    def test_compound_concat_joins_old_value(self):
        (cmd,) = commands_of("$q .= $x;")
        assert cmd.value == Join((VarRef("q"), VarRef("x")))

    def test_chained_assignment(self):
        cmds = commands_of("$a = $b = $x;")
        assert [c.target for c in cmds] == ["b", "a"]
        assert all(c.value == VarRef("x") for c in cmds)

    def test_array_element_read_uses_base(self):
        (cmd,) = commands_of("$x = $row['name'];")
        assert cmd.value == VarRef("row")

    def test_array_element_write_is_weak_update(self):
        (cmd,) = commands_of("$a['k'] = $x;")
        assert cmd.target == "a"
        assert cmd.value == Join((VarRef("a"), VarRef("x")))

    def test_property_is_field_sensitive(self):
        cmds = commands_of("$o->p = $x; $y = $o->p;")
        assert cmds[0].target == "o->p"
        assert cmds[1].value == VarRef("o->p")

    def test_unset_resets_to_bottom(self):
        cmds = commands_of("unset($x);")
        assert cmds == [Assign("x", Const(), cmds[0].span)]

    def test_comparison_result_is_constant(self):
        (cmd,) = commands_of("$b = $x == $y;")
        assert cmd.value == Const()

    def test_boolean_not_is_constant(self):
        (cmd,) = commands_of("$b = !$x;")
        assert cmd.value == Const()

    def test_numeric_cast_sanitizes(self):
        (cmd,) = commands_of("$n = (int)$x;")
        assert cmd.value == Const()

    def test_string_cast_preserves(self):
        (cmd,) = commands_of("$s = (string)$x;")
        assert cmd.value == VarRef("x")

    def test_ternary_joins_branches(self):
        (cmd,) = commands_of("$r = $c ? $a : $b;")
        assert cmd.value == Join((VarRef("a"), VarRef("b")))

    def test_list_assign(self):
        cmds = commands_of("list($a, $b) = $parts;")
        assert {c.target for c in cmds} == {"a", "b"}
        assert all(c.value == VarRef("parts") for c in cmds)


class TestSinks:
    def test_echo_variable(self):
        (sink,) = sinks(commands_of("echo $x;"))
        assert sink.function == "echo"
        assert sink.arguments == ("x",)
        assert sink.required == TAINTED

    def test_echo_constant_is_dropped(self):
        assert sinks(commands_of("echo 'hello';")) == []

    def test_echo_compound_arg_hoisted_to_temp(self):
        cmds = commands_of('echo "hi $a$b";')
        (sink,) = sinks(cmds)
        (temp_assign,) = assigns(cmds)
        assert sink.arguments == (temp_assign.target,)
        assert temp_assign.value == Join((VarRef("a"), VarRef("b")))
        assert php_name_of(temp_assign.target) is None

    def test_mysql_query_sink(self):
        (sink,) = sinks(commands_of("mysql_query($q);"))
        assert sink.function == "mysql_query"
        assert sink.arguments == ("q",)

    def test_suppressed_sink_still_checked(self):
        # Figure 1 uses @mysql_query(...).
        (sink,) = sinks(commands_of("@mysql_query($q);"))
        assert sink.function == "mysql_query"

    def test_print_expression_sink(self):
        (sink,) = sinks(commands_of("print $x;"))
        assert sink.function == "print"

    def test_exit_with_argument_sinks_then_stops(self):
        cmds = commands_of("exit($msg);")
        assert isinstance(cmds[0], SinkCall)
        assert isinstance(cmds[1], Stop)

    def test_method_sink(self):
        (sink,) = sinks(commands_of("$db->query($sql);"))
        assert sink.function == "->query"
        assert sink.arguments == ("sql",)

    def test_echo_multiple_args_multiple_sinks(self):
        result = sinks(commands_of("echo $a, $b;"))
        assert len(result) == 2


class TestSourcesAndSanitizers:
    def test_db_fetch_is_source(self):
        (cmd,) = commands_of("$row = mysql_fetch_array($r);")
        assert cmd.value == LevelConst(TAINTED)

    def test_sanitizer_on_variable_updates_it_in_place(self):
        # Paper Figure 6: uf_i(tmp) gives the postcondition t_tmp = U.
        cmds = commands_of("$safe = htmlspecialchars($x);")
        assert cmds[0].target == "x"
        assert cmds[0].value == LevelConst("untainted")
        assert cmds[1].target == "safe"
        assert cmds[1].value == VarRef("x")

    def test_sanitizer_on_compound_arg_returns_level(self):
        (cmd,) = commands_of("$safe = htmlspecialchars($a . $b);")
        assert cmd.value == LevelConst("untainted")

    def test_intval_sanitizes(self):
        (cmd,) = commands_of("$n = intval($_GET['id']);")
        assert cmd.value == LevelConst("untainted")

    def test_propagator_joins_args(self):
        (cmd,) = commands_of("$part = substr($x, 0, 5);")
        assert cmd.value == VarRef("x")

    def test_unknown_function_propagates(self):
        (cmd,) = commands_of("$r = totally_unknown_fn($a, $b);")
        assert cmd.value == Join((VarRef("a"), VarRef("b")))

    def test_extract_marks_environment(self):
        cmds = commands_of("extract($row); echo $never_assigned;")
        inputs = [c for c in flatten(cmds) if isinstance(c, InputCall)]
        assert len(inputs) == 1
        # The echo of a never-assigned variable becomes a tainted temp sink.
        (sink,) = sinks(cmds)
        temp = [a for a in assigns(cmds) if a.target == sink.arguments[0]]
        assert temp and temp[0].value == LevelConst(TAINTED)

    def test_extract_does_not_taint_assigned_vars(self):
        cmds = commands_of("extract($row); $x = 'safe'; echo $x;")
        (sink,) = sinks(cmds)
        assert sink.arguments == ("x",)


class TestControlFlow:
    def test_if_else_branches(self):
        cmds = commands_of("if ($c) { $x = $_GET['a']; } else { $x = 1; }")
        branch = next(c for c in cmds if isinstance(c, If))
        assert len(branch.then) == 1
        assert len(branch.orelse) == 1

    def test_elseif_nests_in_orelse(self):
        cmds = commands_of("if ($a) { $x = 1; } elseif ($b) { $x = 2; } else { $x = 3; }")
        outer = next(c for c in cmds if isinstance(c, If))
        inner = [c for c in outer.orelse if isinstance(c, If)]
        assert len(inner) == 1
        assert len(inner[0].orelse) == 1

    def test_condition_side_effects_emitted(self):
        cmds = commands_of("if ($x = $_POST['a']) { echo $x; }")
        top_assigns = [c for c in cmds if isinstance(c, Assign)]
        assert top_assigns and top_assigns[0].value == LevelConst(TAINTED)

    def test_while_becomes_loop_with_condition_replay(self):
        cmds = commands_of("while ($row = mysql_fetch_array($r)) { echo $row; }")
        pre = [c for c in cmds if isinstance(c, Assign)]
        loop = next(c for c in cmds if isinstance(c, While))
        assert pre[0].target == "row"
        replay = [c for c in loop.body if isinstance(c, Assign)]
        assert any(c.target == "row" for c in replay)

    def test_for_loop(self):
        cmds = commands_of("for ($i = 0; $i < 3; $i++) { $s = $s . $x; }")
        loop = next(c for c in cmds if isinstance(c, While))
        body_assigns = [c for c in loop.body if isinstance(c, Assign)]
        assert any(c.target == "s" for c in body_assigns)

    def test_foreach_assigns_value_var_in_body(self):
        cmds = commands_of("foreach ($rows as $row) { echo $row; }")
        loop = next(c for c in cmds if isinstance(c, While))
        first = loop.body.commands[0]
        assert isinstance(first, Assign) and first.target == "row"
        assert first.value == VarRef("rows")

    def test_foreach_key_var(self):
        cmds = commands_of("foreach ($rows as $k => $v) {}")
        loop = next(c for c in cmds if isinstance(c, While))
        targets = [c.target for c in loop.body if isinstance(c, Assign)]
        assert targets == ["k", "v"]

    def test_switch_cases_become_optional_branches(self):
        cmds = commands_of(
            "switch ($x) { case 1: $a = $_GET['a']; break; case 2: $a = 1; break; }"
        )
        branches = [c for c in cmds if isinstance(c, If)]
        assert len(branches) == 2
        assert all(len(b.orelse) == 0 for b in branches)

    def test_top_level_return_is_stop(self):
        cmds = commands_of("$x = 1; return; $y = 2;")
        assert any(isinstance(c, Stop) for c in cmds)

    def test_inline_html_discarded(self):
        result = filter_source("<b>static</b><?php $x = 1;")
        assert len(list(result.commands)) == 1

    def test_count_commands(self):
        cmds = filter_source("<?php if ($c) { $a = 1; } else { $b = 2; } $d = 3;").commands
        assert count_commands(cmds) == 4  # if + 2 assigns + 1 assign


class TestFunctionUnfolding:
    def test_simple_call_inlined(self):
        source = """
function greet($name) { echo $name; }
greet($_GET['who']);
"""
        cmds = commands_of(source)
        flat = flatten(cmds)
        param_assign = next(c for c in flat if isinstance(c, Assign))
        assert param_assign.target.endswith("::name")
        assert param_assign.value == LevelConst(TAINTED)
        (sink,) = sinks(cmds)
        assert sink.arguments[0].endswith("::name")

    def test_return_value_flows(self):
        source = """
function fetch_subject() { return $_POST['subject']; }
$s = fetch_subject();
echo $s;
"""
        cmds = commands_of(source)
        ret_assign = next(
            c for c in flatten(cmds) if isinstance(c, Assign) and c.target.endswith("%ret")
        )
        assert ret_assign.value == LevelConst(TAINTED)
        s_assign = next(c for c in flatten(cmds) if isinstance(c, Assign) and c.target == "s")
        assert isinstance(s_assign.value, VarRef)
        assert s_assign.value.name.endswith("%ret")

    def test_two_calls_get_distinct_scopes(self):
        source = """
function ident($v) { return $v; }
$a = ident($x);
$b = ident($y);
"""
        cmds = commands_of(source)
        params = [
            c.target for c in flatten(cmds) if isinstance(c, Assign) and c.target.endswith("::v")
        ]
        assert len(params) == 2
        assert params[0] != params[1]

    def test_global_statement_shares_variable(self):
        source = """
function show() { global $msg; echo $msg; }
$msg = $_GET['m'];
show();
"""
        (sink,) = sinks(commands_of(source))
        assert sink.arguments == ("msg",)

    def test_locals_do_not_leak(self):
        source = """
function f() { $local = $_GET['x']; }
f();
echo $local;
"""
        (sink,) = sinks(commands_of(source))
        # The echoed $local is the (uninitialized) global, not f's local.
        assert sink.arguments == ("local",)

    def test_by_reference_parameter_copies_back(self):
        source = """
function fill(&$out) { $out = $_GET['x']; }
fill($data);
echo $data;
"""
        cmds = commands_of(source)
        (sink,) = sinks(cmds)
        assert sink.arguments == ("data",)
        copy_back = [c for c in flatten(cmds) if isinstance(c, Assign) and c.target == "data"]
        assert copy_back

    def test_default_parameter_used(self):
        source = """
function f($a, $b = 'safe') { echo $b; }
f($x);
"""
        cmds = commands_of(source)
        b_assign = next(
            c for c in flatten(cmds) if isinstance(c, Assign) and c.target.endswith("::b")
        )
        assert b_assign.value == Const()

    def test_recursion_depth_limited(self):
        source = """
function rec($n) { return rec($n); }
$r = rec($x);
"""
        result = filter_source("<?php " + source)
        assert any("recursion" in w for w in result.warnings)

    def test_nested_user_calls(self):
        source = """
function inner($v) { return $v; }
function outer($v) { return inner($v); }
echo outer($_GET['q']);
"""
        (sink,) = sinks(commands_of(source))
        assert sink.arguments[0].endswith("%ret")

    def test_case_insensitive_function_names(self):
        source = """
function DoSQL($q) { mysql_query($q); }
dosql($x);
"""
        user_sinks = sinks(commands_of(source))
        assert len(user_sinks) == 1
        assert user_sinks[0].function == "mysql_query"


class TestPaperFigures:
    def test_figure7_produces_three_sinks(self):
        source = """
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid"; DoSQL($i2q);
$fnq = "SELECT * FROM q WHERE sid='$sid'"; DoSQL($fnq);
"""
        cmds = commands_of(source)
        all_sinks = sinks(cmds)
        assert len(all_sinks) == 3
        assert {s.arguments[0] for s in all_sinks} == {"iq", "i2q", "fnq"}

    def test_figure6_guestbook_shape(self):
        source = """
if ($Nick) {
  $tmp = $_GET["nick"];
  echo(htmlspecialchars($tmp));
} else {
  $tmp = "You are the" . $GuestCount . " guest";
  echo($tmp);
}
"""
        cmds = commands_of(source)
        branch = next(c for c in cmds if isinstance(c, If))
        # Then-branch mirrors the paper's AI: t_tmp = T; t_tmp = U;
        # assert(t_tmp < T) — the sanitizer updates tmp in place, and the
        # sink assertion is still emitted (and will verify as safe).
        then_assigns = [c for c in branch.then if isinstance(c, Assign)]
        assert [a.value for a in then_assigns] == [
            LevelConst(TAINTED),
            LevelConst("untainted"),
        ]
        then_sinks = [c for c in branch.then if isinstance(c, SinkCall)]
        assert len(then_sinks) == 1
        assert then_sinks[0].arguments == ("tmp",)
        else_sinks = [c for c in branch.orelse if isinstance(c, SinkCall)]
        assert len(else_sinks) == 1
        assert else_sinks[0].arguments == ("tmp",)

    def test_figure1_figure2_pipeline(self):
        source = """
$query = "INSERT INTO t VALUES('{$u}', '{$s}')";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
  echo "$row[subject]";
}
"""
        cmds = commands_of(source)
        all_sinks = sinks(cmds)
        assert {s.function for s in all_sinks} == {"mysql_query", "echo"}


class TestWarnings:
    def test_unfiltered_result_has_no_warnings_for_clean_code(self):
        result = filter_source("<?php $x = 1; echo 'ok';")
        assert result.warnings == []
