"""Distributed service end-to-end: a two-node fleet must produce the
same verdicts as a single-box ``repro audit``, and a node SIGKILLed
mid-lease must not lose (or duplicate) any task."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.cli import main
from repro.service import Coordinator
from repro.service.worker_client import WorkerConfig, run_worker
from repro.websari.pipeline import WebSSARI

CORPUS = "examples/php"
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def normalize_file(record):
    """The fields that must agree between distributed and single-box
    runs: verdicts, not node attribution or wall-clock noise."""
    return {
        "filename": record["filename"],
        "status": record["status"],
        "safe": record.get("safe"),
    }


def wait_until(predicate, timeout=60.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestTwoNodeFleetMatchesSingleBox:
    def test_merged_stream_equals_single_box_audit(self, tmp_path):
        """serve + two work subprocesses over examples/php: the merged
        job stream must carry the same per-file verdicts and tallies as
        one local ``repro audit --jsonl`` run, and SIGTERM must drain
        every process to exit code 0."""
        jsonl_dir = tmp_path / "jobs"
        serve = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--bind", "127.0.0.1:0",  # ephemeral: parallel-safe
                "--submit", CORPUS,
                "--jsonl-dir", str(jsonl_dir),
                "--drain-grace", "15",
            ],
            cwd=REPO,
            env=worker_env(),
            stderr=subprocess.PIPE,
            text=True,
        )
        workers = []
        try:
            # The CLI prints the actual coordinator URL on stderr.
            line = serve.stderr.readline()
            assert "http://" in line, f"unexpected serve banner: {line!r}"
            url = line.strip().split()[-1]

            for node in ("nodeA", "nodeB"):
                workers.append(
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro", "work",
                            "--connect", url,
                            "--node", node,
                            "--jobs", "1",
                            "--poll", "0.2",
                            "--no-cache",
                        ],
                        cwd=REPO,
                        env=worker_env(),
                        stderr=subprocess.DEVNULL,
                    )
                )

            def job_done():
                try:
                    with urllib.request.urlopen(url + "/healthz", timeout=2) as reply:
                        return json.loads(reply.read())["jobs_complete"] == 1
                except OSError:
                    return False

            assert wait_until(job_done, timeout=120), "fleet never finished the job"
            with urllib.request.urlopen(
                url + "/api/jobs/job-0001/results", timeout=5
            ) as reply:
                merged = [json.loads(line) for line in reply.read().splitlines()]

            serve.send_signal(signal.SIGTERM)
            assert serve.wait(timeout=30) == 0
            for proc in workers:
                assert proc.wait(timeout=30) == 0, "worker did not drain cleanly"
        finally:
            for proc in [serve, *workers]:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

        # -- single-box reference run over the same corpus ----------------
        reference_path = tmp_path / "single.jsonl"
        assert main(
            ["audit", CORPUS, "--jsonl", str(reference_path), "--jobs", "1", "--no-cache"]
        ) in (0, 1)
        reference = [
            json.loads(line)
            for line in reference_path.read_text().splitlines()
        ]

        merged_files = sorted(
            (normalize_file(r) for r in merged if r["type"] == "file"),
            key=lambda r: r["filename"],
        )
        reference_files = sorted(
            (normalize_file(r) for r in reference if r["type"] == "file"),
            key=lambda r: r["filename"],
        )
        assert merged_files == reference_files

        merged_trailer = next(
            r for r in merged if r["type"] == "stats" and "node" not in r
        )
        reference_trailer = next(r for r in reference if r["type"] == "stats")
        for key in ("total", "completed", "safe", "vulnerable", "errors"):
            assert merged_trailer[key] == reference_trailer[key]

        # Every file record carries node attribution, and the persisted
        # job stream matches what the API served.
        assert all("node" in r for r in merged if r["type"] == "file")
        persisted = (jsonl_dir / "job-0001.jsonl").read_text()
        assert [json.loads(line) for line in persisted.splitlines()] == merged


HANG_AFTER_LEASE = """
import json, sys, time, urllib.request

url = sys.argv[1]

def post(path, payload):
    req = urllib.request.Request(
        url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())

worker = post("/api/workers/register", {"node": "doomed"})
lease = post("/api/lease", {"worker_id": worker["worker_id"], "max": 999})
print(len(lease["tasks"]), flush=True)
time.sleep(600)  # hold the leases until SIGKILL
"""


class TestWorkerLossRequeues:
    def test_sigkilled_worker_leases_complete_exactly_once_elsewhere(self, tmp_path):
        """A node that leases the whole corpus and is SIGKILLed mid-task
        must not strand work: its leases expire, the tasks re-queue, and
        a live node completes each exactly once."""
        coordinator = Coordinator(lease_timeout=1.0)
        coordinator.start()
        stop = threading.Event()
        exit_codes = []
        try:
            job = coordinator.submit_files(
                {
                    "vuln.php": "<?php echo $_GET['q'];\n",
                    "safe.php": "<?php echo 'hello';\n",
                }
            )

            doomed = subprocess.Popen(
                [sys.executable, "-c", HANG_AFTER_LEASE, coordinator.url],
                stdout=subprocess.PIPE,
                text=True,
            )
            try:
                assert doomed.stdout.readline().strip() == "2"
                assert coordinator.queue.leased_count == 2
            finally:
                doomed.kill()
                doomed.wait()

            survivor = threading.Thread(
                target=lambda: exit_codes.append(
                    run_worker(
                        coordinator.url,
                        WebSSARI(),
                        WorkerConfig(node="survivor", jobs=1, poll=0.1, quiet=True),
                        stop_event=stop,
                    )
                )
            )
            survivor.start()

            assert wait_until(lambda: job.complete, timeout=60), (
                "survivor never completed the re-queued tasks"
            )
            coordinator.drain()
            survivor.join(timeout=30)
            assert not survivor.is_alive() and exit_codes == [0]

            records = coordinator.job_records(job)
            files = [r for r in records if r["type"] == "file"]
            assert sorted(r["filename"] for r in files) == ["safe.php", "vuln.php"]
            assert all(r["node"] == "survivor" for r in files)
            by_name = {r["filename"]: r for r in files}
            assert by_name["vuln.php"]["safe"] is False
            assert by_name["safe.php"]["safe"] is True
            # Both tasks travelled the expiry path, and only once each
            # made it into the stream.
            assert coordinator.queue.requeues >= 2
            assert coordinator.queue.done_count == 2
        finally:
            stop.set()
            coordinator.close()
