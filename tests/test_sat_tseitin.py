"""Tests for the boolean formula language and the Tseitin transformation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    FALSE,
    TRUE,
    CDCLSolver,
    Iff,
    Var,
    VariablePool,
    add_expr_to_cnf,
    conj,
    disj,
    evaluate,
    ite,
    to_cnf,
)
from repro.sat.cnf import CNF
from repro.sat.tseitin import free_variables


def satisfying_env(expr, variables):
    """Brute-force a satisfying named assignment, or None."""
    names = sorted(variables)
    for values in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, values))
        if evaluate(expr, env):
            return env
    return None


def tseitin_satisfiable(expr):
    cnf, pool = to_cnf(expr)
    result = CDCLSolver(cnf).solve()
    return result, pool


class TestOperators:
    def test_and_or_not(self):
        a, b = Var("a"), Var("b")
        assert evaluate(a & b, {"a": True, "b": True})
        assert not evaluate(a & b, {"a": True, "b": False})
        assert evaluate(a | b, {"a": False, "b": True})
        assert evaluate(~a, {"a": False})

    def test_implication(self):
        a, b = Var("a"), Var("b")
        assert evaluate(a >> b, {"a": False, "b": False})
        assert not evaluate(a >> b, {"a": True, "b": False})

    def test_iff(self):
        a, b = Var("a"), Var("b")
        assert evaluate(Iff(a, b), {"a": True, "b": True})
        assert not evaluate(Iff(a, b), {"a": True, "b": False})

    def test_ite(self):
        c, t, e = Var("c"), Var("t"), Var("e")
        expr = ite(c, t, e)
        assert evaluate(expr, {"c": True, "t": True, "e": False})
        assert not evaluate(expr, {"c": False, "t": True, "e": False})

    def test_constants(self):
        assert evaluate(TRUE, {})
        assert not evaluate(FALSE, {})

    def test_conj_simplifications(self):
        a = Var("a")
        assert conj([]) is TRUE
        assert conj([a]) is a
        assert conj([a, FALSE]) is FALSE
        assert conj([a, TRUE]) is a

    def test_disj_simplifications(self):
        a = Var("a")
        assert disj([]) is FALSE
        assert disj([a]) is a
        assert disj([a, TRUE]) is TRUE
        assert disj([a, FALSE]) is a

    def test_free_variables(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        assert free_variables(ite(a, b & c, ~a)) == {"a", "b", "c"}

    def test_repr_smoke(self):
        a, b = Var("a"), Var("b")
        for expr in (a & b, a | b, ~a, a >> b, Iff(a, b), ite(a, a, b), TRUE, FALSE):
            assert repr(expr)


class TestTseitin:
    def test_tautology_is_sat(self):
        a = Var("a")
        result, _ = tseitin_satisfiable(a | ~a)
        assert result.satisfiable is True

    def test_contradiction_is_unsat(self):
        a = Var("a")
        result, _ = tseitin_satisfiable(a & ~a)
        assert result.satisfiable is False

    def test_model_maps_back_to_names(self):
        a, b = Var("a"), Var("b")
        result, pool = tseitin_satisfiable(a & ~b)
        assert result.satisfiable is True
        assert result.model[pool.var_of("a")] is True
        assert result.model[pool.var_of("b")] is False

    def test_constants_encode_correctly(self):
        a = Var("a")
        result, _ = tseitin_satisfiable(a & TRUE)
        assert result.satisfiable is True
        result, _ = tseitin_satisfiable(a & FALSE)
        assert result.satisfiable is False

    def test_add_expr_into_existing_cnf(self):
        pool = VariablePool()
        cnf = CNF()
        add_expr_to_cnf(Var("x") >> Var("y"), pool, cnf)
        add_expr_to_cnf(Var("x"), pool, cnf)
        result = CDCLSolver(cnf).solve()
        assert result.satisfiable is True
        assert result.model[pool.var_of("y")] is True

    def test_unknown_node_rejected(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            to_cnf(Bogus())  # type: ignore[arg-type]

    def test_ite_all_branches(self):
        # Assert ite(c,t,e) together with each valuation of c/t/e via units.
        c, t, e = Var("c"), Var("t"), Var("e")
        for cv, tv, ev in itertools.product([True, False], repeat=3):
            pool = VariablePool()
            cnf = CNF()
            add_expr_to_cnf(ite(c, t, e), pool, cnf)
            cnf.add_unit(pool.named("c") if cv else -pool.named("c"))
            cnf.add_unit(pool.named("t") if tv else -pool.named("t"))
            cnf.add_unit(pool.named("e") if ev else -pool.named("e"))
            expected = tv if cv else ev
            assert CDCLSolver(cnf).solve().satisfiable is expected


# -- property: Tseitin preserves satisfiability ----------------------------


@st.composite
def random_expr(draw, depth=3):
    if depth == 0:
        return draw(
            st.sampled_from([Var("a"), Var("b"), Var("c"), Var("d"), TRUE, FALSE])
        )
    kind = draw(st.sampled_from(["var", "not", "and", "or", "implies", "iff", "ite"]))
    sub = lambda: draw(random_expr(depth=depth - 1))  # noqa: E731
    if kind == "var":
        return draw(st.sampled_from([Var("a"), Var("b"), Var("c"), Var("d")]))
    if kind == "not":
        return ~sub()
    if kind == "and":
        return sub() & sub()
    if kind == "or":
        return sub() | sub()
    if kind == "implies":
        return sub() >> sub()
    if kind == "iff":
        return Iff(sub(), sub())
    return ite(sub(), sub(), sub())


@settings(max_examples=120, deadline=None)
@given(random_expr())
def test_tseitin_equisatisfiable(expr):
    names = free_variables(expr)
    env = satisfying_env(expr, names)
    result, pool = tseitin_satisfiable(expr)
    assert result.satisfiable is (env is not None)


@settings(max_examples=80, deadline=None)
@given(random_expr())
def test_tseitin_model_satisfies_original(expr):
    result, pool = tseitin_satisfiable(expr)
    if not result.satisfiable:
        return
    env = {
        name: result.model[var]
        for name, var in pool.names().items()
        if not name.startswith("__const_")
    }
    for name in free_variables(expr):
        env.setdefault(name, False)
    assert evaluate(expr, env)
