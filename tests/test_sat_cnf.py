"""Tests for the CNF representation and the variable pool."""

import pytest

from repro.sat import CNF, VariablePool, lit_to_str


class TestVariablePool:
    def test_fresh_variables_are_sequential(self):
        pool = VariablePool()
        assert pool.fresh() == 1
        assert pool.fresh() == 2
        assert pool.num_vars == 2

    def test_named_is_idempotent(self):
        pool = VariablePool()
        a = pool.named("t_x^1")
        assert pool.named("t_x^1") == a
        assert pool.num_vars == 1

    def test_name_round_trip(self):
        pool = VariablePool()
        v = pool.named("b_Nick")
        assert pool.name_of(v) == "b_Nick"
        assert pool.name_of(-v) == "b_Nick"
        assert pool.var_of("b_Nick") == v

    def test_duplicate_explicit_name_rejected(self):
        pool = VariablePool()
        pool.fresh("x")
        with pytest.raises(ValueError):
            pool.fresh("x")

    def test_anonymous_variables_have_no_name(self):
        pool = VariablePool()
        v = pool.fresh()
        assert pool.name_of(v) is None

    def test_names_snapshot(self):
        pool = VariablePool()
        pool.named("a")
        pool.named("b")
        assert pool.names() == {"a": 1, "b": 2}


class TestCNF:
    def test_add_clause_tracks_num_vars(self):
        cnf = CNF()
        cnf.add_clause((1, -5))
        assert cnf.num_vars == 5
        assert cnf.num_clauses == 1

    def test_tautology_dropped(self):
        cnf = CNF()
        cnf.add_clause((1, -1))
        assert cnf.num_clauses == 0

    def test_duplicate_literals_removed(self):
        cnf = CNF()
        cnf.add_clause((2, 2, 3))
        assert cnf.clauses[0] == (2, 3)

    def test_empty_clause_flags_unsat(self):
        cnf = CNF()
        cnf.add_clause(())
        assert cnf.has_empty_clause

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause((1, 0))

    def test_evaluate_total_assignment(self):
        cnf = CNF([(1, 2), (-1, 3)])
        assert cnf.evaluate({1: True, 2: False, 3: True})
        assert not cnf.evaluate({1: True, 2: False, 3: False})

    def test_evaluate_partial_assignment_raises(self):
        cnf = CNF([(1, 2)])
        with pytest.raises(KeyError):
            cnf.evaluate({1: False})

    def test_is_satisfied_by_literal_set(self):
        cnf = CNF([(1, 2), (-1, 3)])
        assert cnf.is_satisfied_by({1, -2, 3})
        assert not cnf.is_satisfied_by({1, -2, -3})

    def test_copy_is_independent(self):
        cnf = CNF([(1, 2)])
        dup = cnf.copy()
        dup.add_clause((3,))
        assert cnf.num_clauses == 1
        assert dup.num_clauses == 2

    def test_variables(self):
        cnf = CNF([(1, -4), (2,)])
        assert cnf.variables() == {1, 2, 4}

    def test_extend_vars(self):
        cnf = CNF([(1,)])
        cnf.extend_vars(10)
        assert cnf.num_vars == 10

    def test_iteration_and_len(self):
        cnf = CNF([(1,), (2, 3)])
        assert len(cnf) == 2
        assert list(cnf) == [(1,), (2, 3)]


class TestLitToStr:
    def test_unnamed(self):
        assert lit_to_str(3) == "x3"
        assert lit_to_str(-3) == "¬x3"

    def test_named(self):
        pool = VariablePool()
        v = pool.named("t_sid")
        assert lit_to_str(v, pool) == "t_sid"
        assert lit_to_str(-v, pool) == "¬t_sid"
