"""Shared helpers for end-to-end attack + witness-replay validation.

The ``examples/`` audit scripts each grew their own ad-hoc ``run_php``
attack check (run the payload, grep a channel for it).  These helpers
are the promoted, reusable version: one concrete-attack probe over all
observable channels, and one verify → replay → patched-replay harness
asserting the full ``confirmed`` → ``refuted`` arc.
"""

from repro.interp import HttpRequest, run_php
from repro.replay import replay_source
from repro.websari.pipeline import WebSSARI


def attack_delivered(
    source: str,
    request: HttpRequest,
    needle: str,
    *,
    database=None,
    session=None,
    files=None,
) -> bool:
    """Concrete oracle: does ``needle`` survive intact into any sink?

    Checks the same channels the replayer's sentinel observer watches:
    response body, SQL query log, command log, headers, and explicit
    sink-log arguments.
    """
    log_start = len(database.query_log) if database is not None else 0
    env = run_php(
        source, request=request, database=database, session=session, files=files
    )
    if needle in env.response_body():
        return True
    if any(needle in query for query in env.database.query_log[log_start:]):
        return True
    if any(needle in command for command in env.command_log):
        return True
    if any(needle in header for header in env.headers):
        return True
    return any(needle in arg for _, args in env.sink_log for arg in args)


def verify_and_replay(
    source: str,
    filename: str,
    *,
    websari: WebSSARI | None = None,
    database=None,
    session=None,
):
    """Verify one source and replay every counterexample it produced.

    Returns ``(report, results)``.  A shared ``database``/``session``
    lets stored-taint scenarios accumulate state across calls (poison
    via the submit script's replay, then observe via the display
    script's).
    """
    websari = websari or WebSSARI()
    report = websari.verify_source(source, filename=filename)
    results = replay_source(
        source, report, filename, database=database, session=session
    )
    return report, results


def assert_confirmed_then_patch_refutes(results, context: str = "") -> None:
    """Every trace must replay ``confirmed`` and die under the patch."""
    assert results, f"{context}: vulnerable report produced no replayable traces"
    for result in results:
        assert result.verdict == "confirmed", (
            f"{context}: expected confirmed, got {result.verdict} "
            f"({result.reason}) for trace at {result.span}; "
            f"request={result.request}"
        )
        assert result.patched == "refuted", (
            f"{context}: patched replay should refute the witness, got "
            f"{result.patched} ({result.reason}) for trace at {result.span}"
        )
