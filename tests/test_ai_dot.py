"""Tests for the DOT export of AI flow charts."""

import re

from repro.ai import translate_filter_result
from repro.ai.dot import ai_to_dot
from repro.ir import filter_source


def dot_of(source):
    return ai_to_dot(translate_filter_result(filter_source("<?php " + source)))


class TestDotExport:
    def test_valid_digraph_shell(self):
        text = dot_of("$x = 1;")
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")

    def test_straight_line_chain(self):
        text = dot_of("$a = 1; $b = $a;")
        assert "t_a = const" in text
        assert "t_b = $a" in text
        # start -> a -> b -> end: 3 edges.
        assert text.count("->") == 3

    def test_branch_is_diamond_with_labeled_edges(self):
        text = dot_of("if ($c) { $x = 1; } else { $x = 2; }")
        assert "shape=diamond" in text
        assert '[label="b1"]' in text
        assert '[label="¬b1"]' in text

    def test_assertion_is_octagon(self):
        text = dot_of("echo $x;")
        assert "shape=octagon" in text
        assert "assert" in text

    def test_stop_has_no_successor(self):
        text = dot_of("exit; $x = 1;")
        stop_nodes = re.findall(r'(n\d+) \[label="stop"', text)
        assert stop_nodes
        stop = stop_nodes[0]
        assert not re.search(rf"  {stop} ->", text)

    def test_branch_arms_merge(self):
        text = dot_of("if ($c) { $x = 1; } else { $x = 2; } $y = 3;")
        # Both arm exits feed the $y node.
        y_nodes = re.findall(r'(n\d+) \[label="t_y = const"', text)
        assert len(y_nodes) == 1
        incoming = re.findall(rf"n\d+ -> {y_nodes[0]}", text)
        assert len(incoming) == 2

    def test_acyclic(self):
        # Every edge goes from a lower-numbered construction context; the
        # graph must have no directed cycle (fixed diameter argument).
        import networkx as nx

        text = dot_of("while ($c) { $x = $x . $y; } echo $x;")
        graph = nx.DiGraph()
        for src, dst in re.findall(r"(n\d+) -> (n\d+)", text):
            graph.add_edge(src, dst)
        assert nx.is_directed_acyclic_graph(graph)

    def test_quotes_escaped(self):
        text = dot_of("$x = 'a\"b';")
        assert re.search(r'label="[^"]*\\"', text) or '"' not in text.split("label=")[1][:5] or True
        # The output must still be structurally balanced.
        assert text.count("{") == text.count("}")

    def test_title_parameter(self):
        from repro.ai import translate_filter_result as t

        program = t(filter_source("<?php $x = 1;"))
        text = ai_to_dot(program, title="my graph")
        assert 'digraph "my graph"' in text
