"""Tests for the xBMC0.1 location-variable encoding (ablation baseline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ai import rename, translate_filter_result
from repro.bmc import check_program
from repro.bmc.location_encoder import LocationBMC
from repro.ir import filter_source


def ai_of(source):
    return translate_filter_result(filter_source("<?php " + source))


def location_verdicts(source):
    return LocationBMC(ai_of(source)).run()


def renaming_verdicts(source):
    result = check_program(rename(ai_of(source)))
    return {r.assert_id: not r.safe for r in result.assertions}


class TestLocationBMC:
    def test_safe_program(self):
        result = location_verdicts("$x = 'lit'; echo $x;")
        assert result.safe
        assert result.verdicts == {1: False}

    def test_direct_taint(self):
        result = location_verdicts("$x = $_GET['q']; echo $x;")
        assert result.verdicts == {1: True}

    def test_branch_taint(self):
        result = location_verdicts(
            "if ($c) { $x = $_GET['q']; } else { $x = 'lit'; } echo $x;"
        )
        assert result.verdicts == {1: True}

    def test_sanitizer(self):
        result = location_verdicts(
            "$x = $_GET['q']; $x = htmlspecialchars($x); echo $x;"
        )
        assert result.verdicts == {1: False}

    def test_stop_prevents_later_taint(self):
        # Unlike the renaming encoder (which follows the paper's
        # C(stop,g)=true), the location encoding is path-accurate: after
        # stop, the sink location is unreachable.
        result = location_verdicts("$x = $_GET['q']; exit; echo $x;")
        assert result.verdicts == {1: False}

    def test_multiple_assertions(self):
        result = location_verdicts(
            "$a = $_GET['a']; echo $a; $b = 'lit'; echo $b;"
        )
        assert result.verdicts == {1: True, 2: False}

    def test_loop_body_taint(self):
        result = location_verdicts("while ($c) { echo $_GET['x']; }")
        assert result.verdicts == {1: True}

    def test_formula_stats_reported(self):
        result = location_verdicts("$x = $_GET['q']; echo $x;")
        assert result.num_steps > 0
        assert result.num_locations >= 3
        assert result.num_vars > 0

    def test_formula_larger_than_renaming_encoding(self):
        # The whole point of §3.3.2: per-step full-state copies blow up.
        source = (
            "$a = $_GET['a']; $b = $a; $c = $b; $d = $c; $e = $d; echo $e;"
        )
        location = location_verdicts(source)
        renaming = check_program(rename(ai_of(source)))
        assert location.num_vars > renaming.num_vars
        assert location.num_clauses > renaming.num_clauses


# Property: both encodings agree on every assertion verdict for programs
# without `exit` (where the renaming encoder intentionally over-approximates).


@st.composite
def straightline_program(draw):
    lines = []
    variables = ["a", "b", "c"]
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(st.sampled_from(["taint", "const", "copy", "sink", "branch", "sanitize"]))
        var = draw(st.sampled_from(variables))
        src = draw(st.sampled_from(variables))
        if kind == "taint":
            lines.append(f"${var} = $_GET['k'];")
        elif kind == "const":
            lines.append(f"${var} = 'v';")
        elif kind == "copy":
            lines.append(f"${var} = ${src};")
        elif kind == "sanitize":
            lines.append(f"${var} = htmlspecialchars(${src});")
        elif kind == "sink":
            lines.append(f"echo ${var};")
        else:
            lines.append(f"if ($c) {{ ${var} = ${src}; }} else {{ ${var} = 'w'; }}")
    return "\n".join(lines)


@settings(max_examples=30, deadline=None)
@given(straightline_program())
def test_encodings_agree(source):
    assert location_verdicts(source).verdicts == renaming_verdicts(source)
