"""End-to-end soundness: static verdicts vs actual runtime behaviour.

These tests close the loop between the three major subsystems:

1. If WebSSARI verifies a program SAFE, then executing it in the
   interpreter with attack payloads in every input channel must never
   deliver a raw payload marker to the response body or the SQL layer.
2. If WebSSARI flags a program and we apply the BMC patch, property 1
   must hold for the patched program.
3. For flagged programs there must exist *some* execution that actually
   delivers the payload (the static tool is not crying wolf on this
   grammar — completeness of the flag, witnessed concretely).

The program generator draws from a grammar where every branch condition
is controllable via a GET flag, so property 3 can search executions by
toggling flags.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WebSSARI
from repro.interp import HttpRequest, run_php

PAYLOAD = "<script>ATTACK</script>"
MARKER = "<script>"


def attack_request(flags: dict[str, str] | None = None) -> HttpRequest:
    params = {f"k{i}": PAYLOAD for i in range(4)}
    params.update(flags or {})
    return HttpRequest(get=dict(params), post={"p": PAYLOAD}, cookies={"c": PAYLOAD})


@st.composite
def runnable_program(draw):
    """Programs whose every construct both analyses and executes."""
    variables = ["a", "b", "c"]
    lines = ["$a = ''; $b = ''; $c = '';"]
    flag_count = 0
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(
            st.sampled_from(
                ["taint", "const", "copy", "concat", "sanitize", "sink", "branch"]
            )
        )
        var = draw(st.sampled_from(variables))
        src = draw(st.sampled_from(variables))
        if kind == "taint":
            k = draw(st.integers(min_value=0, max_value=3))
            lines.append(f"${var} = $_GET['k{k}'];")
        elif kind == "const":
            lines.append(f"${var} = 'lit';")
        elif kind == "copy":
            lines.append(f"${var} = ${src};")
        elif kind == "concat":
            lines.append(f"${var} = ${src} . '-';")
        elif kind == "sanitize":
            # Self-sanitization only: `$b = htmlspecialchars($a)` followed
            # by a use of $a is a known false negative of the paper's
            # Figure 6 in-place model — tested separately in
            # test_model_unsoundness.py.
            lines.append(f"${var} = htmlspecialchars(${var});")
        elif kind == "sink":
            lines.append(f"echo ${var};")
        else:
            flag = f"f{flag_count}"
            flag_count += 1
            inner = draw(st.sampled_from(["taint", "const", "sanitize"]))
            body = {
                "taint": f"${var} = $_POST['p'];",
                "const": f"${var} = 'w';",
                "sanitize": f"${var} = htmlspecialchars(${var});",
            }[inner]
            lines.append(f"if ($_GET['{flag}'] == '1') {{ {body} }}")
    return "<?php\n" + "\n".join(lines), flag_count


def executes_payload(source: str, flag_count: int) -> bool:
    """Search all flag combinations for an execution leaking the marker."""
    for bits in itertools.product("01", repeat=flag_count):
        flags = {f"f{i}": bit for i, bit in enumerate(bits)}
        env = run_php(source, request=attack_request(flags))
        if MARKER in env.response_body():
            return True
    return False


@settings(max_examples=60, deadline=None)
@given(runnable_program())
def test_safe_verdict_implies_no_payload_delivery(case):
    source, flag_count = case
    report = WebSSARI().verify_source(source)
    if report.safe:
        assert not executes_payload(source, flag_count), source


@settings(max_examples=60, deadline=None)
@given(runnable_program())
def test_patched_program_never_delivers_payload(case):
    source, flag_count = case
    websari = WebSSARI()
    report, patched = websari.patch_source(source, strategy="bmc")
    assert websari.verify_source(patched.source).safe, patched.source
    assert not executes_payload(patched.source, flag_count), patched.source


@settings(max_examples=40, deadline=None)
@given(runnable_program())
def test_ts_patch_also_secures_at_runtime(case):
    source, flag_count = case
    websari = WebSSARI()
    _, patched = websari.patch_source(source, strategy="ts")
    assert websari.verify_source(patched.source).safe, patched.source
    assert not executes_payload(patched.source, flag_count), patched.source


class TestFlaggedProgramsHaveWitness:
    """Completeness witnessed concretely on hand-picked flagged programs.

    (Random programs can be flagged without a *string* payload reaching
    the sink — e.g. taint via '-'-concatenation chains that drop the
    marker — so the random grammar is not used here.)
    """

    def test_direct_flow_witness(self):
        source = "<?php $x = $_GET['k0']; echo $x;"
        report = WebSSARI().verify_source(source)
        assert not report.safe
        assert executes_payload(source, 0)

    def test_branch_flow_witness(self):
        source = "<?php $x = 'safe'; if ($_GET['f0'] == '1') { $x = $_POST['p']; } echo $x;"
        report = WebSSARI().verify_source(source)
        assert not report.safe
        assert executes_payload(source, 1)

    def test_unsanitized_path_witness(self):
        source = (
            "<?php $x = $_GET['k0'];"
            "if ($_GET['f0'] == '1') { $x = htmlspecialchars($x); }"
            "echo $x;"
        )
        report = WebSSARI().verify_source(source)
        assert not report.safe
        assert executes_payload(source, 1)

    def test_stored_roundtrip_witness(self):
        from repro.interp import MockDatabase

        submit = "<?php mysql_query(\"INSERT INTO msgs (body) VALUES ('{$_POST['p']}')\");"
        display = (
            "<?php $r = mysql_query('SELECT body FROM msgs');"
            "while ($row = mysql_fetch_array($r)) { echo $row['body']; }"
        )
        websari = WebSSARI()
        assert not websari.verify_source(submit).safe
        assert not websari.verify_source(display).safe
        db = MockDatabase()
        db.create_table("msgs", [])
        run_php(submit, request=attack_request(), database=db)
        env = run_php(display, database=db)
        assert MARKER in env.response_body()
