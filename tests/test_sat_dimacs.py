"""Tests for DIMACS parsing and serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CNF, DimacsError, parse_dimacs, write_dimacs
from repro.sat.dimacs import parse_dimacs_file, write_dimacs_file


class TestParse:
    def test_basic(self):
        cnf = parse_dimacs("p cnf 3 2\n1 -3 0\n2 3 -1 0\n")
        assert cnf.num_vars == 3
        assert list(cnf.clauses) == [(1, -3), (2, 3, -1)]

    def test_comments_ignored(self):
        cnf = parse_dimacs("c header\np cnf 2 1\nc mid\n1 2 0\nc trailing\n")
        assert cnf.num_clauses == 1

    def test_percent_lines_ignored(self):
        # SATLIB benchmark files end with '%' and a stray '0' line.
        cnf = parse_dimacs("p cnf 2 1\n1 2 0\n%\n")
        assert cnf.num_clauses == 1

    def test_clause_spanning_lines(self):
        cnf = parse_dimacs("p cnf 3 1\n1\n2\n3 0\n")
        assert cnf.clauses[0] == (1, 2, 3)

    def test_missing_final_terminator(self):
        cnf = parse_dimacs("p cnf 2 1\n1 2")
        assert cnf.clauses[0] == (1, 2)

    def test_no_problem_line(self):
        cnf = parse_dimacs("1 2 0\n-1 0\n")
        assert cnf.num_clauses == 2

    def test_declared_vars_extend(self):
        cnf = parse_dimacs("p cnf 10 1\n1 0\n")
        assert cnf.num_vars == 10

    def test_literal_beyond_declared_rejected(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n5 0\n")

    def test_bad_problem_line_rejected(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf nope 1\n1 0\n")
        with pytest.raises(DimacsError):
            parse_dimacs("p sat 2 1\n1 0\n")

    def test_bad_literal_rejected(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_too_many_clauses_rejected(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 0\n2 0\n")

    def test_fewer_clauses_than_declared_tolerated(self):
        cnf = parse_dimacs("p cnf 2 5\n1 0\n")
        assert cnf.num_clauses == 1


class TestWrite:
    def test_round_trip(self):
        original = CNF([(1, -2), (3,), (-1, -3, 2)])
        text = write_dimacs(original)
        parsed = parse_dimacs(text)
        assert list(parsed.clauses) == list(original.clauses)
        assert parsed.num_vars == original.num_vars

    def test_comment_emitted(self):
        text = write_dimacs(CNF([(1,)]), comment="hello\nworld")
        assert text.startswith("c hello\nc world\n")

    def test_file_round_trip(self, tmp_path):
        original = CNF([(1, 2), (-2,)])
        path = tmp_path / "f.cnf"
        write_dimacs_file(original, path)
        parsed = parse_dimacs_file(path)
        assert list(parsed.clauses) == list(original.clauses)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=8).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ),
        max_size=10,
    )
)
def test_write_parse_round_trip_property(clause_lists):
    original = CNF(clause_lists)
    parsed = parse_dimacs(write_dimacs(original))
    assert list(parsed.clauses) == list(original.clauses)
