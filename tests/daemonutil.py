"""Deterministic drivers for daemon tests: fake clock, mtime control.

The watcher compares file mtimes against an injectable clock, so the
whole daemon test suite runs without a single real sleep: a
:class:`FakeClock` provides "now", and a :class:`TreeDriver` performs
filesystem mutations whose mtimes come from that same clock (via
``os.utime``).  Advancing the clock is what makes time pass; polls are
stepped explicitly by the tests.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

__all__ = ["FakeClock", "TreeDriver"]


class FakeClock:
    """A callable clock advanced manually (epoch-like start so mtimes
    written from it look plausible to any code that formats them)."""

    def __init__(self, start: float = 1_000_000_000.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


class TreeDriver:
    """Mutate a real directory tree with clock-controlled mtimes.

    Every mutation stamps the file's mtime from the fake clock, so the
    watcher's debounce arithmetic (clock minus mtime) is exact: a test
    decides whether a write looks "in progress" or "settled" purely by
    how far it advances the clock afterwards.
    """

    def __init__(self, root: str | Path, clock: FakeClock) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.clock = clock

    def path(self, name: str) -> Path:
        return self.root / name

    def _stamp(self, name: str) -> None:
        ns = int(self.clock() * 1e9)
        os.utime(self.path(name), ns=(ns, ns))

    def write(self, name: str, text: str) -> Path:
        """Create or overwrite a file, mtime = fake now."""
        path = self.path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        self._stamp(name)
        return path

    def touch(self, name: str) -> None:
        """Bump mtime to fake now without changing content."""
        self._stamp(name)

    def remove(self, name: str) -> None:
        self.path(name).unlink()

    def remove_tree(self, name: str) -> None:
        shutil.rmtree(self.path(name))

    def move(self, old: str, new: str) -> None:
        """Rename, preserving the stamp (os.rename keeps inode + mtime)."""
        target = self.path(new)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.rename(self.path(old), target)

    def symlink_dir(self, name: str, target: str | Path) -> None:
        self.path(name).symlink_to(target, target_is_directory=True)

    def symlink_file(self, name: str, target: str | Path) -> None:
        self.path(name).symlink_to(target)
