"""Start-method agnosticism: the worker pool must produce identical
verdicts under fork and spawn, because the analyzer session travels to
workers as an explicit setup message instead of relying on fork's
copied address space.  Witness replay rides the same session (the
``replay`` flag is an attribute of the shipped ``WebSSARI``), so its
traces and synthesized requests must serialize byte-identically too."""

import json
import multiprocessing

import pytest

from repro.engine import AuditEngine, AuditTask, EngineConfig, WorkerSession
from repro.replay import replay_source
from repro.websari.pipeline import WebSSARI

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

VULN = "<?php\nif ($_GET['go']) { echo $_GET['q']; }\n"
SAFE = "<?php echo 'hello';\n"

TASKS = [
    ("vuln.php", VULN),
    ("safe.php", SAFE),
]


def run_with(start_method, replay=False):
    engine = AuditEngine(
        websari=WebSSARI(replay=replay),
        config=EngineConfig(jobs=2, start_method=start_method),
    )
    tasks = [
        AuditTask(index=i, filename=name, source=src)
        for i, (name, src) in enumerate(TASKS)
    ]
    result = engine.run(tasks)
    return {o.filename: (o.status, o.safe) for o in result.outcomes}


def verdicts():
    return {"vuln.php": ("ok", False), "safe.php": ("ok", True)}


class TestStartMethods:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_same_verdicts_under_each_method(self, method):
        assert run_with(method) == verdicts()

    def test_default_matches_explicit(self):
        assert run_with(None) == verdicts()

    def test_unsupported_method_rejected_with_alternatives(self):
        with pytest.raises(ValueError, match="start method"):
            run_with("hyperthread")


def replay_sections(start_method):
    """Per-file ``replay`` sections, serialized for byte comparison."""
    engine = AuditEngine(
        websari=WebSSARI(replay=True),
        config=EngineConfig(jobs=2, start_method=start_method),
    )
    tasks = [
        AuditTask(index=i, filename=name, source=src)
        for i, (name, src) in enumerate(TASKS)
    ]
    result = engine.run(tasks)
    return {
        o.filename: json.dumps(o.replay, sort_keys=True) for o in result.outcomes
    }


class TestReplayDeterminism:
    def test_traces_and_requests_serialize_identically_across_runs(self):
        def once():
            report = WebSSARI().verify_source(VULN, "vuln.php")
            canonical_traces = "\n".join(
                trace.canonical() for trace in report.bmc.all_counterexamples()
            )
            requests = [
                json.dumps(result.request, sort_keys=True)
                for result in replay_source(VULN, report, "vuln.php")
            ]
            return canonical_traces, requests

        first, second = once(), once()
        assert first == second
        assert first[1], "vulnerable source must synthesize at least one request"

    @pytest.mark.parametrize("method", START_METHODS)
    def test_replay_sections_byte_identical_under_each_method(self, method):
        baseline = replay_sections(None)
        assert replay_sections(method) == baseline
        vuln = json.loads(baseline["vuln.php"])
        assert vuln["confirmed"] >= 1 and vuln["refuted"] == 0
        assert json.loads(baseline["safe.php"]) == {}


class TestWorkerSession:
    def test_session_is_picklable(self):
        """The setup message must survive a spawn pickle round-trip."""
        import pickle

        session = WorkerSession(websari=WebSSARI(), want_report=True)
        clone = pickle.loads(pickle.dumps(session))
        assert clone.want_report and clone.websari is not None

    def test_frozen(self):
        session = WorkerSession(websari=WebSSARI())
        with pytest.raises(Exception):
            session.want_report = True
