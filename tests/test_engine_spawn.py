"""Start-method agnosticism: the worker pool must produce identical
verdicts under fork and spawn, because the analyzer session travels to
workers as an explicit setup message instead of relying on fork's
copied address space."""

import multiprocessing

import pytest

from repro.engine import AuditEngine, AuditTask, EngineConfig, WorkerSession
from repro.websari.pipeline import WebSSARI

VULN = "<?php echo $_GET['q'];\n"
SAFE = "<?php echo 'hello';\n"

TASKS = [
    ("vuln.php", VULN),
    ("safe.php", SAFE),
]


def run_with(start_method):
    engine = AuditEngine(
        websari=WebSSARI(),
        config=EngineConfig(jobs=2, start_method=start_method),
    )
    tasks = [
        AuditTask(index=i, filename=name, source=src)
        for i, (name, src) in enumerate(TASKS)
    ]
    result = engine.run(tasks)
    return {o.filename: (o.status, o.safe) for o in result.outcomes}


def verdicts():
    return {"vuln.php": ("ok", False), "safe.php": ("ok", True)}


class TestStartMethods:
    @pytest.mark.parametrize(
        "method",
        [m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()],
    )
    def test_same_verdicts_under_each_method(self, method):
        assert run_with(method) == verdicts()

    def test_default_matches_explicit(self):
        assert run_with(None) == verdicts()

    def test_unsupported_method_rejected_with_alternatives(self):
        with pytest.raises(ValueError, match="start method"):
            run_with("hyperthread")


class TestWorkerSession:
    def test_session_is_picklable(self):
        """The setup message must survive a spawn pickle round-trip."""
        import pickle

        session = WorkerSession(websari=WebSSARI(), want_report=True)
        clone = pickle.loads(pickle.dumps(session))
        assert clone.want_report and clone.websari is not None

    def test_frozen(self):
        session = WorkerSession(websari=WebSSARI())
        with pytest.raises(Exception):
            session.want_report = True
