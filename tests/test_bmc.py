"""Tests for the BMC engine: encoding, checking, counterexample enumeration."""

import pytest

from repro.ai import rename, translate_filter_result
from repro.bmc import BMCChecker, LatticeEncoding, check_program
from repro.ir import filter_source
from repro.lattice import FiniteLattice, LatticeError, linear_lattice, two_point_lattice
from repro.lattice.types import TAINTED, UNTAINTED


def renamed_of(source):
    return rename(translate_filter_result(filter_source("<?php " + source)))


def check(source, **kwargs):
    return check_program(renamed_of(source), **kwargs)


class TestLatticeEncoding:
    def test_two_point_width_one(self):
        enc = LatticeEncoding(two_point_lattice())
        assert enc.width == 1
        assert enc.irreducibles == [TAINTED]
        assert enc.bits(UNTAINTED) == frozenset()
        assert enc.bits(TAINTED) == {0}

    def test_linear_lattice_bits_are_nested(self):
        enc = LatticeEncoding(linear_lattice(["l0", "l1", "l2", "l3"]))
        assert enc.width == 3
        sizes = [len(enc.bits(f"l{i}")) for i in range(4)]
        assert sizes == [0, 1, 2, 3]

    def test_decode_round_trip(self):
        lat = linear_lattice(["a", "b", "c"])
        enc = LatticeEncoding(lat)
        for element in lat.elements:
            assert enc.element_of_bits(enc.bits(element)) == element

    def test_diamond_is_distributive(self):
        # bot < {a,b} < top IS distributive (it's 2x2 boolean).
        lat = FiniteLattice(
            {"bot", "a", "b", "top"},
            {("bot", "a"), ("bot", "b"), ("a", "top"), ("b", "top")},
        )
        enc = LatticeEncoding(lat)
        assert enc.width == 2

    def test_m3_rejected_as_non_distributive(self):
        lat = FiniteLattice(
            {"bot", "x", "y", "z", "top"},
            {
                ("bot", "x"),
                ("bot", "y"),
                ("bot", "z"),
                ("x", "top"),
                ("y", "top"),
                ("z", "top"),
            },
        )
        with pytest.raises(LatticeError, match="distributive"):
            LatticeEncoding(lat)


class TestSafePrograms:
    def test_constant_echo_is_safe(self):
        result = check("$x = 'hello'; echo $x;")
        assert result.safe
        assert len(result.assertions) == 1

    def test_sanitized_flow_is_safe(self):
        result = check("$x = $_GET['q']; $y = htmlspecialchars($x); echo $y;")
        assert result.safe

    def test_intval_flow_is_safe(self):
        result = check("$id = intval($_GET['id']); mysql_query('q' . $id);")
        # intval returns bottom; 'q' . $id is a constant join bottom.
        assert result.safe

    def test_no_assertions_program(self):
        result = check("$x = $_GET['q'];")
        assert result.assertions == []
        assert result.safe

    def test_overwritten_taint_is_safe(self):
        result = check("$x = $_GET['q']; $x = 'safe'; echo $x;")
        assert result.safe

    def test_safe_branch_only(self):
        result = check("if ($c) { $x = 'const'; } echo 'literal';")
        assert result.safe


class TestVulnerablePrograms:
    def test_direct_taint_violates(self):
        result = check("$x = $_GET['q']; echo $x;")
        assert not result.safe
        (assertion,) = result.assertions
        assert len(assertion.counterexamples) == 1
        trace = assertion.counterexamples[0]
        assert trace.violating_names == {"x"}
        assert trace.violating[0].level == TAINTED

    def test_taint_through_copy_chain(self):
        result = check("$a = $_GET['q']; $b = $a; $c = $b; echo $c;")
        (assertion,) = result.violated
        trace = assertion.counterexamples[0]
        targets = [step.target.name for step in trace.steps]
        assert targets == ["a", "b", "c"]

    def test_taint_through_concatenation(self):
        result = check("$q = 'SELECT ' . $_GET['id']; mysql_query($q);")
        assert not result.safe

    def test_referer_sql_injection_figure3(self):
        result = check("$sql = \"INSERT INTO t VALUES('$HTTP_REFERER')\"; mysql_query($sql);")
        (assertion,) = result.violated
        assert assertion.event.function == "mysql_query"

    def test_taint_in_one_branch_only(self):
        result = check(
            "if ($c) { $x = $_GET['q']; } else { $x = 'safe'; } echo $x;"
        )
        (assertion,) = result.violated
        assert len(assertion.counterexamples) == 1
        trace = assertion.counterexamples[0]
        assert trace.deciding_branches == {"b1": True}

    def test_taint_in_both_branches_two_counterexamples(self):
        result = check(
            "if ($c) { $x = $_GET['a']; } else { $x = $_POST['b']; } echo $x;"
        )
        (assertion,) = result.violated
        assert len(assertion.counterexamples) == 2
        decisions = {
            tuple(sorted(t.deciding_branches.items()))
            for t in assertion.counterexamples
        }
        assert decisions == {(("b1", True),), (("b1", False),)}

    def test_unconditional_taint_single_counterexample(self):
        # Branches that don't affect the taint shouldn't multiply traces.
        result = check("$x = $_GET['q']; if ($c) { $y = 1; } echo $x;")
        (assertion,) = result.violated
        assert len(assertion.counterexamples) == 1

    def test_sanitizer_in_one_branch(self):
        result = check(
            "$x = $_GET['q']; if ($c) { $x = htmlspecialchars($x); } echo $x;"
        )
        (assertion,) = result.violated
        (trace,) = assertion.counterexamples
        # Violation only on the path that skips the sanitizer.
        assert trace.deciding_branches == {"b1": False}

    def test_loop_body_taint(self):
        result = check(
            "while ($row = mysql_fetch_array($r)) { echo $row; }"
        )
        assert not result.safe

    def test_multiple_assertions_checked_independently(self):
        result = check(
            "$sid = $_GET['sid'];"
            "$iq = 'SELECT ' . $sid; mysql_query($iq);"
            "$i2q = 'UPDATE ' . $sid; mysql_query($i2q);"
        )
        assert len(result.violated) == 2

    def test_figure7_all_three_sinks_violated(self):
        source = """
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid"; DoSQL($i2q);
$fnq = "SELECT * FROM q WHERE sid='$sid'"; DoSQL($fnq);
"""
        result = check(source)
        assert len(result.violated) == 3
        # Each sink violates on both branch paths ($sid from GET or POST).
        for assertion in result.violated:
            assert len(assertion.counterexamples) == 2

    def test_figure6_then_branch_safe_else_violated(self):
        source = """
if ($Nick) {
  $tmp = $_GET["nick"];
  echo(htmlspecialchars($tmp));
} else {
  $tmp = "You are the" . $GuestCount . " guest";
  echo($tmp);
}
"""
        result = check(source)
        results_by_id = {r.assert_id: r for r in result.assertions}
        assert results_by_id[1].safe  # sanitized echo
        assert results_by_id[2].safe  # GuestCount is untainted (⊥)


class TestCheckerMechanics:
    def test_formula_stats_populated(self):
        result = check("$x = $_GET['q']; echo $x;")
        assert result.num_vars > 0
        assert result.num_clauses > 0
        assert result.solve_seconds >= 0

    def test_max_counterexamples_truncates(self):
        # 4 independent taint branches -> up to 16 paths; cap at 3.
        source = (
            "$x = '';"
            + "".join(f"if ($c{i}) {{ $x = $x . $_GET['a{i}']; }}" for i in range(4))
            + "echo $x;"
        )
        result = check(source, max_counterexamples=3)
        (assertion,) = result.violated
        assert assertion.truncated
        assert len(assertion.counterexamples) == 3

    def test_enumeration_is_exhaustive_and_distinct(self):
        source = (
            "if ($a) { $x = $_GET['p']; } else { $x = $_GET['q']; }"
            "if ($b) { $y = $x; } else { $y = $x; }"
            "echo $y;"
        )
        result = check(source)
        (assertion,) = result.violated
        traces = assertion.counterexamples
        keys = {tuple(sorted(t.deciding_branches.items())) for t in traces}
        assert len(keys) == len(traces) == 4

    def test_accumulate_always_silences_downstream(self):
        # The literal reading of the paper: conjoining a violated
        # assertion's constraint contradicts the unconditional taint and
        # silences the later assertions (see module docstring).
        source = (
            "$sid = $_GET['sid'];"
            "mysql_query('a' . $sid);"
            "mysql_query('b' . $sid);"
        )
        default = check(source, accumulate="safe-only")
        literal = check(source, accumulate="always")
        assert len(default.violated) == 2
        assert len(literal.violated) == 1

    def test_accumulate_never_matches_safe_only_on_results(self):
        source = "$x = $_GET['q']; echo $x; echo 'const' . $x;"
        a = check(source, accumulate="never")
        b = check(source, accumulate="safe-only")
        assert [len(r.counterexamples) for r in a.assertions] == [
            len(r.counterexamples) for r in b.assertions
        ]

    def test_multilevel_lattice(self):
        from repro.policy import Prelude

        lattice = linear_lattice(["public", "internal", "secret"])
        prelude = Prelude(lattice)
        prelude.add_superglobal("_GET", "secret")
        prelude.add_sink("echo", "internal")  # requires level < internal
        prelude.add_sink("log_write", "secret")  # tolerates internal
        filtered = filter_source(
            "<?php $x = $_GET['q']; echo $x; log_write($x);", prelude=prelude
        )
        program = rename(translate_filter_result(filtered))
        result = check_program(program, lattice=lattice)
        by_id = {r.assert_id: r for r in result.assertions}
        assert not by_id[1].safe  # secret !< internal
        assert not by_id[2].safe  # secret !< secret (not strict)

    def test_multilevel_lattice_passing_level(self):
        from repro.policy import Prelude

        lattice = linear_lattice(["public", "internal", "secret"])
        prelude = Prelude(lattice)
        prelude.add_superglobal("_GET", "internal")
        prelude.add_sink("log_write", "secret")
        filtered = filter_source("<?php $x = $_GET['q']; log_write($x);", prelude=prelude)
        program = rename(translate_filter_result(filtered))
        result = check_program(program, lattice=lattice)
        assert result.safe  # internal < secret

    def test_trace_describe_smoke(self):
        result = check("$x = $_GET['q']; echo $x;")
        text = result.violated[0].counterexamples[0].describe()
        assert "VIOLATION" in text
        assert "x" in text
