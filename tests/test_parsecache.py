"""Tests for the content-hash parse cache and the persisted include graph."""

import pickle

import pytest

from repro.php import ast_nodes as ast
from repro.php.errors import ParseError
from repro.php.parsecache import IncludeGraph, ParseCache, content_digest

SRC = "<?php $x = 1;\n"
OTHER = "<?php $y = 2;\n"


class TestParseCache:
    def test_miss_then_hit_returns_same_program(self):
        cache = ParseCache()
        first = cache.parse(SRC, "a.php")
        second = cache.parse(SRC, "a.php")
        assert first is second  # memo shares the immutable tree
        assert isinstance(first, ast.Program)
        assert cache.hits == 1 and cache.misses == 1

    def test_filename_is_part_of_the_key(self):
        cache = ParseCache()
        a = cache.parse(SRC, "a.php")
        b = cache.parse(SRC, "b.php")
        # Same text, different file: spans embed the filename, so the
        # trees must not be shared.
        assert a is not b
        assert cache.misses == 2 and cache.hits == 0
        assert ParseCache.key(SRC, "a.php") != ParseCache.key(SRC, "b.php")

    def test_lru_evicts_oldest(self):
        cache = ParseCache(max_entries=2)
        cache.parse(SRC, "a.php")
        cache.parse(SRC, "b.php")
        cache.parse(SRC, "c.php")  # evicts a.php
        cache.parse(SRC, "a.php")
        assert cache.misses == 4 and cache.hits == 0

    def test_parse_error_propagates_and_is_not_cached(self):
        cache = ParseCache()
        with pytest.raises(ParseError):
            cache.parse("<?php if (", "broken.php")
        with pytest.raises(ParseError):
            cache.parse("<?php if (", "broken.php")
        assert cache.misses == 2

    def test_disk_persistence_across_processes(self, tmp_path):
        first = ParseCache(persist_dir=tmp_path / "parse")
        first.parse(SRC, "a.php")
        # A fresh cache object over the same directory models a new
        # process: the memo is empty, the disk entry answers.
        second = ParseCache(persist_dir=tmp_path / "parse")
        program = second.parse(SRC, "a.php")
        assert isinstance(program, ast.Program)
        assert second.hits == 1 and second.misses == 0

    def test_corrupt_disk_entry_is_evicted_and_reparsed(self, tmp_path):
        cache = ParseCache(persist_dir=tmp_path / "parse")
        cache.parse(SRC, "a.php")
        key = ParseCache.key(SRC, "a.php")
        entry = tmp_path / "parse" / key[:2] / f"{key}.pkl"
        entry.write_bytes(b"not a pickle")
        fresh = ParseCache(persist_dir=tmp_path / "parse")
        program = fresh.parse(SRC, "a.php")
        assert isinstance(program, ast.Program)
        assert fresh.misses == 1  # corrupt entry was a miss, not a crash
        # The torn entry was evicted, then rewritten by the re-parse.
        assert entry.exists()
        reread = ParseCache(persist_dir=tmp_path / "parse")
        assert reread.parse(SRC, "a.php") and reread.hits == 1

    def test_wrong_shape_disk_entry_is_a_miss(self, tmp_path):
        cache = ParseCache(persist_dir=tmp_path / "parse")
        key = ParseCache.key(SRC, "a.php")
        entry = tmp_path / "parse" / key[:2] / f"{key}.pkl"
        entry.parent.mkdir(parents=True)
        entry.write_bytes(pickle.dumps({"not": "a program"}))
        assert isinstance(cache.parse(SRC, "a.php"), ast.Program)
        assert cache.misses == 1

    def test_pickle_drops_the_memo(self, tmp_path):
        cache = ParseCache(persist_dir=tmp_path / "parse", max_entries=7)
        cache.parse(SRC, "a.php")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.persist_dir == cache.persist_dir
        assert clone.max_entries == 7
        assert clone.hits == 0 and clone.misses == 0
        # The clone re-warms from disk, not from shipped memo contents.
        clone.parse(SRC, "a.php")
        assert clone.hits == 1

    def test_memoryless_cache_still_parses(self):
        cache = ParseCache(persist_dir=None)
        assert isinstance(cache.parse(OTHER, "z.php"), ast.Program)


class TestContentDigest:
    def test_stable_and_content_addressed(self):
        assert content_digest(SRC) == content_digest(SRC)
        assert content_digest(SRC) != content_digest(OTHER)
        assert len(content_digest(SRC)) == 64


class TestIncludeGraph:
    def test_update_and_query(self):
        graph = IncludeGraph()
        graph.update_file("a.php", ["lib.php"], digest="d1")
        assert graph.includes_of("a.php") == {"lib.php"}
        assert graph.digest_of("a.php") == "d1"
        assert graph.edge_count == 1 and len(graph) == 1

    def test_update_replaces_out_edges_wholesale(self):
        graph = IncludeGraph()
        graph.update_file("a.php", ["old.php", "keep.php"])
        graph.update_file("a.php", ["keep.php", "new.php"])
        assert graph.includes_of("a.php") == {"keep.php", "new.php"}
        assert graph.includers_of(["old.php"]) == set()
        assert graph.includers_of(["new.php"]) == {"a.php"}

    def test_includers_of_is_transitive(self):
        graph = IncludeGraph()
        graph.update_file("page.php", ["mid.php"])
        graph.update_file("mid.php", ["deep.php"])
        graph.update_file("other.php", [])
        assert graph.includers_of(["deep.php"]) == {"mid.php", "page.php"}
        assert graph.includers_of(["mid.php"]) == {"page.php"}
        assert graph.includers_of(["page.php"]) == set()

    def test_includers_of_terminates_on_cycles(self):
        graph = IncludeGraph()
        graph.update_file("a.php", ["b.php"])
        graph.update_file("b.php", ["a.php"])
        assert graph.includers_of(["a.php"]) == {"a.php", "b.php"}

    def test_remove_file_keeps_reverse_edges_to_it(self):
        # Deleting a shared include must still invalidate its includers:
        # their splice result changes from "spliced lib" to "missing lib".
        graph = IncludeGraph()
        graph.update_file("page.php", ["lib.php"])
        graph.update_file("lib.php", [], digest="d")
        graph.remove_file("lib.php")
        assert graph.includers_of(["lib.php"]) == {"page.php"}
        assert graph.digest_of("lib.php") is None
        assert len(graph) == 1

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "graph.json"
        graph = IncludeGraph(path)
        graph.update_file("a.php", ["lib.php", "util.php"], digest="abc")
        graph.update_file("lib.php", [], digest="def")
        graph.save()
        reloaded = IncludeGraph(path)
        assert reloaded.includes_of("a.php") == {"lib.php", "util.php"}
        assert reloaded.digest_of("a.php") == "abc"
        assert reloaded.includers_of(["lib.php"]) == {"a.php"}
        assert reloaded.edge_count == 2

    def test_corrupt_snapshot_loads_empty(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text("{ not json")
        graph = IncludeGraph(path)
        assert len(graph) == 0 and graph.edge_count == 0

    def test_wrong_version_snapshot_loads_empty(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text('{"version": 99, "files": {"a.php": {"includes": []}}}')
        assert len(IncludeGraph(path)) == 0

    def test_missing_snapshot_loads_empty(self, tmp_path):
        graph = IncludeGraph(tmp_path / "absent.json")
        assert len(graph) == 0
