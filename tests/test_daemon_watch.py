"""Snapshot-diffing edge cases for the daemon's tree watcher.

All timing goes through ``daemonutil.FakeClock`` + ``os.utime``-stamped
mtimes — no real sleeps anywhere.
"""

import os

from daemonutil import FakeClock, TreeDriver

from repro.daemon.watcher import FileStamp, TreeWatcher, diff_snapshots

PHP = "<?php echo 'hello';\n"


def make(tmp_path, debounce=0.0, pattern="*.php"):
    clock = FakeClock()
    driver = TreeDriver(tmp_path / "tree", clock)
    watcher = TreeWatcher(driver.root, pattern=pattern, debounce=debounce, clock=clock)
    return clock, driver, watcher


class TestBasicDiffing:
    def test_initial_poll_reports_everything_created(self, tmp_path):
        _, driver, watcher = make(tmp_path)
        driver.write("a.php", PHP)
        driver.write("sub/b.php", PHP)
        driver.write("notes.txt", "ignored")
        delta = watcher.poll()
        assert sorted(delta.created) == [
            str(driver.path("a.php")),
            str(driver.path("sub/b.php")),
        ]
        assert delta.dirty == sorted(delta.created)
        assert watcher.tracked == 2

    def test_idle_poll_is_empty_and_falsy(self, tmp_path):
        _, driver, watcher = make(tmp_path)
        driver.write("a.php", PHP)
        watcher.poll()
        delta = watcher.poll()
        assert not delta
        assert delta.dirty == [] and delta.gone == []

    def test_content_change_reported_modified(self, tmp_path):
        clock, driver, watcher = make(tmp_path)
        driver.write("a.php", PHP)
        watcher.poll()
        clock.advance(10)
        driver.write("a.php", "<?php echo $_GET['q'];\n")
        delta = watcher.poll()
        assert delta.modified == [str(driver.path("a.php"))]
        assert not delta.created and not delta.deleted

    def test_touch_without_change_reported_modified(self, tmp_path):
        # mtime is the watcher's only change signal; a pure touch is
        # reported dirty and the engine's content-addressed cache then
        # absorbs it as a hit (covered in test_daemon_loop).
        clock, driver, watcher = make(tmp_path)
        driver.write("a.php", PHP)
        watcher.poll()
        clock.advance(10)
        driver.touch("a.php")
        delta = watcher.poll()
        assert delta.modified == [str(driver.path("a.php"))]

    def test_delete_reported(self, tmp_path):
        _, driver, watcher = make(tmp_path)
        driver.write("a.php", PHP)
        watcher.poll()
        driver.remove("a.php")
        delta = watcher.poll()
        assert delta.deleted == [str(driver.path("a.php"))]
        assert delta.gone == delta.deleted and delta.dirty == []
        assert watcher.tracked == 0

    def test_delete_and_recreate_between_polls_is_modified(self, tmp_path):
        clock, driver, watcher = make(tmp_path)
        driver.write("a.php", PHP)
        watcher.poll()
        clock.advance(10)
        driver.remove("a.php")
        driver.write("a.php", "<?php echo 'reborn';\n")
        delta = watcher.poll()
        # Same path, new inode/mtime: one modified entry, not a
        # delete+create pair.
        assert delta.modified == [str(driver.path("a.php"))]
        assert not delta.created and not delta.deleted


class TestMoves:
    def test_rename_detected_as_move(self, tmp_path):
        clock, driver, watcher = make(tmp_path)
        driver.write("old.php", PHP)
        watcher.poll()
        clock.advance(10)
        driver.move("old.php", "new.php")
        delta = watcher.poll()
        assert delta.moved == [(str(driver.path("old.php")), str(driver.path("new.php")))]
        assert not delta.created and not delta.deleted
        # The new path needs a re-audit (records embed the filename);
        # the old path is gone.
        assert delta.dirty == [str(driver.path("new.php"))]
        assert delta.gone == [str(driver.path("old.php"))]

    def test_distinct_stamps_stay_create_plus_delete(self, tmp_path):
        clock, driver, watcher = make(tmp_path)
        driver.write("old.php", PHP)
        watcher.poll()
        clock.advance(10)
        driver.remove("old.php")
        driver.write("new.php", PHP + "// different\n")
        delta = watcher.poll()
        assert delta.created == [str(driver.path("new.php"))]
        assert delta.deleted == [str(driver.path("old.php"))]
        assert delta.moved == []

    def test_diff_snapshots_pairs_moves_deterministically(self):
        stamp = FileStamp(mtime_ns=1, size=10, inode=42)
        delta = diff_snapshots({"a.php": stamp}, {"b.php": stamp})
        assert delta.moved == [("a.php", "b.php")]


class TestDebounce:
    def test_fresh_write_deferred_until_quiet(self, tmp_path):
        clock, driver, watcher = make(tmp_path, debounce=5.0)
        driver.write("a.php", PHP)
        watcher.poll()
        clock.advance(60)
        watcher.poll()  # settle the baseline past the debounce window
        driver.write("a.php", "<?php echo 'mid-write';\n")  # mtime == now
        assert not watcher.poll(), "write inside the window must be deferred"
        clock.advance(6)
        delta = watcher.poll()
        assert delta.modified == [str(driver.path("a.php"))]

    def test_new_file_stays_invisible_until_quiet(self, tmp_path):
        clock, driver, watcher = make(tmp_path, debounce=5.0)
        watcher.poll()
        driver.write("a.php", PHP)
        assert not watcher.poll()
        assert watcher.tracked == 0
        clock.advance(6)
        delta = watcher.poll()
        assert delta.created == [str(driver.path("a.php"))]

    def test_settled_files_pass_straight_through(self, tmp_path):
        clock, driver, watcher = make(tmp_path, debounce=5.0)
        driver.write("a.php", PHP)
        clock.advance(6)
        delta = watcher.poll()
        assert delta.created == [str(driver.path("a.php"))]


class TestRobustness:
    def test_permission_loss_reported_deleted_then_recovers(self, tmp_path, monkeypatch):
        _, driver, watcher = make(tmp_path)
        target = driver.write("a.php", PHP)
        driver.write("b.php", PHP)
        watcher.poll()
        # Simulate read-permission loss via os.access (chmod 000 is not
        # observable when the suite runs as root).
        real_access = os.access

        def deny(path, mode, **kwargs):
            if str(path) == str(target):
                return False
            return real_access(path, mode, **kwargs)

        monkeypatch.setattr(os, "access", deny)
        delta = watcher.poll()
        assert delta.deleted == [str(target)]
        assert watcher.tracked == 1
        monkeypatch.setattr(os, "access", real_access)
        delta = watcher.poll()
        assert delta.created == [str(target)]

    def test_symlink_loop_terminates_and_counts_once(self, tmp_path):
        _, driver, watcher = make(tmp_path)
        driver.write("a.php", PHP)
        driver.symlink_dir("loop", driver.root)  # root/loop -> root
        delta = watcher.poll()
        assert delta.created == [str(driver.path("a.php"))]
        assert watcher.tracked == 1

    def test_dangling_file_symlink_invisible(self, tmp_path):
        _, driver, watcher = make(tmp_path)
        driver.symlink_file("ghost.php", driver.path("missing.php"))
        driver.write("real.php", PHP)
        delta = watcher.poll()
        assert delta.created == [str(driver.path("real.php"))]

    def test_unreadable_subdirectory_skipped_not_fatal(self, tmp_path, monkeypatch):
        _, driver, watcher = make(tmp_path)
        driver.write("ok.php", PHP)
        driver.write("locked/hidden.php", PHP)
        real_scandir = os.scandir

        def scandir(path="."):
            if str(path).endswith("locked"):
                raise PermissionError(13, "denied", str(path))
            return real_scandir(path)

        monkeypatch.setattr(os, "scandir", scandir)
        delta = watcher.poll()
        assert delta.created == [str(driver.path("ok.php"))]
