"""The daemon's HTTP metrics endpoint: live scrapes, port fallback,
clean shutdown — plus the registry's scrape-during-mutation safety."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.daemon import MetricsServer
from repro.daemon.metrics_server import PROMETHEUS_CONTENT_TYPE, parse_bind
from repro.obs import MetricsRegistry


def fetch(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_files_total", "files by outcome").inc(status="ok")
    registry.histogram("repro_file_seconds", "per-file seconds").observe(0.02)
    return registry


class TestEndpoints:
    def test_metrics_text_exposition(self, registry):
        with MetricsServer(registry) as server:
            status, content_type, body = fetch(server.port, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_files_total counter" in body
        assert 'repro_files_total{status="ok"} 1' in body

    def test_metrics_canonical_content_type(self, registry):
        """Prometheus scrapers negotiate on the exact format version."""
        with MetricsServer(registry) as server:
            _status, content_type, _body = fetch(server.port, "/metrics")
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert content_type == PROMETHEUS_CONTENT_TYPE

    def test_metrics_include_quantile_gauges(self, registry):
        with MetricsServer(registry) as server:
            _status, _content_type, body = fetch(server.port, "/metrics")
        assert "# TYPE repro_file_seconds_quantile gauge" in body
        assert 'repro_file_seconds_quantile{quantile="0.5"}' in body

    def test_healthz_json(self, registry):
        health = {"status": "ok", "cycles": 7}
        with MetricsServer(registry, health=lambda: health) as server:
            status, content_type, body = fetch(server.port, "/healthz")
        assert status == 200 and content_type == "application/json"
        assert json.loads(body) == health

    def test_unknown_path_404(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(server.port, "/nope")
            assert err.value.code == 404


class TestScrapeDuringActiveCycle:
    def test_concurrent_mutation_never_corrupts_a_scrape(self, registry):
        """Hammer the registry from a writer thread while scraping: every
        response must be complete, parseable exposition text (regression
        for iterating a mutating dict in ``_samples``)."""
        stop = threading.Event()
        errors = []

        def writer():
            counter = registry.counter("repro_files_total")
            histogram = registry.histogram("repro_file_seconds")
            i = 0
            while not stop.is_set():
                counter.inc(status=f"status-{i % 50}")
                histogram.observe(0.001 * (i % 100), worker=str(i % 20))
                i += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            with MetricsServer(registry) as server:
                for _ in range(25):
                    status, _, body = fetch(server.port, "/metrics")
                    if status != 200:
                        errors.append(status)
                    if "# TYPE repro_files_total counter" not in body:
                        errors.append("missing header")
                    if not body.endswith("\n"):
                        errors.append("truncated body")
        finally:
            stop.set()
            thread.join(timeout=5)
        assert errors == []

    def test_render_is_safe_without_server_too(self, registry):
        stop = threading.Event()

        def writer():
            gauge = registry.gauge("repro_watch_dirty_files")
            i = 0
            while not stop.is_set():
                gauge.set(i, shard=str(i % 64))
                i += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(50):
                registry.render()
        finally:
            stop.set()
            thread.join(timeout=5)


class TestPortHandling:
    def test_port_in_use_falls_back_to_ephemeral(self, registry):
        with MetricsServer(registry) as first:
            second = MetricsServer(registry, port=first.port)
            try:
                assert second.fell_back
                assert second.port != first.port
                second.start()
                status, _, _ = fetch(second.port, "/metrics")
                assert status == 200
            finally:
                second.close()

    def test_requested_port_recorded(self, registry):
        with MetricsServer(registry) as server:
            assert server.requested_port == 0
            assert server.port != 0
            assert not server.fell_back

    def test_parse_bind_forms(self):
        assert parse_bind("9100") == ("127.0.0.1", 9100)
        assert parse_bind(":9100") == ("127.0.0.1", 9100)
        assert parse_bind("0.0.0.0:9100") == ("0.0.0.0", 9100)
        with pytest.raises(ValueError):
            parse_bind("nope")
        with pytest.raises(ValueError):
            parse_bind(":99999")


class TestShutdown:
    def test_close_releases_the_socket(self, registry):
        server = MetricsServer(registry).start()
        port = server.port
        assert fetch(port, "/metrics")[0] == 200
        server.close()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            fetch(port, "/metrics")
        # The port is reusable immediately (no lingering listener).
        rebound = MetricsServer(registry, port=port)
        try:
            assert not rebound.fell_back
        finally:
            rebound.close()
