"""Tests for guards and the instrumentor."""

from repro import WebSSARI
from repro.instrument import (
    GUARD_FUNCTION_NAME,
    GUARD_PHP_SOURCE,
    html_escape,
    sanitize_value,
    sql_escape,
)
from repro.interp import HttpRequest, run_php


class TestGuards:
    def test_html_escape(self):
        assert html_escape("<a href=\"x\">&'") == "&lt;a href=&quot;x&quot;&gt;&amp;&#039;"

    def test_sql_escape(self):
        assert sql_escape("a'b\"c\\d") == "a\\'b\\\"c\\\\d"
        assert sql_escape("x\0y") == "x\\0y"

    def test_sanitize_value_strings(self):
        out = sanitize_value("<script>'\"")
        assert "<" not in out and ">" not in out
        # HTML escaping already entity-encodes the quotes, which also
        # neutralizes them for SQL.
        assert "'" not in out and '"' not in out

    def test_sanitize_value_non_strings_pass(self):
        assert sanitize_value(42) == 42
        assert sanitize_value(None) is None

    def test_guard_php_source_is_runnable(self):
        source = "<?php " + GUARD_PHP_SOURCE + "echo __webssari_sanitize($_GET['x']);"
        env = run_php(source, request=HttpRequest(get={"x": "<i>"}))
        assert "&lt;i&gt;" in env.response_body()


class TestInstrumentorEdgeCases:
    def setup_method(self):
        self.websari = WebSSARI()

    def test_bmc_patch_inserts_after_introduction(self):
        source = "<?php\n$sid = $_GET['sid'];\nDoSQL($sid);\n"
        _, patched = self.websari.patch_source(source, strategy="bmc")
        lines = patched.source.splitlines()
        # Guard appears on the introduction line, before the sink line.
        assert GUARD_FUNCTION_NAME in lines[1]
        assert GUARD_FUNCTION_NAME not in lines[2]

    def test_ts_patch_inserts_before_each_sink(self):
        source = "<?php\n$sid = $_GET['sid'];\nDoSQL($sid);\nDoSQL($sid);\n"
        _, patched = self.websari.patch_source(source, strategy="ts")
        assert patched.source.count(GUARD_FUNCTION_NAME) == 2
        assert patched.num_guards == 2

    def test_guard_counts_vs_edit_counts(self):
        # One fixing variable with two introduction points (the if/else
        # assignments) still counts as ONE guard, even with two edits.
        source = (
            "<?php\n"
            "if ($c) { $x = $_GET['a']; } else { $x = $_POST['b']; }\n"
            "echo $x;\n"
        )
        report, patched = self.websari.patch_source(source, strategy="bmc")
        assert patched.num_guards == 1
        assert patched.num_edits == 2
        assert self.websari.verify_source(patched.source).safe

    def test_hoisted_expression_sink_wrapped(self):
        source = "<?php\necho 'Hello ' . $_GET['name'] . '!';\n"
        _, patched = self.websari.patch_source(source, strategy="bmc")
        assert GUARD_FUNCTION_NAME in patched.source
        assert self.websari.verify_source(patched.source).safe

    def test_hoisted_expression_runtime_behaviour(self):
        source = "<?php\necho 'Hello ' . $_GET['name'] . '!';\n"
        _, patched = self.websari.patch_source(source, strategy="bmc")
        env = run_php(patched.source, request=HttpRequest(get={"name": "<script>x</script>"}))
        body = env.response_body()
        assert "<script>" not in body
        assert body.startswith("Hello ")

    def test_idempotent_edits_deduplicated(self):
        # Two traces through the same introduction span produce one edit.
        source = (
            "<?php\n"
            "$x = $_GET['q'];\n"
            "if ($a) { $y = $x; } else { $y = $x; }\n"
            "echo $y;\n"
        )
        _, patched = self.websari.patch_source(source, strategy="bmc")
        assert patched.source.count(GUARD_FUNCTION_NAME) == 1

    def test_same_line_assignment_and_sink(self):
        # Figure 7's layout: assignment and sink on one line.
        source = "<?php\n$q = \"S $_GET[id]\"; DoSQL($q);\n"
        _, patched_ts = self.websari.patch_source(source, strategy="ts")
        assert self.websari.verify_source(patched_ts.source).safe

    def test_patch_of_safe_source_is_identity(self):
        source = "<?php echo 'nothing to do';"
        _, patched = self.websari.patch_source(source, strategy="bmc")
        assert patched.source == source
        assert patched.num_guards == 0
        assert patched.num_edits == 0

    def test_loop_sink_patch(self):
        source = (
            "<?php\n"
            "while ($row = mysql_fetch_array($r)) {\n"
            "  echo $row;\n"
            "}\n"
        )
        _, patched = self.websari.patch_source(source, strategy="bmc")
        assert self.websari.verify_source(patched.source).safe

    def test_figure6_patch_only_else_branch_needed(self):
        # The then-branch is already sanitized; only tainted flows from
        # the nick variable need no patch at all (GuestCount is clean),
        # so figure 6 verifies safe and needs zero guards.
        source = """<?php
if ($Nick) {
  $tmp = $_GET["nick"];
  echo(htmlspecialchars($tmp));
} else {
  $tmp = "You are the" . $GuestCount . " guest";
  echo($tmp);
}
"""
        report, patched = self.websari.patch_source(source, strategy="bmc")
        assert report.safe
        assert patched.num_guards == 0
