"""The abstract interpretation AI(F(p)) — paper §3.2, Figure 4.

The AI consists of only three instruction forms plus sequencing:

* :class:`TypeAssign` — ``t_x = τ-expression`` (from assignments and from
  UIC/sanitizer postconditions),
* :class:`Assertion` — ``assert(X, τ_r)`` (from SOC preconditions),
* :class:`Branch` — ``if b_k then ... else ...`` with a *nondeterministic*
  boolean ``b_k`` (from conditionals; loops arrive here already
  deconstructed into selections),
* :class:`AIStop` — ``stop``.

Type expressions reuse the :mod:`repro.ir.commands` expression language
(``VarRef``/``Const``/``LevelConst``/``Join``): a constant types as ⊥, a
join types as the least upper bound of its operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.commands import Expr
from repro.php.span import Span

__all__ = [
    "AIInstruction",
    "TypeAssign",
    "Assertion",
    "Branch",
    "AIStop",
    "AISeq",
    "AIProgram",
    "count_instructions",
    "branch_variables",
    "assertions_of",
]


class AIInstruction:
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TypeAssign(AIInstruction):
    """``t_var = expr``."""

    var: str
    expr: Expr
    span: Span

    def __str__(self) -> str:
        return f"t_{self.var} = {self.expr}"


@dataclass(frozen=True, slots=True)
class Assertion(AIInstruction):
    """``assert(X, τ_r)``: ∀x∈X it must hold that ``t_x < τ_r``.

    ``assert_id`` numbers assertions in program order; ``function`` and
    the spans identify the originating SOC call for reports.
    """

    assert_id: int
    variables: tuple[str, ...]
    required: object
    function: str
    span: Span
    arg_spans: tuple[Span, ...] = ()
    vuln_class: object = None

    def __str__(self) -> str:
        names = ", ".join(f"t_{v}" for v in self.variables)
        return f"assert({names} < {self.required})  # {self.function}"


@dataclass(frozen=True, slots=True)
class Branch(AIInstruction):
    """``if b_id then <then> else <orelse>`` — nondeterministic condition."""

    branch_id: int
    then: "AISeq"
    orelse: "AISeq"
    span: Span

    @property
    def variable(self) -> str:
        return f"b{self.branch_id}"

    def __str__(self) -> str:
        return f"if {self.variable} then {{ {self.then} }} else {{ {self.orelse} }}"


@dataclass(frozen=True, slots=True)
class AIStop(AIInstruction):
    span: Span

    def __str__(self) -> str:
        return "stop"


@dataclass(frozen=True, slots=True)
class AISeq(AIInstruction):
    instructions: tuple[AIInstruction, ...] = ()

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        return "; ".join(str(i) for i in self.instructions)


@dataclass
class AIProgram:
    """A translated program plus its nondeterministic variable inventory BN."""

    body: AISeq
    num_branches: int = 0
    num_assertions: int = 0
    warnings: list[str] = field(default_factory=list)

    def __iter__(self):
        return iter(self.body)


def count_instructions(instruction: AIInstruction) -> int:
    if isinstance(instruction, AISeq):
        return sum(count_instructions(i) for i in instruction.instructions)
    if isinstance(instruction, Branch):
        return 1 + count_instructions(instruction.then) + count_instructions(instruction.orelse)
    return 1


def branch_variables(instruction: AIInstruction) -> list[str]:
    """All nondeterministic boolean variables (BN) in declaration order."""
    if isinstance(instruction, AISeq):
        out: list[str] = []
        for child in instruction.instructions:
            out.extend(branch_variables(child))
        return out
    if isinstance(instruction, Branch):
        return (
            [instruction.variable]
            + branch_variables(instruction.then)
            + branch_variables(instruction.orelse)
        )
    return []


def assertions_of(instruction: AIInstruction) -> list[Assertion]:
    """All assertions in program order."""
    if isinstance(instruction, AISeq):
        out: list[Assertion] = []
        for child in instruction.instructions:
            out.extend(assertions_of(child))
        return out
    if isinstance(instruction, Branch):
        return assertions_of(instruction.then) + assertions_of(instruction.orelse)
    if isinstance(instruction, Assertion):
        return [instruction]
    return []
