"""Program diameter of the abstract interpretation.

The completeness argument of the paper (§3.3, citing Kroening &
Strichman [16]): "AI(F(p)) is loop-free and its flow chart forms a
directed acyclic graph (DAG), implying a fixed program diameter" — so
unrolling the transition relation for ``diameter`` steps makes BMC
complete, not merely bounded.

:func:`ai_diameter` computes that bound — the number of atomic
instructions on the longest root-to-exit path — directly on the AI tree:

* an atomic instruction contributes 1,
* a sequence contributes the sum of its children,
* a branch contributes 1 (the branch itself) plus the longer arm.

:func:`verify_loop_free` double-checks the structural invariant the
translation guarantees (no back edges can even be expressed in the AI
instruction set, but the check documents and enforces the assumption
the BMC relies on).
"""

from __future__ import annotations

from repro.ai.instructions import (
    AIInstruction,
    AIProgram,
    AISeq,
    AIStop,
    Assertion,
    Branch,
    TypeAssign,
)

__all__ = ["ai_diameter", "verify_loop_free"]


def ai_diameter(program: AIProgram | AIInstruction) -> int:
    """Length (in atomic instructions) of the longest execution path."""
    body = program.body if isinstance(program, AIProgram) else program
    return _longest(body)


def _longest(instruction: AIInstruction) -> int:
    if isinstance(instruction, AISeq):
        return sum(_longest(child) for child in instruction.instructions)
    if isinstance(instruction, Branch):
        return 1 + max(_longest(instruction.then), _longest(instruction.orelse))
    if isinstance(instruction, (TypeAssign, Assertion, AIStop)):
        return 1
    raise TypeError(f"unknown AI instruction {type(instruction).__name__}")


def verify_loop_free(program: AIProgram | AIInstruction) -> bool:
    """Assert the AI is a pure tree of Seq/Branch/atomic nodes with no
    node visited twice (i.e. the flow chart is a DAG).  Returns True or
    raises ``ValueError``."""
    body = program.body if isinstance(program, AIProgram) else program
    seen: set[int] = set()

    def walk(node: AIInstruction) -> None:
        identity = id(node)
        if identity in seen:
            raise ValueError("AI instruction graph shares a node (not a tree)")
        seen.add(identity)
        if isinstance(node, AISeq):
            for child in node.instructions:
                walk(child)
        elif isinstance(node, Branch):
            walk(node.then)
            walk(node.orelse)
        elif not isinstance(node, (TypeAssign, Assertion, AIStop)):
            raise TypeError(f"unknown AI instruction {type(node).__name__}")

    walk(body)
    return True
