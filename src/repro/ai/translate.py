"""Translation F(p) → AI(F(p)) — the interpretation procedure of Figure 4.

==============================  =========================================
Filtered result F(p)            Abstract interpretation AI(F(p))
==============================  =========================================
``x = e``                       ``t_x = t_e`` (t_n = ⊥, t_{e~e'} = join)
``fi(X)``                       ``∀x∈X: t_x = τ`` (postcondition)
``fo(X)``                       ``assert(X, τ_r)`` (precondition)
``stop``                        ``stop``
``if e then c1 else c2``        ``if b_e then AI(c1) else AI(c2)``
``while e do c``                ``if b_e then AI(c)``
``c1; c2``                      ``AI(c1); AI(c2)``
==============================  =========================================

Loop deconstruction into selections is what gives the AI a fixed diameter
(a loop-free DAG), which is what makes bounded model checking complete
for this problem (paper §3.3).
"""

from __future__ import annotations

from repro.ai.instructions import (
    AIProgram,
    AISeq,
    AIStop,
    Assertion,
    Branch,
    TypeAssign,
)
from repro.ir.commands import (
    Assign,
    Command,
    If,
    InputCall,
    LevelConst,
    Seq,
    SinkCall,
    Stop,
    While,
)
from repro.ir.filter import FilterResult

__all__ = ["translate", "translate_filter_result"]


class _Translator:
    def __init__(self) -> None:
        self.next_branch = 0
        self.next_assert = 0
        self.warnings: list[str] = []

    def seq(self, command: Seq) -> AISeq:
        out = []
        for child in command.commands:
            instruction = self.command(child)
            if instruction is not None:
                out.append(instruction)
        return AISeq(tuple(out))

    def command(self, command: Command):
        if isinstance(command, Seq):
            return self.seq(command)
        if isinstance(command, Assign):
            return TypeAssign(command.target, command.value, command.span)
        if isinstance(command, InputCall):
            if not command.targets:
                return None  # environment tainting is handled by the filter
            assigns = tuple(
                TypeAssign(target, LevelConst(command.level), command.span)
                for target in command.targets
            )
            if len(assigns) == 1:
                return assigns[0]
            return AISeq(assigns)
        if isinstance(command, SinkCall):
            self.next_assert += 1
            return Assertion(
                assert_id=self.next_assert,
                variables=command.arguments,
                required=command.required,
                function=command.function,
                span=command.span,
                arg_spans=command.arg_spans,
                vuln_class=command.vuln_class,
            )
        if isinstance(command, Stop):
            return AIStop(command.span)
        if isinstance(command, If):
            self.next_branch += 1
            branch_id = self.next_branch
            then = self.seq(command.then)
            orelse = self.seq(command.orelse)
            return Branch(branch_id, then, orelse, command.span)
        if isinstance(command, While):
            # Figure 4: while e do c  →  if b_e then AI(c).
            self.next_branch += 1
            branch_id = self.next_branch
            body = self.seq(command.body)
            return Branch(branch_id, body, AISeq(()), command.span)
        raise TypeError(f"unknown command {type(command).__name__}")


def translate(commands: Seq) -> AIProgram:
    """Translate a filtered command sequence into its AI."""
    translator = _Translator()
    body = translator.seq(commands)
    return AIProgram(
        body=body,
        num_branches=translator.next_branch,
        num_assertions=translator.next_assert,
        warnings=translator.warnings,
    )


def translate_filter_result(result: FilterResult) -> AIProgram:
    """Translate a :class:`FilterResult`, forwarding its warnings."""
    program = translate(result.commands)
    program.warnings = list(result.warnings) + program.warnings
    return program
