"""Abstract interpretation: AI instructions, Figure-4 translation, renaming ρ."""

from repro.ai.diameter import ai_diameter, verify_loop_free
from repro.ai.instructions import (
    AIInstruction,
    AIProgram,
    AISeq,
    AIStop,
    Assertion,
    Branch,
    TypeAssign,
    assertions_of,
    branch_variables,
    count_instructions,
)
from repro.ai.renaming import (
    GuardLiteral,
    IndexedVar,
    RenamedAssert,
    RenamedAssign,
    RenamedProgram,
    RenamedStop,
    rename,
)
from repro.ai.translate import translate, translate_filter_result

__all__ = [
    "ai_diameter",
    "verify_loop_free",
    "AIInstruction",
    "AIProgram",
    "AISeq",
    "AIStop",
    "Assertion",
    "Branch",
    "TypeAssign",
    "assertions_of",
    "branch_variables",
    "count_instructions",
    "GuardLiteral",
    "IndexedVar",
    "RenamedAssert",
    "RenamedAssign",
    "RenamedProgram",
    "RenamedStop",
    "rename",
    "translate",
    "translate_filter_result",
]
