"""Graphviz (DOT) export of AI programs.

The paper argues completeness from the AI's flow chart being a DAG
(§3.3); this module renders that flow chart so it can be *looked at* —
a debugging and teaching aid for understanding what the filter and the
Figure 4 translation produced.  Branch nodes show their nondeterministic
variable, assertions are highlighted, and edges carry then/else labels.

Pure string generation; no graphviz dependency is required to produce
the DOT text (rendering it is up to the user).
"""

from __future__ import annotations

from repro.ai.instructions import (
    AIInstruction,
    AIProgram,
    AISeq,
    AIStop,
    Assertion,
    Branch,
    TypeAssign,
)

__all__ = ["ai_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


class _DotBuilder:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self._next_id = 0

    def node(self, label: str, shape: str = "box", style: str = "") -> str:
        name = f"n{self._next_id}"
        self._next_id += 1
        extra = f", style={style}" if style else ""
        self.lines.append(f'  {name} [label="{_escape(label)}", shape={shape}{extra}];')
        return name

    def edge(self, src: str, dst: str, label: str = "") -> None:
        suffix = f' [label="{_escape(label)}"]' if label else ""
        self.lines.append(f"  {src} -> {dst}{suffix};")


def _emit(builder: _DotBuilder, instruction: AIInstruction, entry_from: list[tuple[str, str]]) -> list[tuple[str, str]]:
    """Emit nodes for `instruction`; wire `entry_from` (node, edge-label)
    pairs into its entry; return the dangling exits."""
    if isinstance(instruction, AISeq):
        current = entry_from
        for child in instruction.instructions:
            current = _emit(builder, child, current)
        return current
    if isinstance(instruction, TypeAssign):
        node = builder.node(str(instruction))
        for src, label in entry_from:
            builder.edge(src, node, label)
        return [(node, "")]
    if isinstance(instruction, Assertion):
        node = builder.node(str(instruction), shape="octagon", style='"filled"')
        for src, label in entry_from:
            builder.edge(src, node, label)
        return [(node, "")]
    if isinstance(instruction, AIStop):
        node = builder.node("stop", shape="doublecircle")
        for src, label in entry_from:
            builder.edge(src, node, label)
        return []  # execution ends here
    if isinstance(instruction, Branch):
        node = builder.node(f"if {instruction.variable}", shape="diamond")
        for src, label in entry_from:
            builder.edge(src, node, label)
        then_exits = _emit(builder, instruction.then, [(node, instruction.variable)])
        else_exits = _emit(builder, instruction.orelse, [(node, f"¬{instruction.variable}")])
        return then_exits + else_exits
    raise TypeError(f"unknown AI instruction {type(instruction).__name__}")


def ai_to_dot(program: AIProgram | AIInstruction, title: str = "AI(F(p))") -> str:
    """Render an AI program's flow chart as Graphviz DOT text."""
    body = program.body if isinstance(program, AIProgram) else program
    builder = _DotBuilder()
    start = builder.node("start", shape="circle")
    exits = _emit(builder, body, [(start, "")])
    if exits:
        end = builder.node("end", shape="doublecircle")
        for src, label in exits:
            builder.edge(src, end, label)
    header = f'digraph "{_escape(title)}" {{\n  rankdir=TB;\n  node [fontname="monospace"];\n'
    return header + "\n".join(builder.lines) + "\n}\n"
