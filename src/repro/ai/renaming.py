"""Single-assignment renaming ρ — paper §3.3.2 (CBMC-style SSA without φ).

Each assignment to a variable ``v`` bumps its version counter; the
occurrence of ``v`` at a program point is renamed to ``v^α`` where α is
the number of assignments made to ``v`` so far.  Renaming is *linear*:
both arms of a branch advance the same global counters, and the guard of
each assignment (the conjunction of enclosing branch literals) encodes
conditionality — exactly the scheme visible in the paper's Figure 6,
where the else-branch assignment to ``tmp`` receives index j+2 and its
constraint selects between the new value and ``t_tmp^{j+1}`` (the
then-branch's output version) based on ``¬b_Nick``.

The output is a flat, ordered list of guarded events
(:class:`RenamedAssign` / :class:`RenamedAssert` / :class:`RenamedStop`)
— the exact program the constraint generator (Figure 5) consumes and the
trace reconstructor walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ai.instructions import (
    AIInstruction,
    AIProgram,
    AISeq,
    AIStop,
    Assertion,
    Branch,
    TypeAssign,
)
from repro.ir.commands import Const, Expr, Join, LevelConst, VarRef
from repro.php.span import Span

__all__ = [
    "IndexedVar",
    "GuardLiteral",
    "RenamedAssign",
    "RenamedAssert",
    "RenamedStop",
    "RenamedProgram",
    "rename",
]


@dataclass(frozen=True, slots=True)
class IndexedVar:
    """``v^index`` — version ``index`` of variable ``v`` (0 = initial)."""

    name: str
    index: int

    def __str__(self) -> str:
        return f"t_{self.name}^{self.index}"


@dataclass(frozen=True, slots=True)
class GuardLiteral:
    """One conjunct of a guard: branch variable ``b{branch_id}`` with polarity."""

    branch_id: int
    positive: bool

    @property
    def variable(self) -> str:
        return f"b{self.branch_id}"

    def __str__(self) -> str:
        return self.variable if self.positive else f"¬{self.variable}"


Guard = tuple[GuardLiteral, ...]


def guard_str(guard: Guard) -> str:
    return " ∧ ".join(str(lit) for lit in guard) if guard else "true"


@dataclass(frozen=True, slots=True)
class RenamedAssign:
    """``t_v^index = guard ? expr : t_v^{index-1}`` (Figure 5, row 2).

    ``expr`` is the renamed right-hand side: every :class:`VarRef` inside
    has been replaced by an :class:`IndexedVar`.
    """

    target: IndexedVar
    expr: object  # Expr over IndexedVar / Const / LevelConst / Join
    guard: Guard
    span: Span

    def __str__(self) -> str:
        return f"{self.target} = {guard_str(self.guard)} ? {_expr_str(self.expr)} : t_{self.target.name}^{self.target.index - 1}"


@dataclass(frozen=True, slots=True)
class RenamedAssert:
    """``guard ⇒ ∧_{x∈X} t_x^αx < τ_r`` (Figure 5, row 3)."""

    assert_id: int
    variables: tuple[IndexedVar, ...]
    required: object
    guard: Guard
    function: str
    span: Span
    arg_spans: tuple[Span, ...] = ()
    vuln_class: object = None

    def __str__(self) -> str:
        names = ", ".join(str(v) for v in self.variables)
        return f"{guard_str(self.guard)} ⇒ ({names}) < {self.required}"


@dataclass(frozen=True, slots=True)
class RenamedStop:
    guard: Guard
    span: Span

    def __str__(self) -> str:
        return f"{guard_str(self.guard)} ⇒ stop"


RenamedEvent = RenamedAssign | RenamedAssert | RenamedStop


@dataclass
class RenamedProgram:
    """Flat single-assignment form of an AI program."""

    events: list[RenamedEvent] = field(default_factory=list)
    #: Final version index per variable (0 if never assigned).
    final_versions: dict[str, int] = field(default_factory=dict)
    #: Branch variable names in declaration order (the set BN).
    branch_variables: list[str] = field(default_factory=list)
    num_assertions: int = 0
    #: Source span of the statement each branch variable abstracts.  F(p)
    #: drops the concrete condition, so this is the only link the witness
    #: replayer has from a ``b_k`` decision back to a testable condition.
    branch_spans: dict[str, Span] = field(default_factory=dict)

    def assertions(self) -> list[RenamedAssert]:
        return [e for e in self.events if isinstance(e, RenamedAssert)]

    def assigns(self) -> list[RenamedAssign]:
        return [e for e in self.events if isinstance(e, RenamedAssign)]

    def variables(self) -> list[str]:
        return sorted(self.final_versions)


class _Renamer:
    def __init__(self) -> None:
        self.versions: dict[str, int] = {}
        self.events: list[RenamedEvent] = []
        self.branch_variables: list[str] = []
        self.branch_spans: dict[str, Span] = {}
        self.num_assertions = 0

    def current(self, name: str) -> IndexedVar:
        return IndexedVar(name, self.versions.get(name, 0))

    def bump(self, name: str) -> IndexedVar:
        self.versions[name] = self.versions.get(name, 0) + 1
        return IndexedVar(name, self.versions[name])

    def rename_expr(self, expr: Expr):
        if isinstance(expr, VarRef):
            return self.current(expr.name)
        if isinstance(expr, (Const, LevelConst)):
            return expr
        if isinstance(expr, Join):
            return Join(tuple(self.rename_expr(op) for op in expr.operands))
        raise TypeError(f"unknown type expression {type(expr).__name__}")

    def walk(self, instruction: AIInstruction, guard: Guard) -> None:
        if isinstance(instruction, AISeq):
            for child in instruction.instructions:
                self.walk(child, guard)
            return
        if isinstance(instruction, TypeAssign):
            renamed_expr = self.rename_expr(instruction.expr)
            target = self.bump(instruction.var)
            self.events.append(RenamedAssign(target, renamed_expr, guard, instruction.span))
            return
        if isinstance(instruction, Assertion):
            variables = tuple(self.current(v) for v in instruction.variables)
            self.num_assertions += 1
            self.events.append(
                RenamedAssert(
                    assert_id=instruction.assert_id,
                    variables=variables,
                    required=instruction.required,
                    guard=guard,
                    function=instruction.function,
                    span=instruction.span,
                    arg_spans=instruction.arg_spans,
                    vuln_class=instruction.vuln_class,
                )
            )
            return
        if isinstance(instruction, AIStop):
            self.events.append(RenamedStop(guard, instruction.span))
            return
        if isinstance(instruction, Branch):
            self.branch_variables.append(instruction.variable)
            self.branch_spans[instruction.variable] = instruction.span
            then_guard = guard + (GuardLiteral(instruction.branch_id, True),)
            else_guard = guard + (GuardLiteral(instruction.branch_id, False),)
            self.walk(instruction.then, then_guard)
            self.walk(instruction.orelse, else_guard)
            return
        raise TypeError(f"unknown AI instruction {type(instruction).__name__}")


def rename(program: AIProgram) -> RenamedProgram:
    """Apply the renaming procedure ρ to an AI program."""
    renamer = _Renamer()
    renamer.walk(program.body, ())
    return RenamedProgram(
        events=renamer.events,
        final_versions=dict(renamer.versions),
        branch_variables=renamer.branch_variables,
        num_assertions=renamer.num_assertions,
        branch_spans=renamer.branch_spans,
    )


def _expr_str(expr) -> str:
    if isinstance(expr, Join):
        return "(" + " ⊔ ".join(_expr_str(op) for op in expr.operands) + ")"
    return str(expr)
