"""The filter: PHP AST → F(p) command sequences (paper §3.2).

``F(p)`` preserves only assignments, function calls, and conditional
structure; everything else is discarded.  User-defined function calls
are unfolded (inlined) at each call site with α-renamed locals, and
library calls are interpreted through the :class:`~repro.policy.Prelude`.

Modeling decisions (each an over-approximation, i.e. sound for
may-taint analysis):

* Conditions are nondeterministic; their sub-expressions are still
  evaluated for side effects (``while ($row = mysql_fetch_array($r))``).
* Arrays are element-insensitive: ``$a['k']`` reads/writes the scalar
  type of ``$a``; element writes are weak updates (join with the old
  type).  Superglobal elements read as the superglobal's level.
* Objects are field-sensitive at depth one: ``$obj->p`` is the variable
  ``obj->p``.
* Loops keep their :class:`~repro.ir.commands.While` form; the AI stage
  deconstructs them into selections.  Loop-condition side effects are
  replayed at the end of the body so every iteration observes them.
* ``switch`` is modeled as a series of independent optional branches,
  which over-approximates fall-through.
* Early ``return`` inside an unfolded function falls through (the
  remainder of the body is still analyzed) — again an over-approximation.
* ``extract()``-style calls make reads of statically-never-assigned
  variables return ⊤ (the call may have defined them from untrusted data).
* Recursive calls beyond ``max_unfold_depth`` degrade to taint
  propagation (join of arguments) with a warning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.commands import (
    Assign,
    Command,
    Const,
    Expr,
    If,
    InputCall,
    Join,
    LevelConst,
    Seq,
    SinkCall,
    Stop,
    VarRef,
    While,
    join_exprs,
)
from repro.ir.unfold import FunctionTable, collect_program_facts
from repro.php import ast_nodes as ast
from repro.php.span import Span
from repro.policy.prelude import EffectKind, Prelude, default_php_prelude

__all__ = ["FilterResult", "ProgramFilter", "filter_program", "filter_source"]

#: Separator for scope-qualified (inlined) variable names.  Chosen so
#: synthetic names can never collide with PHP variable names.
SCOPE_SEP = "::"
TEMP_PREFIX = "%tmp"


@dataclass
class FilterResult:
    """The filtered program plus bookkeeping the later stages need."""

    commands: Seq
    warnings: list[str] = field(default_factory=list)
    #: Maps IR variable names back to PHP variable names ('' for temps).
    functions: FunctionTable | None = None

    def __iter__(self):
        return iter(self.commands)


def php_name_of(ir_name: str) -> str | None:
    """The original PHP variable name for an IR name, None for synthetics
    (temporaries and function-return slots)."""
    base = ir_name.rsplit(SCOPE_SEP, 1)[-1]
    if base.startswith("%"):
        return None
    return base


class _Scope:
    """Variable-name resolution for one (possibly inlined) activation.

    ``receiver`` is set when the activation is an unfolded *method* call:
    it is the caller-side IR name of the object, so ``$this->prop``
    resolves to the field-sensitive name ``<receiver>->prop``.
    """

    def __init__(self, prefix: str = "", receiver: str | None = None) -> None:
        self.prefix = prefix
        self.receiver = receiver
        self._globals: set[str] = set()

    def declare_global(self, name: str) -> None:
        self._globals.add(name)

    def resolve(self, name: str) -> str:
        if not self.prefix or name in self._globals:
            return name
        return f"{self.prefix}{SCOPE_SEP}{name}"


class ProgramFilter:
    """Filters one resolved program into an F(p) command sequence."""

    def __init__(
        self,
        prelude: Prelude | None = None,
        max_unfold_depth: int = 3,
        sanitize_in_place: bool = True,
    ) -> None:
        self.prelude = prelude if prelude is not None else default_php_prelude()
        self.max_unfold_depth = max_unfold_depth
        #: Paper-faithful Figure 6 semantics: ``htmlspecialchars($x)``
        #: updates t_x itself (uf_i postcondition).  This is UNSOUND for
        #: patterns like ``$b = htmlspecialchars($a); echo $a;`` — the
        #: runtime $a keeps the payload while the model calls it clean —
        #: a false negative inherited from the paper's model and
        #: documented by tests/test_model_unsoundness.py.  Set False for
        #: the sound pure-function semantics (only the call's result is
        #: clean).
        self.sanitize_in_place = sanitize_in_place
        self._temp_counter = 0
        self._inline_counter = 0
        self._warnings: list[str] = []
        self._commands_stack: list[list[Command]] = []
        self._call_stack: list[str] = []
        self._facts = None

    # -- public API ---------------------------------------------------------

    def run(self, program: ast.Program) -> FilterResult:
        tainters = frozenset(
            name
            for name in self._tainter_names()
        )
        self._facts = collect_program_facts(program, tainters)
        top = _Scope()
        commands = self._filter_statements(program.statements, top)
        return FilterResult(
            commands=Seq(tuple(commands)),
            warnings=list(self._warnings),
            functions=self._facts.functions,
        )

    def _tainter_names(self) -> set[str]:
        names = set()
        for candidate in ("extract", "import_request_variables", "parse_str", "mb_parse_str"):
            effect = self.prelude.function_effect(candidate)
            if effect is not None and effect.kind is EffectKind.TAINT_ENVIRONMENT:
                names.add(candidate)
        return names

    # -- helpers --------------------------------------------------------------

    def _fresh_temp(self) -> str:
        self._temp_counter += 1
        return f"{TEMP_PREFIX}{self._temp_counter}"

    def _warn(self, message: str) -> None:
        self._warnings.append(message)

    def _emit(self, command: Command) -> None:
        self._commands_stack[-1].append(command)

    def _collect(self, fn) -> list[Command]:
        """Run ``fn`` with a fresh command buffer; return what it emitted."""
        self._commands_stack.append([])
        try:
            fn()
        finally:
            buffer = self._commands_stack.pop()
        return buffer

    # -- statements --------------------------------------------------------------

    def _filter_statements(self, statements, scope: _Scope) -> list[Command]:
        def go():
            for stmt in statements:
                self._filter_statement(stmt, scope)

        return self._collect(go)

    def _filter_statement(self, stmt: ast.Statement, scope: _Scope) -> None:
        if isinstance(stmt, ast.InlineHTML):
            return  # constant output: trivially satisfies any sink policy
        if isinstance(stmt, ast.ExpressionStatement):
            self._filter_expr(stmt.expression, scope)
            return
        if isinstance(stmt, ast.Echo):
            for arg in stmt.arguments:
                self._emit_sink("echo", [arg], stmt.span, scope)
            return
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self._filter_statement(child, scope)
            return
        if isinstance(stmt, ast.If):
            self._filter_if(stmt, scope)
            return
        if isinstance(stmt, ast.While):
            self._filter_expr(stmt.condition, scope)
            body = self._filter_statements([stmt.body], scope)
            cond_replay = self._collect(lambda: self._filter_expr(stmt.condition, scope))
            self._emit(While(Seq(tuple(body + cond_replay)), stmt.span))
            return
        if isinstance(stmt, ast.DoWhile):
            # Body runs at least once, then behaves like a while loop.
            for child in [stmt.body]:
                self._filter_statement(child, scope)
            self._filter_expr(stmt.condition, scope)
            body = self._filter_statements([stmt.body], scope)
            cond_replay = self._collect(lambda: self._filter_expr(stmt.condition, scope))
            self._emit(While(Seq(tuple(body + cond_replay)), stmt.span))
            return
        if isinstance(stmt, ast.For):
            for expr in stmt.init:
                self._filter_expr(expr, scope)
            for expr in stmt.condition:
                self._filter_expr(expr, scope)

            def body_fn():
                self._filter_statement(stmt.body, scope)
                for expr in stmt.update:
                    self._filter_expr(expr, scope)
                for expr in stmt.condition:
                    self._filter_expr(expr, scope)

            self._emit(While(Seq(tuple(self._collect(body_fn))), stmt.span))
            return
        if isinstance(stmt, ast.Foreach):
            subject_type = self._filter_expr(stmt.subject, scope)

            def body_fn():
                if stmt.key_var is not None:
                    self._assign_target(stmt.key_var, subject_type, stmt.span, scope)
                self._assign_target(stmt.value_var, subject_type, stmt.span, scope)
                self._filter_statement(stmt.body, scope)

            self._emit(While(Seq(tuple(self._collect(body_fn))), stmt.span))
            return
        if isinstance(stmt, ast.Switch):
            self._filter_expr(stmt.subject, scope)
            for case in stmt.cases:
                if case.test is not None:
                    self._filter_expr(case.test, scope)
                branch = self._filter_statements(case.body, scope)
                self._emit(If(Seq(tuple(branch)), Seq(()), case.span))
            return
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return  # control only; no information flow
        if isinstance(stmt, ast.Return):
            value: Expr = Const()
            if stmt.value is not None:
                value = self._filter_expr(stmt.value, scope)
            if self._call_stack:
                ret_name = scope.resolve("%ret")
                self._emit(Assign(ret_name, value, stmt.span))
            else:
                self._emit(Stop(stmt.span))
            return
        if isinstance(stmt, (ast.FunctionDecl, ast.ClassDecl)):
            return  # collected in the pre-pass; unfolded at call sites
        if isinstance(stmt, ast.GlobalStatement):
            for name in stmt.names:
                scope.declare_global(name)
            return
        if isinstance(stmt, ast.StaticStatement):
            for var in stmt.variables:
                if var.default is not None:
                    value = self._filter_expr(var.default, scope)
                    self._emit(Assign(scope.resolve(var.name), value, stmt.span))
            return
        if isinstance(stmt, ast.UnsetStatement):
            for operand in stmt.operands:
                if isinstance(operand, ast.Variable):
                    self._emit(Assign(scope.resolve(operand.name), Const(), stmt.span))
            return
        self._warn(f"unhandled statement {type(stmt).__name__} at {stmt.span}")

    def _filter_if(self, stmt: ast.If, scope: _Scope) -> None:
        self._filter_expr(stmt.condition, scope)
        then_cmds = self._filter_statements([stmt.then], scope)

        # elseif chains nest as else branches.
        def build_orelse(index: int) -> list[Command]:
            if index < len(stmt.elseifs):
                clause = stmt.elseifs[index]
                cond_cmds = self._collect(lambda: self._filter_expr(clause.condition, scope))
                body_cmds = self._filter_statements([clause.body], scope)
                rest = build_orelse(index + 1)
                return cond_cmds + [If(Seq(tuple(body_cmds)), Seq(tuple(rest)), clause.span)]
            if stmt.orelse is not None:
                return self._filter_statements([stmt.orelse], scope)
            return []

        orelse_cmds = build_orelse(0)
        self._emit(If(Seq(tuple(then_cmds)), Seq(tuple(orelse_cmds)), stmt.span))

    # -- expressions ----------------------------------------------------------------

    def _filter_expr(self, expr: ast.Expression, scope: _Scope) -> Expr:
        if isinstance(expr, ast.Literal):
            return Const()
        if isinstance(expr, ast.Variable):
            return self._read_variable(expr.name, scope)
        if isinstance(expr, ast.ArrayDim):
            return self._read_array_dim(expr, scope)
        if isinstance(expr, ast.PropertyFetch):
            return self._read_property(expr, scope)
        if isinstance(expr, ast.StaticPropertyFetch):
            return VarRef(f"{expr.class_name}::{expr.property}")
        if isinstance(expr, ast.InterpolatedString):
            parts = [
                self._filter_expr(part, scope)
                for part in expr.parts
                if isinstance(part, ast.Expression)
            ]
            return join_exprs(parts)
        if isinstance(expr, ast.Binary):
            left = self._filter_expr(expr.left, scope)
            right = self._filter_expr(expr.right, scope)
            if expr.op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||", "and", "or", "xor"):
                return Const()  # boolean results carry no string content
            return join_exprs([left, right])
        if isinstance(expr, ast.Unary):
            operand = self._filter_expr(expr.operand, scope)
            if expr.op == "!":
                return Const()
            return operand
        if isinstance(expr, ast.Cast):
            operand = self._filter_expr(expr.operand, scope)
            if expr.target in ("int", "integer", "bool", "boolean", "float", "double", "real"):
                return Const()  # numeric casts sanitize
            return operand
        if isinstance(expr, ast.Ternary):
            self._filter_expr(expr.condition, scope)
            branches: list[Expr] = []
            if expr.then is not None:
                branches.append(self._filter_expr(expr.then, scope))
            else:
                branches.append(self._filter_expr(expr.condition, scope))
            branches.append(self._filter_expr(expr.orelse, scope))
            return join_exprs(branches)
        if isinstance(expr, ast.Assign):
            return self._filter_assign(expr, scope)
        if isinstance(expr, ast.ListAssign):
            value = self._filter_expr(expr.value, scope)
            for target in expr.targets:
                if target is not None:
                    self._assign_target(target, value, expr.span, scope)
            return value
        if isinstance(expr, ast.IncDec):
            # ++/-- keeps the variable's type; no command needed.
            if isinstance(expr.target, ast.Variable):
                return VarRef(scope.resolve(expr.target.name))
            return Const()
        if isinstance(expr, ast.FunctionCall):
            return self._filter_call(expr, scope)
        if isinstance(expr, ast.MethodCall):
            return self._filter_method_call(expr, scope)
        if isinstance(expr, ast.StaticCall):
            arg_types = [self._filter_expr(a, scope) for a in expr.args]
            return join_exprs(arg_types)
        if isinstance(expr, ast.New):
            if (
                self._facts is not None
                and self._facts.methods.get_class(expr.class_name) is not None
            ):
                temp = self._fresh_temp()
                self._construct_object(expr, temp, scope)
                return VarRef(temp)
            arg_types = [self._filter_expr(a, scope) for a in expr.args]
            return join_exprs(arg_types)
        if isinstance(expr, ast.IssetExpr):
            for operand in expr.operands:
                self._filter_expr(operand, scope)
            return Const()
        if isinstance(expr, ast.EmptyExpr):
            self._filter_expr(expr.operand, scope)
            return Const()
        if isinstance(expr, ast.ErrorSuppress):
            return self._filter_expr(expr.operand, scope)
        if isinstance(expr, ast.IncludeExpr):
            # Statically-resolvable includes were spliced already; a
            # dynamic include is a no-op for flow purposes.
            self._filter_expr(expr.path, scope)
            return Const()
        if isinstance(expr, ast.ExitExpr):
            if expr.argument is not None:
                self._emit_sink("exit", [expr.argument], expr.span, scope)
            self._emit(Stop(expr.span))
            return Const()
        if isinstance(expr, ast.PrintExpr):
            self._emit_sink("print", [expr.argument], expr.span, scope)
            return Const()
        if isinstance(expr, ast.ArrayLiteral):
            values = []
            for item in expr.items:
                if item.key is not None:
                    values.append(self._filter_expr(item.key, scope))
                values.append(self._filter_expr(item.value, scope))
            return join_exprs(values)
        self._warn(f"unhandled expression {type(expr).__name__} at {expr.span}")
        return Const()

    # -- variable access --------------------------------------------------------

    def _read_variable(self, name: str, scope: _Scope) -> Expr:
        if name == "this" and scope.receiver is not None:
            return VarRef(scope.receiver)
        level = self.prelude.superglobal_level(name)
        if level is not None:
            return LevelConst(level)
        resolved = scope.resolve(name)
        if (
            self._facts is not None
            and self._facts.has_environment_tainter
            and name not in self._facts.assigned_names
        ):
            # An extract()-style call may have defined this otherwise
            # never-assigned variable from untrusted data.
            return LevelConst(self.prelude.lattice.top)
        return VarRef(resolved)

    def _read_array_dim(self, expr: ast.ArrayDim, scope: _Scope) -> Expr:
        if expr.index is not None:
            self._filter_expr(expr.index, scope)
        root = expr
        while isinstance(root, ast.ArrayDim):
            root = root.base
        if isinstance(root, ast.Variable):
            return self._read_variable(root.name, scope)
        return self._filter_expr(root, scope)

    def _property_name(self, obj: ast.Variable, prop: str, scope: _Scope) -> str:
        if obj.name == "this" and scope.receiver is not None:
            return f"{scope.receiver}->{prop}"
        return scope.resolve(f"{obj.name}->{prop}")

    def _read_property(self, expr: ast.PropertyFetch, scope: _Scope) -> Expr:
        if isinstance(expr.object, ast.Variable):
            return VarRef(self._property_name(expr.object, expr.property, scope))
        return self._filter_expr(expr.object, scope)

    def _assign_target(self, target: ast.Expression, value: Expr, span: Span, scope: _Scope) -> None:
        if isinstance(target, ast.Variable):
            if self.prelude.is_superglobal(target.name):
                return  # writing into $_GET etc. — ignore
            self._emit(Assign(scope.resolve(target.name), value, span))
            return
        if isinstance(target, ast.ArrayDim):
            if target.index is not None:
                self._filter_expr(target.index, scope)
            root = target
            while isinstance(root, ast.ArrayDim):
                root = root.base
            if isinstance(root, ast.Variable):
                if self.prelude.is_superglobal(root.name):
                    return
                name = scope.resolve(root.name)
                # Weak update: an element write joins with the old type.
                self._emit(Assign(name, join_exprs([VarRef(name), value]), span))
            return
        if isinstance(target, ast.PropertyFetch) and isinstance(target.object, ast.Variable):
            name = self._property_name(target.object, target.property, scope)
            self._emit(Assign(name, value, span))
            return
        if isinstance(target, ast.StaticPropertyFetch):
            self._emit(Assign(f"{target.class_name}::{target.property}", value, span))
            return
        self._warn(f"unsupported assignment target {type(target).__name__} at {span}")

    def _filter_assign(self, expr: ast.Assign, scope: _Scope) -> Expr:
        # `$obj = new Known(...)` binds the constructor's $this to $obj,
        # so property assignments inside it land on obj->prop.
        if (
            not expr.op
            and isinstance(expr.value, ast.New)
            and isinstance(expr.target, ast.Variable)
            and self._facts is not None
            and self._facts.methods.get_class(expr.value.class_name) is not None
        ):
            receiver = scope.resolve(expr.target.name)
            self._construct_object(expr.value, receiver, scope)
            return VarRef(receiver)
        value = self._filter_expr(expr.value, scope)
        if expr.op:
            # Compound assignment reads the old value: x op= e  ≡  x = x ~ e.
            old = self._filter_expr(expr.target, scope)
            value = join_exprs([old, value])
        self._assign_target(expr.target, value, expr.span, scope)
        # The assignment expression's own value is the assigned value.
        return value

    def _construct_object(self, expr: ast.New, receiver: str, scope: _Scope) -> None:
        """Initialize declared properties and unfold the constructor."""
        table = self._facts.methods
        for prop in table.properties_of(expr.class_name):
            value = (
                self._filter_expr(prop.default, scope)
                if prop.default is not None
                else Const()
            )
            self._emit(Assign(f"{receiver}->{prop.name}", value, expr.span))
        constructor = None
        decl = table.get_class(expr.class_name)
        if decl is not None:
            constructor = table.resolve(expr.class_name, decl.name) or table.resolve(
                expr.class_name, "__construct"
            )
        if constructor is not None:
            self._unfold_callable(
                constructor, list(expr.args), expr.span, scope, receiver=receiver
            )
        else:
            for arg in expr.args:
                self._filter_expr(arg, scope)

    # -- calls -------------------------------------------------------------------

    def _emit_sink(
        self,
        function: str,
        args: list[ast.Expression],
        span: Span,
        scope: _Scope,
        checked: tuple[int, ...] | None = None,
        required: object | None = None,
        vuln_class: object = None,
    ) -> None:
        """Normalize sink arguments to variables and emit a SinkCall."""
        effect = self.prelude.function_effect(function)
        if effect is not None and effect.kind is EffectKind.SINK:
            if required is None:
                required = effect.required
            if vuln_class is None:
                vuln_class = effect.vuln_class
        if required is None:
            required = self.prelude.lattice.top
        names: list[str] = []
        spans: list[Span] = []
        for index, arg in enumerate(args):
            if checked is not None and index not in checked:
                self._filter_expr(arg, scope)
                continue
            arg_type = self._filter_expr(arg, scope)
            if isinstance(arg_type, Const):
                continue  # constant arguments can never violate
            if isinstance(arg_type, VarRef):
                names.append(arg_type.name)
            else:
                temp = self._fresh_temp()
                self._emit(Assign(temp, arg_type, arg.span))
                names.append(temp)
            spans.append(arg.span)
        if names:
            self._emit(
                SinkCall(
                    function, tuple(names), required, span, tuple(spans), vuln_class
                )
            )

    def _filter_call(self, expr: ast.FunctionCall, scope: _Scope) -> Expr:
        name = expr.name
        declared = self._facts.functions.get(name) if self._facts is not None else None
        if declared is not None:
            return self._unfold_callable(declared, list(expr.args), expr.span, scope)
        effect = self.prelude.function_effect(name)
        if effect is None:
            arg_types = [self._filter_expr(a, scope) for a in expr.args]
            return join_exprs(arg_types)
        if effect.kind is EffectKind.SOURCE:
            for arg in expr.args:
                self._filter_expr(arg, scope)
            return LevelConst(effect.level)
        if effect.kind is EffectKind.SANITIZER:
            # Paper Figure 6 models sanitization of a variable as a UIC
            # postcondition on the variable itself (uf_i(tmp) → t_tmp = U):
            # the variable's safety state is updated in place.
            if (
                self.sanitize_in_place
                and len(expr.args) == 1
                and isinstance(expr.args[0], ast.Variable)
                and not self.prelude.is_superglobal(expr.args[0].name)
            ):
                name = scope.resolve(expr.args[0].name)
                self._emit(Assign(name, LevelConst(effect.level), expr.span))
                return VarRef(name)
            for arg in expr.args:
                self._filter_expr(arg, scope)
            return LevelConst(effect.level)
        if effect.kind is EffectKind.SINK:
            self._emit_sink(name, list(expr.args), expr.span, scope, checked=effect.checked_args)
            return Const()
        if effect.kind is EffectKind.TAINT_ENVIRONMENT:
            for arg in expr.args:
                self._filter_expr(arg, scope)
            self._emit(InputCall(name, (), self.prelude.lattice.top, expr.span))
            return Const()
        # PROPAGATE
        arg_types = [self._filter_expr(a, scope) for a in expr.args]
        return join_exprs(arg_types)

    def _filter_method_call(self, expr: ast.MethodCall, scope: _Scope) -> Expr:
        # User-declared methods are unfolded like functions, with $this
        # bound to the receiver's IR name.  Without object types the
        # resolution is by method name; every candidate class's method is
        # unfolded (an over-approximation: the result joins all of them).
        candidates = (
            self._facts.methods.candidates(expr.method) if self._facts is not None else []
        )
        if candidates and isinstance(expr.object, ast.Variable):
            if expr.object.name == "this" and scope.receiver is not None:
                receiver = scope.receiver
            else:
                receiver = scope.resolve(expr.object.name)
            results = []
            for _class_name, method in candidates:
                results.append(
                    self._unfold_callable(
                        method, list(expr.args), expr.span, scope, receiver=receiver
                    )
                )
            return join_exprs(results)
        self._filter_expr(expr.object, scope)
        effect = self.prelude.method_effect(expr.method)
        if effect is not None and effect.kind is EffectKind.SINK:
            self._emit_sink(
                f"->{expr.method}",
                list(expr.args),
                expr.span,
                scope,
                required=effect.required,
                vuln_class=effect.vuln_class,
            )
            return Const()
        arg_types = [self._filter_expr(a, scope) for a in expr.args]
        return join_exprs(arg_types)

    def _unfold_callable(
        self,
        decl: ast.FunctionDecl,
        args: list[ast.Expression],
        span: Span,
        scope: _Scope,
        receiver: str | None = None,
    ) -> Expr:
        """Inline a user-defined function or method at this call site."""
        stack_key = decl.name.lower() if receiver is None else f"::{decl.name.lower()}"
        depth = sum(1 for name in self._call_stack if name == stack_key)
        if depth >= self.max_unfold_depth:
            self._warn(
                f"recursion depth limit for {decl.name!r} at {span}; "
                "treating call as taint propagation"
            )
            arg_types = [self._filter_expr(a, scope) for a in args]
            return join_exprs(arg_types)

        self._inline_counter += 1
        callee_scope = _Scope(
            prefix=f"{decl.name.lower()}@{self._inline_counter}", receiver=receiver
        )

        # Bind arguments to parameters (defaults for missing arguments).
        for index, param in enumerate(decl.parameters):
            if index < len(args):
                arg_type = self._filter_expr(args[index], scope)
            elif param.default is not None:
                arg_type = self._filter_expr(param.default, scope)
            else:
                arg_type = Const()
            self._emit(Assign(callee_scope.resolve(param.name), arg_type, span))

        self._call_stack.append(stack_key)
        try:
            body_cmds = self._filter_statements(decl.body.statements, callee_scope)
        finally:
            self._call_stack.pop()
        for command in body_cmds:
            self._emit(command)

        # Copy back by-reference parameters into simple variable arguments.
        for index, param in enumerate(decl.parameters):
            if param.by_reference and index < len(args):
                arg = args[index]
                if isinstance(arg, ast.Variable) and not self.prelude.is_superglobal(arg.name):
                    self._emit(
                        Assign(
                            scope.resolve(arg.name),
                            VarRef(callee_scope.resolve(param.name)),
                            span,
                        )
                    )

        return VarRef(callee_scope.resolve("%ret"))


def filter_program(
    program: ast.Program,
    prelude: Prelude | None = None,
    max_unfold_depth: int = 3,
    sanitize_in_place: bool = True,
) -> FilterResult:
    """Filter a parsed program into F(p)."""
    return ProgramFilter(prelude, max_unfold_depth, sanitize_in_place).run(program)


def filter_source(
    source: str,
    prelude: Prelude | None = None,
    filename: str = "<string>",
    sanitize_in_place: bool = True,
) -> FilterResult:
    """Parse and filter PHP source text in one step."""
    from repro.php.parser import parse

    return filter_program(
        parse(source, filename), prelude, sanitize_in_place=sanitize_in_place
    )
