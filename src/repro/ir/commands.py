"""The filtered command language F(p) (paper §3.2).

After filtering, a program consists only of the constructs that carry
information flow::

    c ::= x := e | fi(X) | fo(X) | stop | if e then c else c | while e do c | c ; c
    e ::= x | n | e ~ e

Expressions here are *safety-type* expressions: a constant has type ⊥, a
variable reference has the variable's current type, and any binary
operation ``~`` types as the join of its operands.  Two extensions beyond
the paper's grammar keep the prelude expressive without changing the
model:

* :class:`LevelConst` — an expression with a fixed lattice level, used
  for UIC return values (``τ`` from a postcondition) and for sanitizer
  return values (which lower to a designated safe level).
* :class:`InputCall` — the command form of ``fi(X)``, tainting a set of
  variables to a postcondition level.

Sensitive output channels ``fo(X)`` are :class:`SinkCall`; after the
filter's normalization every sink argument is a plain variable (compound
arguments are hoisted into temporaries), matching the paper's variable-set
formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.php.span import Span

__all__ = [
    "Expr",
    "VarRef",
    "Const",
    "LevelConst",
    "Join",
    "Command",
    "Assign",
    "InputCall",
    "SinkCall",
    "Stop",
    "If",
    "While",
    "Seq",
    "variables_of_expr",
    "count_commands",
]


# -- Expressions -------------------------------------------------------------


class Expr:
    """Base class of safety-type expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class VarRef(Expr):
    """A variable occurrence ``x`` — types as ``t_x``."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """A program constant ``n`` — types as ``⊥`` (paper: t_n = ⊥)."""

    def __str__(self) -> str:
        return "const"


@dataclass(frozen=True, slots=True)
class LevelConst(Expr):
    """An expression pinned to a lattice level (UIC/sanitizer returns)."""

    level: object

    def __str__(self) -> str:
        return f"<{self.level}>"


@dataclass(frozen=True, slots=True)
class Join(Expr):
    """``e1 ~ e2 ~ ...`` — types as the join of the operand types."""

    operands: tuple[Expr, ...]

    def __str__(self) -> str:
        return "(" + " ~ ".join(str(op) for op in self.operands) + ")"


def join_exprs(operands: list[Expr]) -> Expr:
    """Smart Join constructor: flattens, drops ⊥ constants, unwraps singletons."""
    flat: list[Expr] = []
    for op in operands:
        if isinstance(op, Join):
            flat.extend(op.operands)
        elif isinstance(op, Const):
            continue
        else:
            flat.append(op)
    if not flat:
        return Const()
    if len(flat) == 1:
        return flat[0]
    return Join(tuple(flat))


def variables_of_expr(expr: Expr) -> set[str]:
    if isinstance(expr, VarRef):
        return {expr.name}
    if isinstance(expr, Join):
        out: set[str] = set()
        for op in expr.operands:
            out |= variables_of_expr(op)
        return out
    return set()


# -- Commands -------------------------------------------------------------


class Command:
    """Base class of F(p) commands."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Assign(Command):
    """``x := e``."""

    target: str
    value: Expr
    span: Span

    def __str__(self) -> str:
        return f"${self.target} := {self.value}"


@dataclass(frozen=True, slots=True)
class InputCall(Command):
    """``fi(X)`` — an untrusted input channel's postcondition: ∀x∈X, t_x = τ."""

    function: str
    targets: tuple[str, ...]
    level: object
    span: Span

    def __str__(self) -> str:
        names = ", ".join(f"${t}" for t in self.targets)
        return f"{self.function}({names}) [post: {self.level}]"


@dataclass(frozen=True, slots=True)
class SinkCall(Command):
    """``fo(X)`` — a sensitive output channel's precondition.

    ``required`` is the level ``τ_r``; the AI asserts ``t_x < τ_r`` for
    every argument variable x (paper Figure 4).  ``arg_spans`` parallels
    ``arguments`` so reports can point at the original argument text.
    """

    function: str
    arguments: tuple[str, ...]
    required: object
    span: Span
    arg_spans: tuple[Span, ...] = ()
    #: Vulnerability classification from the prelude (a VulnClass), used
    #: by error reports; None when the sink has no classification.
    vuln_class: object = None

    def __str__(self) -> str:
        names = ", ".join(f"${a}" for a in self.arguments)
        return f"{self.function}({names}) [pre: < {self.required}]"


@dataclass(frozen=True, slots=True)
class Stop(Command):
    """``stop`` — terminates execution (exit/die)."""

    span: Span

    def __str__(self) -> str:
        return "stop"


@dataclass(frozen=True, slots=True)
class If(Command):
    """``if e then c1 else c2`` — the condition is nondeterministic."""

    then: "Seq"
    orelse: "Seq"
    span: Span

    def __str__(self) -> str:
        return f"if * then {{ {self.then} }} else {{ {self.orelse} }}"


@dataclass(frozen=True, slots=True)
class While(Command):
    """``while e do c`` — condition nondeterministic; the AI deconstructs
    this into a selection (paper Figure 4: ``if b_e then AI(c)``)."""

    body: "Seq"
    span: Span

    def __str__(self) -> str:
        return f"while * do {{ {self.body} }}"


@dataclass(frozen=True, slots=True)
class Seq(Command):
    """``c1 ; c2 ; ...``."""

    commands: tuple[Command, ...] = field(default=())

    def __str__(self) -> str:
        return "; ".join(str(c) for c in self.commands)

    def __iter__(self):
        return iter(self.commands)

    def __len__(self) -> int:
        return len(self.commands)


def count_commands(command: Command) -> int:
    """Total number of atomic commands (used for corpus statement counts)."""
    if isinstance(command, Seq):
        return sum(count_commands(c) for c in command.commands)
    if isinstance(command, If):
        return 1 + count_commands(command.then) + count_commands(command.orelse)
    if isinstance(command, While):
        return 1 + count_commands(command.body)
    return 1
