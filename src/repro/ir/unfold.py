"""Function collection for call-site unfolding.

F(p) "unfolds function calls" (paper §3.2): user-defined functions are
inlined at each call site by the filter.  This module provides the
function table the filter consults, plus the syntactic pre-pass that
discovers every declared function (including declarations nested inside
conditionals, which PHP allows) and every statically-assigned variable
name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.php import ast_nodes as ast

__all__ = ["FunctionTable", "ProgramFacts", "collect_program_facts"]


class FunctionTable:
    """Declared functions by lower-cased name (PHP functions are
    case-insensitive)."""

    def __init__(self) -> None:
        self._functions: dict[str, ast.FunctionDecl] = {}

    def add(self, decl: ast.FunctionDecl) -> None:
        self._functions.setdefault(decl.name.lower(), decl)

    def get(self, name: str) -> ast.FunctionDecl | None:
        return self._functions.get(name.lower())

    def names(self) -> list[str]:
        return sorted(self._functions)

    def __len__(self) -> int:
        return len(self._functions)


class MethodTable:
    """Declared class methods, looked up by method name.

    The analysis does not track object types, so a method call resolves
    by name across all declared classes; when several classes declare
    the same method, every candidate is returned and the filter
    over-approximates by unfolding each of them.
    """

    def __init__(self) -> None:
        self._classes: dict[str, ast.ClassDecl] = {}
        self._methods: dict[str, list[tuple[str, ast.FunctionDecl]]] = {}

    def add_class(self, decl: ast.ClassDecl) -> None:
        if decl.name.lower() in self._classes:
            return
        self._classes[decl.name.lower()] = decl
        for method in decl.methods:
            self._methods.setdefault(method.name.lower(), []).append((decl.name, method))

    def get_class(self, name: str) -> ast.ClassDecl | None:
        return self._classes.get(name.lower())

    def candidates(self, method_name: str) -> list[tuple[str, ast.FunctionDecl]]:
        return list(self._methods.get(method_name.lower(), ()))

    def class_names(self) -> list[str]:
        return sorted(self._classes)

    def properties_of(self, class_name: str) -> list[ast.PropertyDecl]:
        """Own + inherited properties, parents first."""
        chain: list[ast.ClassDecl] = []
        current = self.get_class(class_name)
        seen: set[str] = set()
        while current is not None and current.name.lower() not in seen:
            seen.add(current.name.lower())
            chain.append(current)
            current = self.get_class(current.parent) if current.parent else None
        out: list[ast.PropertyDecl] = []
        for decl in reversed(chain):
            out.extend(decl.properties)
        return out

    def resolve(self, class_name: str, method_name: str) -> ast.FunctionDecl | None:
        """Resolve a method along the inheritance chain."""
        seen: set[str] = set()
        current = self.get_class(class_name)
        while current is not None and current.name.lower() not in seen:
            seen.add(current.name.lower())
            found = current.method(method_name)
            if found is not None:
                return found
            current = self.get_class(current.parent) if current.parent else None
        return None


@dataclass
class ProgramFacts:
    """Syntactic facts gathered in one pre-pass over the AST."""

    functions: FunctionTable = field(default_factory=FunctionTable)
    methods: MethodTable = field(default_factory=MethodTable)
    #: Variable names assigned anywhere (any scope), used to decide which
    #: reads refer to variables an extract()-style call may have defined.
    assigned_names: set[str] = field(default_factory=set)
    #: True if an extract()/import_request_variables()-style call occurs.
    has_environment_tainter: bool = False


def collect_program_facts(program: ast.Program, tainter_names: frozenset[str]) -> ProgramFacts:
    """Walk the AST once, collecting functions, assigned names, tainters."""
    facts = ProgramFacts()

    def visit_expr(expr: ast.Expression) -> None:
        if isinstance(expr, ast.Assign):
            _record_target(expr.target, facts)
            visit_expr(expr.value)
        elif isinstance(expr, ast.ListAssign):
            for target in expr.targets:
                if target is not None:
                    _record_target(target, facts)
            visit_expr(expr.value)
        elif isinstance(expr, ast.IncDec):
            _record_target(expr.target, facts)
        elif isinstance(expr, ast.FunctionCall):
            if expr.name.lower() in tainter_names:
                facts.has_environment_tainter = True
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, (ast.MethodCall, ast.StaticCall, ast.New)):
            if isinstance(expr, ast.MethodCall):
                visit_expr(expr.object)
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, ast.Binary):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, (ast.Unary, ast.Cast, ast.ErrorSuppress, ast.EmptyExpr)):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.Ternary):
            visit_expr(expr.condition)
            if expr.then is not None:
                visit_expr(expr.then)
            visit_expr(expr.orelse)
        elif isinstance(expr, ast.InterpolatedString):
            for part in expr.parts:
                if isinstance(part, ast.Expression):
                    visit_expr(part)
        elif isinstance(expr, ast.ArrayLiteral):
            for item in expr.items:
                if item.key is not None:
                    visit_expr(item.key)
                visit_expr(item.value)
        elif isinstance(expr, ast.ArrayDim):
            visit_expr(expr.base)
            if expr.index is not None:
                visit_expr(expr.index)
        elif isinstance(expr, ast.PropertyFetch):
            visit_expr(expr.object)
        elif isinstance(expr, ast.IssetExpr):
            for op in expr.operands:
                visit_expr(op)
        elif isinstance(expr, (ast.IncludeExpr,)):
            visit_expr(expr.path)
        elif isinstance(expr, ast.ExitExpr) and expr.argument is not None:
            visit_expr(expr.argument)
        elif isinstance(expr, ast.PrintExpr):
            visit_expr(expr.argument)

    def visit_stmt(stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.FunctionDecl):
            facts.functions.add(stmt)
            for param in stmt.parameters:
                facts.assigned_names.add(param.name)
            visit_stmt(stmt.body)
        elif isinstance(stmt, ast.ClassDecl):
            facts.methods.add_class(stmt)
            for prop in stmt.properties:
                if prop.default is not None:
                    visit_expr(prop.default)
            for method in stmt.methods:
                for param in method.parameters:
                    facts.assigned_names.add(param.name)
                visit_stmt(method.body)
        elif isinstance(stmt, (ast.Block, ast.Program)):
            for child in stmt.statements:
                visit_stmt(child)
        elif isinstance(stmt, ast.ExpressionStatement):
            visit_expr(stmt.expression)
        elif isinstance(stmt, ast.Echo):
            for arg in stmt.arguments:
                visit_expr(arg)
        elif isinstance(stmt, ast.If):
            visit_expr(stmt.condition)
            visit_stmt(stmt.then)
            for clause in stmt.elseifs:
                visit_expr(clause.condition)
                visit_stmt(clause.body)
            if stmt.orelse is not None:
                visit_stmt(stmt.orelse)
        elif isinstance(stmt, ast.While):
            visit_expr(stmt.condition)
            visit_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            visit_stmt(stmt.body)
            visit_expr(stmt.condition)
        elif isinstance(stmt, ast.For):
            for expr in (*stmt.init, *stmt.condition, *stmt.update):
                visit_expr(expr)
            visit_stmt(stmt.body)
        elif isinstance(stmt, ast.Foreach):
            visit_expr(stmt.subject)
            if stmt.key_var is not None:
                _record_target(stmt.key_var, facts)
            _record_target(stmt.value_var, facts)
            visit_stmt(stmt.body)
        elif isinstance(stmt, ast.Switch):
            visit_expr(stmt.subject)
            for case in stmt.cases:
                if case.test is not None:
                    visit_expr(case.test)
                for child in case.body:
                    visit_stmt(child)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                visit_expr(stmt.value)
        elif isinstance(stmt, ast.StaticStatement):
            for var in stmt.variables:
                facts.assigned_names.add(var.name)
        elif isinstance(stmt, ast.UnsetStatement):
            for op in stmt.operands:
                visit_expr(op)

    visit_stmt_program(program, visit_stmt)
    return facts


def visit_stmt_program(program: ast.Program, visit_stmt) -> None:
    for stmt in program.statements:
        visit_stmt(stmt)


def _record_target(target: ast.Expression, facts: ProgramFacts) -> None:
    root = target
    while isinstance(root, ast.ArrayDim):
        root = root.base
    if isinstance(root, ast.Variable):
        facts.assigned_names.add(root.name)
    elif isinstance(root, ast.PropertyFetch) and isinstance(root.object, ast.Variable):
        facts.assigned_names.add(root.object.name)
