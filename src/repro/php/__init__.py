"""PHP-subset frontend: lexer, parser, AST, and include resolution.

This is the reproduction's "code walker" (paper §4, Figure 8): the lexer
and parser replace the SableCC-generated LALR(1) pair, and
:func:`resolve_includes` handles external file inclusions.
"""

from repro.php import ast_nodes as ast
from repro.php.errors import FrontendError, IncludeError, LexError, ParseError
from repro.php.includes import (
    IncludeResolution,
    IncludeScan,
    SourceProject,
    resolve_includes,
    scan_includes,
)
from repro.php.lexer import Lexer, tokenize
from repro.php.parsecache import IncludeGraph, ParseCache, content_digest
from repro.php.parser import Parser, parse
from repro.php.span import Position, Span
from repro.php.tokens import Token, TokenKind

__all__ = [
    "ast",
    "FrontendError",
    "IncludeError",
    "LexError",
    "ParseError",
    "IncludeResolution",
    "IncludeScan",
    "IncludeGraph",
    "ParseCache",
    "SourceProject",
    "content_digest",
    "resolve_includes",
    "scan_includes",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "Position",
    "Span",
    "Token",
    "TokenKind",
]
