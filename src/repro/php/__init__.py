"""PHP-subset frontend: lexer, parser, AST, and include resolution.

This is the reproduction's "code walker" (paper §4, Figure 8): the lexer
and parser replace the SableCC-generated LALR(1) pair, and
:func:`resolve_includes` handles external file inclusions.
"""

from repro.php import ast_nodes as ast
from repro.php.errors import FrontendError, IncludeError, LexError, ParseError
from repro.php.includes import IncludeResolution, SourceProject, resolve_includes
from repro.php.lexer import Lexer, tokenize
from repro.php.parser import Parser, parse
from repro.php.span import Position, Span
from repro.php.tokens import Token, TokenKind

__all__ = [
    "ast",
    "FrontendError",
    "IncludeError",
    "LexError",
    "ParseError",
    "IncludeResolution",
    "SourceProject",
    "resolve_includes",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "Position",
    "Span",
    "Token",
    "TokenKind",
]
