"""Include/require resolution across a multi-file project.

The paper's AST maker "handles external file inclusions along the way"
(§4).  Here a :class:`SourceProject` maps relative paths to source text
(backed by a dict or a directory on disk), and :func:`resolve_includes`
splices each statically-resolvable ``include``/``require`` expression
statement with the parsed statements of the target file.

Semantics implemented:

* ``include_once``/``require_once`` splice each file at most once per
  resolution walk.
* Include cycles raise :class:`IncludeError` (rather than looping).
* Missing files raise for ``require``/``require_once`` but are skipped
  with a recorded warning for ``include``/``include_once`` — matching
  PHP's fatal-vs-warning distinction.
* Only constant include paths (string literals and concatenations of
  string literals) resolve statically; dynamic paths are recorded as
  unresolved and left in place, where the flow analysis treats them as
  no-ops.

Both :func:`resolve_includes` and the flat dependency scanner
:func:`scan_includes` accept a ``parse_hook`` — any callable with the
:func:`repro.php.parser.parse` signature, typically a
:class:`repro.php.parsecache.ParseCache` — so shared preludes are parsed
once per content hash instead of once per entry.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.php import ast_nodes as ast
from repro.php.errors import IncludeError
from repro.php.parser import parse

__all__ = [
    "SourceProject",
    "IncludeResolution",
    "IncludeScan",
    "resolve_includes",
    "scan_includes",
]

#: Anything parse-shaped: ``hook(source, filename) -> Program``.
ParseHook = Callable[[str, str], ast.Program]


class SourceProject:
    """A set of PHP source files addressed by normalized relative paths."""

    def __init__(self, files: dict[str, str] | None = None) -> None:
        self._files: dict[str, str] = {}
        if files:
            for path, text in files.items():
                self.add_file(path, text)

    @classmethod
    def from_directory(cls, root: str | Path, pattern: str = "**/*.php") -> "SourceProject":
        root = Path(root)
        project = cls()
        for path in sorted(root.glob(pattern)):
            if path.is_file():
                project.add_file(str(path.relative_to(root)), path.read_text())
        return project

    def add_file(self, path: str, text: str) -> None:
        self._files[self.normalize(path)] = text

    @staticmethod
    def normalize(path: str) -> str:
        return posixpath.normpath(path.replace("\\", "/"))

    def has(self, path: str) -> bool:
        return self.normalize(path) in self._files

    def source(self, path: str) -> str:
        return self._files[self.normalize(path)]

    def paths(self) -> list[str]:
        return sorted(self._files)

    def __len__(self) -> int:
        return len(self._files)


@dataclass
class IncludeResolution:
    """Outcome of resolving one entry file."""

    program: ast.Program
    included_files: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)
    #: Direct ``(includer, included)`` edges observed during the walk,
    #: including re-includes skipped by ``_once`` dedup (the dependency
    #: exists even when the splice does not repeat the text).
    edges: list[tuple[str, str]] = field(default_factory=list)
    #: The entry file's own parsed program (before splicing) — callers
    #: that need per-file statement counts can reuse it instead of
    #: parsing the entry a second time.
    entry_program: ast.Program | None = None


def _constant_path(expr: ast.Expression) -> str | None:
    """Extract a compile-time constant include path, if any."""
    if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Binary) and expr.op == ".":
        left = _constant_path(expr.left)
        right = _constant_path(expr.right)
        if left is not None and right is not None:
            return left + right
    if isinstance(expr, ast.InterpolatedString) and all(
        isinstance(p, str) for p in expr.parts
    ):
        return "".join(expr.parts)  # type: ignore[arg-type]
    return None


def resolve_includes(
    project: SourceProject,
    entry: str,
    max_depth: int = 32,
    parse_hook: ParseHook | None = None,
) -> IncludeResolution:
    """Parse ``entry`` and splice statically-resolvable includes inline."""
    do_parse = parse_hook if parse_hook is not None else parse
    resolution = IncludeResolution(program=ast.Program(span=None, statements=()))  # type: ignore[arg-type]
    once_included: set[str] = set()
    active_stack: list[str] = []

    def load(path: str, depth: int) -> tuple[ast.Program, tuple[ast.Statement, ...]]:
        normalized = project.normalize(path)
        if depth > max_depth:
            raise IncludeError(f"include depth exceeds {max_depth} at {normalized!r}")
        if normalized in active_stack:
            cycle = " -> ".join(active_stack + [normalized])
            raise IncludeError(f"include cycle detected: {cycle}")
        program = do_parse(project.source(normalized), normalized)
        active_stack.append(normalized)
        try:
            statements = splice(program.statements, depth)
        finally:
            active_stack.pop()
        return program, statements

    def splice(statements: tuple[ast.Statement, ...], depth: int) -> tuple[ast.Statement, ...]:
        out: list[ast.Statement] = []
        for stmt in statements:
            include = _as_include_statement(stmt)
            if include is None:
                out.append(_rewrite_children(stmt, depth))
                continue
            path = _constant_path(include.path)
            if path is None:
                resolution.unresolved.append(str(include.span))
                out.append(stmt)
                continue
            current_dir = posixpath.dirname(active_stack[-1]) if active_stack else ""
            candidates = [path]
            if current_dir:
                candidates.insert(0, posixpath.join(current_dir, path))
            found = next((c for c in candidates if project.has(c)), None)
            if found is None:
                message = f"{include.kind} target {path!r} not found (from {include.span})"
                if include.kind.startswith("require"):
                    raise IncludeError(message, include.span)
                resolution.warnings.append(message)
                continue
            normalized = project.normalize(found)
            resolution.edges.append((active_stack[-1], normalized))
            if include.kind.endswith("_once") and normalized in once_included:
                continue
            once_included.add(normalized)
            resolution.included_files.append(normalized)
            out.extend(load(normalized, depth + 1)[1])
        return tuple(out)

    def _rewrite_children(stmt: ast.Statement, depth: int) -> ast.Statement:
        """Recursively resolve includes inside nested statement bodies."""
        if isinstance(stmt, ast.Block):
            return ast.Block(stmt.span, splice(stmt.statements, depth))
        if isinstance(stmt, ast.If):
            return ast.If(
                stmt.span,
                stmt.condition,
                _rewrite_children(stmt.then, depth),
                tuple(
                    ast.ElseIfClause(c.span, c.condition, _rewrite_children(c.body, depth))
                    for c in stmt.elseifs
                ),
                _rewrite_children(stmt.orelse, depth) if stmt.orelse else None,
            )
        if isinstance(stmt, ast.While):
            return ast.While(stmt.span, stmt.condition, _rewrite_children(stmt.body, depth))
        if isinstance(stmt, ast.DoWhile):
            return ast.DoWhile(stmt.span, _rewrite_children(stmt.body, depth), stmt.condition)
        if isinstance(stmt, ast.For):
            return ast.For(
                stmt.span, stmt.init, stmt.condition, stmt.update, _rewrite_children(stmt.body, depth)
            )
        if isinstance(stmt, ast.Foreach):
            return ast.Foreach(
                stmt.span,
                stmt.subject,
                stmt.key_var,
                stmt.value_var,
                _rewrite_children(stmt.body, depth),
                stmt.by_reference,
            )
        if isinstance(stmt, ast.FunctionDecl):
            body = _rewrite_children(stmt.body, depth)
            assert isinstance(body, ast.Block)
            return ast.FunctionDecl(stmt.span, stmt.name, stmt.parameters, body)
        if isinstance(stmt, ast.Switch):
            return ast.Switch(
                stmt.span,
                stmt.subject,
                tuple(
                    ast.SwitchCase(c.span, c.test, splice(c.body, depth))
                    for c in stmt.cases
                ),
            )
        return stmt

    entry_normalized = project.normalize(entry)
    if not project.has(entry_normalized):
        raise IncludeError(f"entry file {entry!r} not found in project")
    once_included.add(entry_normalized)
    entry_program, statements = load(entry_normalized, 0)
    resolution.entry_program = entry_program
    resolution.program = ast.Program(entry_program.span, statements)
    return resolution


def _as_include_statement(stmt: ast.Statement) -> ast.IncludeExpr | None:
    """Match ``include 'x';`` (possibly @-suppressed) as a statement."""
    if not isinstance(stmt, ast.ExpressionStatement):
        return None
    expr = stmt.expression
    if isinstance(expr, ast.ErrorSuppress):
        expr = expr.operand
    if isinstance(expr, ast.IncludeExpr):
        return expr
    return None


@dataclass
class IncludeScan:
    """Flat dependency view of one entry: its transitive include closure.

    Unlike :class:`IncludeResolution` this never splices, never raises
    for cycles or missing targets, and tolerates files that fail to
    parse — it answers "which project files can this entry's audit
    depend on?", which must be computable even when the audit itself
    will error.  Closure membership is a pure function of the project
    snapshot, so hashing the closure's contents is a sound cache key
    unless :attr:`widened` says the closure may be incomplete.
    """

    entry: str
    #: Entry plus every transitively reachable include target (files
    #: that failed to parse stay in the closure; their own includes are
    #: simply unknown — see :attr:`widened`).
    closure: set[str] = field(default_factory=set)
    #: Direct ``(includer, included)`` edges in discovery order.
    edges: list[tuple[str, str]] = field(default_factory=list)
    #: Per-file direct include targets — the exact shape
    #: :meth:`repro.php.parsecache.IncludeGraph.update_file` wants.
    includes_by_file: dict[str, set[str]] = field(default_factory=dict)
    #: Constant include paths with no matching project file.
    missing: list[str] = field(default_factory=list)
    #: Spans of dynamic (non-constant) include paths.
    unresolved: list[str] = field(default_factory=list)
    #: Files whose includes are unknown because they did not parse.
    parse_failures: list[str] = field(default_factory=list)
    #: Content digest of each closure member at scan time.
    digests: dict[str, str] = field(default_factory=dict)

    @property
    def widened(self) -> bool:
        """True when the closure may under-approximate the dependency
        set (dynamic includes or unparsable members), so callers must
        conservatively key on the whole project instead."""
        return bool(self.unresolved or self.parse_failures)


def _iter_statements(statements: tuple[ast.Statement, ...]):
    """Yield every statement in ``statements``, recursing into the same
    nested bodies ``resolve_includes`` rewrites."""
    for stmt in statements:
        yield stmt
        if isinstance(stmt, ast.Block):
            yield from _iter_statements(stmt.statements)
        elif isinstance(stmt, ast.If):
            yield from _iter_statements((stmt.then,))
            for clause in stmt.elseifs:
                yield from _iter_statements((clause.body,))
            if stmt.orelse is not None:
                yield from _iter_statements((stmt.orelse,))
        elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For, ast.Foreach)):
            yield from _iter_statements((stmt.body,))
        elif isinstance(stmt, ast.FunctionDecl):
            yield from _iter_statements((stmt.body,))
        elif isinstance(stmt, ast.Switch):
            for case in stmt.cases:
                yield from _iter_statements(case.body)


def scan_includes(
    project: SourceProject,
    entry: str,
    parse_hook: ParseHook | None = None,
) -> IncludeScan:
    """Compute ``entry``'s transitive include closure without splicing.

    Raises :class:`IncludeError` only when the entry itself is missing
    (parity with :func:`resolve_includes`); every other irregularity —
    missing targets, dynamic paths, unparsable members, cycles — is
    recorded on the scan and the walk continues, because the scheduler
    needs a dependency answer even for files whose audit will fail.
    """
    from repro.php.parsecache import content_digest

    do_parse = parse_hook if parse_hook is not None else parse
    entry_normalized = project.normalize(entry)
    if not project.has(entry_normalized):
        raise IncludeError(f"entry file {entry!r} not found in project")
    scan = IncludeScan(entry=entry_normalized)
    scan.closure.add(entry_normalized)
    queue = [entry_normalized]
    while queue:
        current = queue.pop()
        text = project.source(current)
        scan.digests[current] = content_digest(text)
        targets: set[str] = set()
        scan.includes_by_file[current] = targets
        try:
            program = do_parse(text, current)
        except Exception:  # noqa: BLE001 - unparsable member: includes unknown
            scan.parse_failures.append(current)
            continue
        current_dir = posixpath.dirname(current)
        for stmt in _iter_statements(program.statements):
            include = _as_include_statement(stmt)
            if include is None:
                continue
            path = _constant_path(include.path)
            if path is None:
                scan.unresolved.append(str(include.span))
                continue
            candidates = [path]
            if current_dir:
                candidates.insert(0, posixpath.join(current_dir, path))
            found = next((c for c in candidates if project.has(c)), None)
            if found is None:
                scan.missing.append(path)
                continue
            normalized = project.normalize(found)
            targets.add(normalized)
            scan.edges.append((current, normalized))
            if normalized not in scan.closure:
                scan.closure.add(normalized)
                queue.append(normalized)
    return scan
