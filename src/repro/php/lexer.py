"""Hand-written lexer for the PHP subset.

The paper's WebSSARI uses a SableCC-generated LALR(1) lexer/parser pair
(Figure 8); this reproduction uses a hand-written lexer plus a
recursive-descent parser, which covers the same language surface while
staying dependency-free.

Notable PHP-isms handled here:

* ``<?php ... ?>`` tags — text outside tags is INLINE_HTML (the parser
  turns it into implicit output, which matters for XSS policies).
* Double-quoted strings interpolate variables (``"$x"``, ``"{$x}"``,
  ``"$row[name]"``, ``"$obj->prop"``) — emitted as TEMPLATE_STRING whose
  value is a list of ``("text", s)`` / ``("var", name)`` /
  ``("index", name, key)`` / ``("prop", name, prop)`` parts.  Taint flows
  through interpolation exactly like through concatenation.
* Heredoc (``<<<EOT``) with the same interpolation rules.
* Single-quoted strings are literal (only ``\\'`` and ``\\\\`` escape).
* ``#``, ``//`` and ``/* */`` comments; ``//`` comments end at ``?>``
  like in real PHP.
* Case-insensitive keywords; ``(int)``-style casts.
"""

from __future__ import annotations

from repro.php.errors import LexError
from repro.php.span import Position, Span
from repro.php.tokens import CASTS, KEYWORDS, Token, TokenKind

__all__ = ["Lexer", "tokenize"]


_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "v": "\v",
    "f": "\f",
    "e": "\x1b",
    "\\": "\\",
    "$": "$",
    '"': '"',
    "0": "\0",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    ("===", TokenKind.IDENTICAL),
    ("!==", TokenKind.NOT_IDENTICAL),
    ("<<", TokenKind.SHIFT_LEFT),
    (">>", TokenKind.SHIFT_RIGHT),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NEQ),
    ("<>", TokenKind.NEQ),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.BOOL_AND),
    ("||", TokenKind.BOOL_OR),
    ("++", TokenKind.INCREMENT),
    ("--", TokenKind.DECREMENT),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.MUL_ASSIGN),
    ("/=", TokenKind.DIV_ASSIGN),
    ("%=", TokenKind.MOD_ASSIGN),
    (".=", TokenKind.DOT_ASSIGN),
    ("&=", TokenKind.AND_ASSIGN),
    ("|=", TokenKind.OR_ASSIGN),
    ("^=", TokenKind.XOR_ASSIGN),
    ("->", TokenKind.ARROW),
    ("=>", TokenKind.DOUBLE_ARROW),
    ("::", TokenKind.DOUBLE_COLON),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMICOLON),
    (",", TokenKind.COMMA),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
    ("@", TokenKind.AT),
    (".", TokenKind.DOT),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("!", TokenKind.NOT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
]


def _is_ascii_digit(ch: str) -> bool:
    # str.isdigit() accepts unicode digits ('¹', '٣') that int() rejects —
    # and the length check matters: '' is a substring of any string, so a
    # bare `ch in "0123456789"` would be True at end-of-input.
    return len(ch) == 1 and ch in "0123456789"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Tokenizes one PHP source file."""

    def __init__(self, source: str, filename: str = "<string>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1
        self.in_php = False
        self._pending: list[Token] = []

    # -- character-level helpers -----------------------------------------

    def _position(self) -> Position:
        return Position(self.pos, self.line, self.column)

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        taken = self.source[self.pos : self.pos + count]
        for ch in taken:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += len(taken)
        return taken

    def _match(self, text: str) -> bool:
        if self.source.startswith(text, self.pos):
            self._advance(len(text))
            return True
        return False

    def _span_from(self, start: Position) -> Span:
        return Span(self.filename, start, self._position())

    def _error(self, message: str, start: Position | None = None) -> LexError:
        span = self._span_from(start) if start else Span.point(
            self.filename, self.pos, self.line, self.column
        )
        return LexError(message, span)

    # -- top level ---------------------------------------------------------

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while self.pos < len(self.source) or self._pending:
            if self._pending:
                out.append(self._pending.pop(0))
                continue
            if not self.in_php:
                token = self._lex_html()
                if token is not None:
                    out.append(token)
                continue
            token = self._lex_php()
            if token is not None:
                out.append(token)
        out.append(Token(TokenKind.EOF, None, Span.point(self.filename, self.pos, self.line, self.column)))
        return out

    def _lex_html(self) -> Token | None:
        start = self._position()
        open_idx = self.source.find("<?", self.pos)
        if open_idx == -1:
            text = self._advance(len(self.source) - self.pos)
            return Token(TokenKind.INLINE_HTML, text, self._span_from(start)) if text else None
        text = self._advance(open_idx - self.pos)
        html_token = Token(TokenKind.INLINE_HTML, text, self._span_from(start)) if text else None
        tag_start = self._position()
        if self._match("<?php"):
            pass
        elif self._match("<?="):
            # `<?= expr ?>` is shorthand for `<?php echo expr ?>`; emit an
            # echo keyword so the parser needs no special case.
            self._pending.append(
                Token(TokenKind.KEYWORD, "echo", self._span_from(tag_start))
            )
        else:
            self._advance(2)  # bare `<?`
        self.in_php = True
        return html_token

    def _lex_php(self) -> Token | None:
        ch = self._peek()
        if not ch:
            return None
        # Close tag
        if ch == "?" and self._peek(1) == ">":
            start = self._position()
            self._advance(2)
            self.in_php = False
            # PHP swallows a single newline right after `?>`.
            if self._peek() == "\n":
                self._advance()
            return Token(TokenKind.CLOSE_TAG, "?>", self._span_from(start))
        # Whitespace
        if ch.isspace():
            self._advance()
            return None
        # Comments
        if ch == "#" or (ch == "/" and self._peek(1) == "/"):
            self._skip_line_comment()
            return None
        if ch == "/" and self._peek(1) == "*":
            self._skip_block_comment()
            return None
        # Variables
        if ch == "$":
            return self._lex_variable()
        # Numbers
        if _is_ascii_digit(ch) or (ch == "." and _is_ascii_digit(self._peek(1))):
            return self._lex_number()
        # Strings
        if ch == "'":
            return self._lex_single_quoted()
        if ch == '"':
            return self._lex_double_quoted()
        if ch == "<" and self.source.startswith("<<<", self.pos):
            return self._lex_heredoc()
        # Identifiers / keywords
        if _is_ident_start(ch):
            return self._lex_identifier()
        # Casts look like parenthesized type names.
        if ch == "(":
            cast = self._try_lex_cast()
            if cast is not None:
                return cast
        # Operators
        start = self._position()
        for text, kind in _OPERATORS:
            if self._match(text):
                return Token(kind, text, self._span_from(start))
        raise self._error(f"unexpected character {ch!r}")

    # -- comment helpers ----------------------------------------------------

    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source):
            if self._peek() == "\n":
                return
            if self._peek() == "?" and self._peek(1) == ">":
                return  # `?>` terminates // comments in PHP
            self._advance()

    def _skip_block_comment(self) -> None:
        start = self._position()
        self._advance(2)
        while self.pos < len(self.source):
            if self._match("*/"):
                return
            self._advance()
        raise self._error("unterminated block comment", start)

    # -- token lexers ---------------------------------------------------------

    def _lex_variable(self) -> Token:
        start = self._position()
        self._advance()  # $
        if not _is_ident_start(self._peek()):
            raise self._error("expected variable name after '$'", start)
        name = self._advance()
        while _is_ident_char(self._peek()):
            name += self._advance()
        return Token(TokenKind.VARIABLE, name, self._span_from(start))

    def _lex_number(self) -> Token:
        start = self._position()
        text = ""
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            text += self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                text += self._advance()
            return Token(TokenKind.INT, int(text, 16), self._span_from(start))
        if (
            self._peek() == "0"
            and self._peek(1) in "01234567"
            and not self._has_decimal_lookahead()
        ):
            # Octal literal (0755); PHP ignores trailing 8/9 garbage but we
            # only consume valid octal digits.
            text += self._advance()
            while self._peek() in tuple("01234567"):
                text += self._advance()
            return Token(TokenKind.INT, int(text, 8), self._span_from(start))
        is_float = False
        while _is_ascii_digit(self._peek()):
            text += self._advance()
        if self._peek() == "." and _is_ascii_digit(self._peek(1)):
            is_float = True
            text += self._advance()
            while _is_ascii_digit(self._peek()):
                text += self._advance()
        if self._peek() in ("e", "E") and (
            _is_ascii_digit(self._peek(1))
            or (self._peek(1) in "+-" and _is_ascii_digit(self._peek(2)))
        ):
            is_float = True
            text += self._advance()
            if self._peek() in "+-":
                text += self._advance()
            while _is_ascii_digit(self._peek()):
                text += self._advance()
        if is_float:
            return Token(TokenKind.FLOAT, float(text), self._span_from(start))
        return Token(TokenKind.INT, int(text), self._span_from(start))

    def _has_decimal_lookahead(self) -> bool:
        """From a leading '0': does the digit run continue into a decimal
        number ('0123.5', '0129', '01e2')?  Then it is not octal."""
        index = self.pos + 1
        while index < len(self.source) and self.source[index] in "01234567":
            index += 1
        if index >= len(self.source):
            return False
        return self.source[index] in "89.eE"

    def _lex_single_quoted(self) -> Token:
        start = self._position()
        self._advance()  # opening quote
        value = ""
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated string", start)
            if ch == "'":
                self._advance()
                return Token(TokenKind.STRING, value, self._span_from(start))
            if ch == "\\" and self._peek(1) in ("'", "\\"):
                self._advance()
                value += self._advance()
                continue
            value += self._advance()

    def _lex_double_quoted(self) -> Token:
        start = self._position()
        self._advance()  # opening quote
        parts = self._lex_interpolated_until(lambda: self._peek() == '"', start)
        self._advance()  # closing quote
        return self._string_token_from_parts(parts, start)

    def _lex_heredoc(self) -> Token:
        start = self._position()
        self._advance(3)  # <<<
        quote = ""
        if self._peek() in ("'", '"'):
            quote = self._advance()
        label = ""
        while _is_ident_char(self._peek()):
            label += self._advance()
        if not label:
            raise self._error("expected heredoc label", start)
        if quote:
            if self._peek() != quote:
                raise self._error("unterminated heredoc label quote", start)
            self._advance()
        if self._peek() == "\r":
            self._advance()
        if self._peek() != "\n":
            raise self._error("expected newline after heredoc label", start)
        self._advance()

        def at_terminator() -> bool:
            if self.column != 1:
                return False
            rest = self.source[self.pos :]
            if not rest.startswith(label):
                return False
            after = rest[len(label) : len(label) + 1]
            return after in ("", "\n", "\r", ";")

        if quote == "'":
            # Nowdoc: literal text, no interpolation.
            value = ""
            while not at_terminator():
                if self.pos >= len(self.source):
                    raise self._error("unterminated heredoc", start)
                value += self._advance()
            self._advance(len(label))
            value = value.rstrip("\n")
            return Token(TokenKind.STRING, value, self._span_from(start))

        parts = self._lex_interpolated_until(at_terminator, start, allow_escape_quote=False)
        self._advance(len(label))
        # Trim the trailing newline before the terminator label.
        if parts and parts[-1][0] == "text":
            parts[-1] = ("text", parts[-1][1].rstrip("\n"))
            if not parts[-1][1]:
                parts.pop()
        return self._string_token_from_parts(parts, start)

    def _lex_interpolated_until(self, stop, start: Position, allow_escape_quote: bool = True) -> list[tuple]:
        """Shared body of double-quoted strings and heredocs."""
        parts: list[tuple] = []
        text = ""

        def flush() -> None:
            nonlocal text
            if text:
                parts.append(("text", text))
                text = ""

        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string", start)
            if stop():
                flush()
                return parts
            ch = self._peek()
            if ch == "\\":
                escape = self._peek(1)
                if escape in _SIMPLE_ESCAPES:
                    self._advance(2)
                    text += _SIMPLE_ESCAPES[escape]
                    continue
                if allow_escape_quote and escape == '"':
                    self._advance(2)
                    text += '"'
                    continue
                text += self._advance()
                continue
            if ch == "$" and _is_ident_start(self._peek(1)):
                self._advance()
                name = self._advance()
                while _is_ident_char(self._peek()):
                    name += self._advance()
                if self._peek() == "[":
                    # "$row[key]" / "$row['key']" / "$row[0]"
                    self._advance()
                    key = self._lex_simple_subscript(start)
                    flush()
                    parts.append(("index", name, key))
                    continue
                if self._peek() == "-" and self._peek(1) == ">" and _is_ident_start(self._peek(2)):
                    self._advance(2)
                    prop = self._advance()
                    while _is_ident_char(self._peek()):
                        prop += self._advance()
                    flush()
                    parts.append(("prop", name, prop))
                    continue
                flush()
                parts.append(("var", name))
                continue
            if ch == "{" and self._peek(1) == "$":
                # "{$expr}" complex interpolation: support variable,
                # variable[...] and variable->prop forms.
                self._advance(2)
                name = ""
                while _is_ident_char(self._peek()):
                    name += self._advance()
                if not name:
                    raise self._error("malformed {$...} interpolation", start)
                if self._peek() == "[":
                    self._advance()
                    key = self._lex_simple_subscript(start, quoted_ok=True)
                    if self._peek() != "}":
                        raise self._error("malformed {$...} interpolation", start)
                    self._advance()
                    flush()
                    parts.append(("index", name, key))
                    continue
                if self._peek() == "-" and self._peek(1) == ">":
                    self._advance(2)
                    prop = ""
                    while _is_ident_char(self._peek()):
                        prop += self._advance()
                    if self._peek() != "}":
                        raise self._error("malformed {$...} interpolation", start)
                    self._advance()
                    flush()
                    parts.append(("prop", name, prop))
                    continue
                if self._peek() != "}":
                    raise self._error("malformed {$...} interpolation", start)
                self._advance()
                flush()
                parts.append(("var", name))
                continue
            text += self._advance()

    def _lex_simple_subscript(self, start: Position, quoted_ok: bool = True) -> str | int:
        """Lex the key inside "$arr[...]" interpolation, consuming ']'."""
        ch = self._peek()
        if quoted_ok and ch in ("'", '"'):
            quote = self._advance()
            key = ""
            while self._peek() and self._peek() != quote:
                key += self._advance()
            if not self._match(quote):
                raise self._error("unterminated subscript in interpolation", start)
            if not self._match("]"):
                raise self._error("expected ']' in interpolation", start)
            return key
        key = ""
        while self._peek() and self._peek() != "]":
            key += self._advance()
        if not self._match("]"):
            raise self._error("expected ']' in interpolation", start)
        if key and all(_is_ascii_digit(c) for c in key):
            return int(key)
        return key

    def _string_token_from_parts(self, parts: list[tuple], start: Position) -> Token:
        span = self._span_from(start)
        if all(kind == "text" for kind, *_ in parts):
            return Token(TokenKind.STRING, "".join(p[1] for p in parts), span)
        return Token(TokenKind.TEMPLATE_STRING, parts, span)

    def _lex_identifier(self) -> Token:
        start = self._position()
        name = self._advance()
        while _is_ident_char(self._peek()):
            name += self._advance()
        lowered = name.lower()
        if lowered in KEYWORDS:
            return Token(TokenKind.KEYWORD, lowered, self._span_from(start))
        return Token(TokenKind.IDENTIFIER, name, self._span_from(start))

    def _try_lex_cast(self) -> Token | None:
        """Lex ``(int)`` and friends; returns None if not actually a cast."""
        saved = (self.pos, self.line, self.column)
        start = self._position()
        self._advance()  # (
        while self._peek() in (" ", "\t"):
            self._advance()
        name = ""
        while _is_ident_char(self._peek()):
            name += self._advance()
        while self._peek() in (" ", "\t"):
            self._advance()
        if name.lower() in CASTS and self._peek() == ")":
            self._advance()
            return Token(TokenKind.CAST, name.lower(), self._span_from(start))
        self.pos, self.line, self.column = saved
        return None


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Tokenize PHP source text into a token list ending with EOF."""
    return Lexer(source, filename).tokens()
