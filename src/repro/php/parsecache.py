"""Content-hash-keyed parse cache and the persisted include graph.

A corpus audit parses the same shared prelude once per entry per run;
``repro watch`` re-parses it every cycle.  Both are pure waste: an AST is
a deterministic function of (source text, filename), and every AST node
is a frozen dataclass — immutable, safely shared between consumers and
picklable across process boundaries.  :class:`ParseCache` memoizes
``parse`` on exactly that function: an in-memory LRU for one process
plus optional on-disk persistence using the same git-object fan-out and
atomic-write discipline as the SAT query cache (``repro.sat.cache``), so
concurrent workers and consecutive runs share parses through one
directory.

:class:`IncludeGraph` is the other half of the layer: a persisted record
of ``includer → included`` edges (with the content hash each file had
when scanned), built from :func:`repro.php.includes.scan_includes`
results.  Its reverse closure answers the daemon's invalidation
question — "a shared library changed; which entries must re-audit?" —
and its forward closure is what scopes cache keys and worker task slices
to each entry's true dependency set (see ``repro.engine.worker``).

Both stores live under the engine cache root (``<root>/parse`` and
``<root>/include-graph.json``); keys embed :data:`PARSE_CACHE_VERSION`
so format changes turn stale entries into misses, never wrong answers.
Disk entries are pickled ASTs — the cache directory is the same trust
domain as the result cache (local, user-owned), not an import surface.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path

from repro.php import ast_nodes as ast
from repro.php.parser import parse

__all__ = [
    "PARSE_CACHE_VERSION",
    "ParseCache",
    "IncludeGraph",
    "content_digest",
]

#: Bump whenever the AST node layout or parser semantics change; stale
#: pickled programs then become clean misses instead of crashes or
#: wrong-shape trees.
PARSE_CACHE_VERSION = "1"


def content_digest(text: str) -> str:
    """SHA-256 of one file's source text (the graph's edge stamp and the
    worker-pipe dedup identity)."""
    return hashlib.sha256(text.encode()).hexdigest()


class ParseCache:
    """``(source, filename) → Program`` memo, one parse per content hash.

    The filename is part of the key because every span in the tree embeds
    it — two files with identical text must not serve each other's spans.
    Shared preludes keep their path across entries, so cross-entry reuse
    is unaffected.

    In-memory LRU bounded by ``max_entries``; with ``persist_dir`` set,
    programs are additionally pickled to disk (atomic temp-file + rename,
    tolerating concurrent writers) and disk lookups backfill the LRU.
    Picklable: the LRU contents are dropped on pickling so shipping the
    cache to spawn-start workers stays cheap — workers re-warm from disk.
    """

    def __init__(self, persist_dir: str | Path | None = None, max_entries: int = 4096) -> None:
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        self.max_entries = max_entries
        self._memo: OrderedDict[str, ast.Program] = OrderedDict()
        #: Process-local probe counters; per-outcome deltas feed the
        #: engine's ``includes`` record field and ``/metrics``.
        self.hits = 0
        self.misses = 0

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "persist_dir": self.persist_dir,
            "max_entries": self.max_entries,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["persist_dir"], state["max_entries"])

    # -- keying -----------------------------------------------------------

    @staticmethod
    def key(source: str, filename: str) -> str:
        digest = hashlib.sha256()
        digest.update(b"repro-parse\x00")
        digest.update(PARSE_CACHE_VERSION.encode())
        digest.update(b"\x00")
        digest.update(filename.encode())
        digest.update(b"\x00")
        digest.update(source.encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        assert self.persist_dir is not None
        return self.persist_dir / key[:2] / f"{key}.pkl"

    # -- the hook ---------------------------------------------------------

    def parse(self, source: str, filename: str = "<string>") -> ast.Program:
        """Drop-in for :func:`repro.php.parser.parse` (parse errors
        propagate unchanged; only successful parses are cached)."""
        key = self.key(source, filename)
        program = self._memo.get(key)
        if program is not None:
            self._memo.move_to_end(key)
            self.hits += 1
            return program
        if self.persist_dir is not None:
            program = self._load(key)
            if program is not None:
                self._remember(key, program)
                self.hits += 1
                return program
        self.misses += 1
        program = parse(source, filename)
        self._remember(key, program)
        self._store(key, program)
        return program

    # -- store ------------------------------------------------------------

    def _load(self, key: str) -> ast.Program | None:
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            program = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any torn/stale pickle is a miss
            program = None
        if isinstance(program, ast.Program):
            return program
        try:  # corrupt or wrong-shape entry: evict
            path.unlink()
        except OSError:
            pass
        return None

    def _store(self, key: str, program: ast.Program) -> None:
        if self.persist_dir is None:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL))
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        except OSError:
            pass  # persistence is best-effort; the memo already has it

    def _remember(self, key: str, program: ast.Program) -> None:
        self._memo[key] = program
        self._memo.move_to_end(key)
        while len(self._memo) > self.max_entries:
            self._memo.popitem(last=False)


class IncludeGraph:
    """Persisted ``includer → included`` edges with content-hash stamps.

    One node per normalized project-relative path; :meth:`update_file`
    replaces a file's out-edges wholesale (an include scan is the full
    truth about that file), :meth:`remove_file` drops a deleted file's
    node.  :meth:`includers_of` walks the reverse edges transitively —
    the daemon's invalidation rule: every entry whose splice could have
    contained a dirty file must re-audit.

    The JSON snapshot is written atomically; an unreadable or
    wrong-version snapshot loads as an empty graph (the daemon then
    rebuilds it from its next full scan) rather than failing the caller.
    """

    _FORMAT_VERSION = 1

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        #: path → set of paths it includes (directly).
        self._out: dict[str, set[str]] = {}
        #: path → set of paths that include it (directly).
        self._in: dict[str, set[str]] = {}
        #: path → content digest at last scan.
        self._digests: dict[str, str] = {}
        if self.path is not None:
            self.load()

    # -- mutation ---------------------------------------------------------

    def update_file(
        self, path: str, includes: Iterable[str], digest: str | None = None
    ) -> None:
        """Replace ``path``'s out-edges with ``includes`` (its full,
        current direct-include set)."""
        new = set(includes)
        for old in self._out.get(path, set()) - new:
            self._in.get(old, set()).discard(path)
        for added in new:
            self._in.setdefault(added, set()).add(path)
        self._out[path] = new
        if digest is not None:
            self._digests[path] = digest

    def remove_file(self, path: str) -> None:
        for target in self._out.pop(path, set()):
            self._in.get(target, set()).discard(path)
        self._digests.pop(path, None)
        # Keep reverse edges pointing AT the removed path: its includers
        # spliced it and must re-audit when asked via includers_of.

    # -- queries ----------------------------------------------------------

    def includes_of(self, path: str) -> set[str]:
        """Direct include targets of ``path``."""
        return set(self._out.get(path, set()))

    def includers_of(self, paths: Iterable[str]) -> set[str]:
        """Every file that transitively includes any of ``paths``
        (the given paths themselves are not in the answer unless they
        also include one another)."""
        stale: set[str] = set()
        frontier = list(paths)
        while frontier:
            current = frontier.pop()
            for includer in self._in.get(current, set()):
                if includer not in stale:
                    stale.add(includer)
                    frontier.append(includer)
        return stale

    def digest_of(self, path: str) -> str | None:
        return self._digests.get(path)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._out.values())

    def __len__(self) -> int:
        return len(self._out)

    # -- persistence ------------------------------------------------------

    def load(self) -> None:
        self._out = {}
        self._in = {}
        self._digests = {}
        if self.path is None:
            return
        try:
            snapshot = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(snapshot, dict)
            or snapshot.get("version") != self._FORMAT_VERSION
            or not isinstance(snapshot.get("files"), dict)
        ):
            return
        for path, node in snapshot["files"].items():
            if not isinstance(node, dict):
                continue
            includes = node.get("includes")
            if isinstance(includes, list) and all(isinstance(i, str) for i in includes):
                self.update_file(
                    str(path),
                    includes,
                    node.get("digest") if isinstance(node.get("digest"), str) else None,
                )

    def save(self) -> None:
        if self.path is None:
            return
        snapshot = {
            "version": self._FORMAT_VERSION,
            "files": {
                path: {
                    "includes": sorted(targets),
                    **(
                        {"digest": self._digests[path]}
                        if path in self._digests
                        else {}
                    ),
                }
                for path, targets in sorted(self._out.items())
            },
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(snapshot, handle, sort_keys=True)
                os.replace(tmp, self.path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        except OSError:
            pass
