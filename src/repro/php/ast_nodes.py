"""AST node definitions for the PHP subset.

Nodes are plain frozen dataclasses, each carrying its :class:`Span`.  The
tree deliberately mirrors PHP's statement/expression split; the filter in
:mod:`repro.ir` consumes this tree and keeps only what matters for
information flow (paper §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.php.span import Span

__all__ = [
    "Node",
    "Expression",
    "Statement",
    # expressions
    "Literal",
    "Variable",
    "ArrayDim",
    "PropertyFetch",
    "StaticPropertyFetch",
    "InterpolatedString",
    "ArrayLiteral",
    "ArrayItem",
    "Binary",
    "Unary",
    "Cast",
    "Ternary",
    "Assign",
    "ListAssign",
    "IncDec",
    "FunctionCall",
    "MethodCall",
    "StaticCall",
    "New",
    "IssetExpr",
    "EmptyExpr",
    "ErrorSuppress",
    "IncludeExpr",
    "ExitExpr",
    "PrintExpr",
    # statements
    "Program",
    "Block",
    "InlineHTML",
    "ExpressionStatement",
    "Echo",
    "If",
    "ElseIfClause",
    "While",
    "DoWhile",
    "For",
    "Foreach",
    "Switch",
    "SwitchCase",
    "Break",
    "Continue",
    "Return",
    "FunctionDecl",
    "Parameter",
    "ClassDecl",
    "PropertyDecl",
    "GlobalStatement",
    "StaticStatement",
    "StaticVar",
    "UnsetStatement",
]


@dataclass(frozen=True, slots=True)
class Node:
    span: Span


class Expression(Node):
    pass


class Statement(Node):
    pass


# -- Expressions ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Literal(Expression):
    """Integer, float, string, bool, or null constant."""

    value: object


@dataclass(frozen=True, slots=True)
class Variable(Expression):
    """``$name`` — name stored without the dollar sign."""

    name: str


@dataclass(frozen=True, slots=True)
class ArrayDim(Expression):
    """``base[index]``; ``index`` is None for the push form ``$a[] = ...``."""

    base: Expression
    index: Expression | None


@dataclass(frozen=True, slots=True)
class PropertyFetch(Expression):
    """``$obj->prop``."""

    object: Expression
    property: str


@dataclass(frozen=True, slots=True)
class StaticPropertyFetch(Expression):
    """``ClassName::$prop``."""

    class_name: str
    property: str


@dataclass(frozen=True, slots=True)
class InterpolatedString(Expression):
    """Double-quoted string with embedded expressions.

    ``parts`` alternates literal strings and expressions in source order.
    """

    parts: tuple[object, ...]  # str | Expression


@dataclass(frozen=True, slots=True)
class ArrayItem(Node):
    key: Expression | None
    value: Expression


@dataclass(frozen=True, slots=True)
class ArrayLiteral(Expression):
    """``array(k => v, ...)``."""

    items: tuple[ArrayItem, ...]


@dataclass(frozen=True, slots=True)
class Binary(Expression):
    """Binary operation; ``op`` is the surface operator text (``.``, ``+``, …)."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class Unary(Expression):
    op: str
    operand: Expression


@dataclass(frozen=True, slots=True)
class Cast(Expression):
    """``(int)$x`` — target is the normalized cast name."""

    target: str
    operand: Expression


@dataclass(frozen=True, slots=True)
class Ternary(Expression):
    """``cond ? then : orelse``; ``then`` is None for the short form ``?:``."""

    condition: Expression
    then: Expression | None
    orelse: Expression


@dataclass(frozen=True, slots=True)
class Assign(Expression):
    """``target op= value``; ``op`` is '' for plain ``=``, else '.', '+', …

    ``by_reference`` records ``=&`` assignments (treated like value
    assignments by the flow analysis)."""

    target: Expression
    op: str
    value: Expression
    by_reference: bool = False


@dataclass(frozen=True, slots=True)
class ListAssign(Expression):
    """``list($a, $b) = expr``."""

    targets: tuple[Expression | None, ...]
    value: Expression


@dataclass(frozen=True, slots=True)
class IncDec(Expression):
    """``++$x`` / ``$x--``."""

    op: str  # '++' or '--'
    target: Expression
    prefix: bool


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    """``name(args)``; the callee is a plain identifier in our subset."""

    name: str
    args: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class MethodCall(Expression):
    object: Expression
    method: str
    args: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class StaticCall(Expression):
    class_name: str
    method: str
    args: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class New(Expression):
    class_name: str
    args: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class IssetExpr(Expression):
    operands: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class EmptyExpr(Expression):
    operand: Expression


@dataclass(frozen=True, slots=True)
class ErrorSuppress(Expression):
    """``@expr`` — PHP's error-silencing operator (Figure 1 uses it)."""

    operand: Expression


@dataclass(frozen=True, slots=True)
class IncludeExpr(Expression):
    """``include/require[_once] path`` used in expression position."""

    kind: str  # include | include_once | require | require_once
    path: Expression


@dataclass(frozen=True, slots=True)
class ExitExpr(Expression):
    """``exit`` / ``die`` — maps to the `stop` command of F(p)."""

    argument: Expression | None


@dataclass(frozen=True, slots=True)
class PrintExpr(Expression):
    """``print expr`` (an expression in PHP, unlike ``echo``)."""

    argument: Expression


# -- Statements -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Program(Node):
    statements: tuple[Statement, ...]


@dataclass(frozen=True, slots=True)
class Block(Statement):
    statements: tuple[Statement, ...]


@dataclass(frozen=True, slots=True)
class InlineHTML(Statement):
    """Raw text outside PHP tags — implicit trusted output."""

    text: str


@dataclass(frozen=True, slots=True)
class ExpressionStatement(Statement):
    expression: Expression


@dataclass(frozen=True, slots=True)
class Echo(Statement):
    """``echo e1, e2, ...`` — a sensitive output channel."""

    arguments: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class ElseIfClause(Node):
    condition: Expression
    body: Statement


@dataclass(frozen=True, slots=True)
class If(Statement):
    condition: Expression
    then: Statement
    elseifs: tuple[ElseIfClause, ...] = ()
    orelse: Statement | None = None


@dataclass(frozen=True, slots=True)
class While(Statement):
    condition: Expression
    body: Statement


@dataclass(frozen=True, slots=True)
class DoWhile(Statement):
    body: Statement
    condition: Expression


@dataclass(frozen=True, slots=True)
class For(Statement):
    init: tuple[Expression, ...]
    condition: tuple[Expression, ...]
    update: tuple[Expression, ...]
    body: Statement


@dataclass(frozen=True, slots=True)
class Foreach(Statement):
    subject: Expression
    key_var: Expression | None
    value_var: Expression
    body: Statement
    by_reference: bool = False


@dataclass(frozen=True, slots=True)
class SwitchCase(Node):
    test: Expression | None  # None == default
    body: tuple[Statement, ...]


@dataclass(frozen=True, slots=True)
class Switch(Statement):
    subject: Expression
    cases: tuple[SwitchCase, ...]


@dataclass(frozen=True, slots=True)
class Break(Statement):
    level: int = 1


@dataclass(frozen=True, slots=True)
class Continue(Statement):
    level: int = 1


@dataclass(frozen=True, slots=True)
class Return(Statement):
    value: Expression | None


@dataclass(frozen=True, slots=True)
class Parameter(Node):
    name: str
    default: Expression | None = None
    by_reference: bool = False


@dataclass(frozen=True, slots=True)
class FunctionDecl(Statement):
    name: str
    parameters: tuple[Parameter, ...]
    body: Block


@dataclass(frozen=True, slots=True)
class PropertyDecl(Node):
    """``var $name = default;`` / ``public $name;`` inside a class."""

    name: str
    default: Expression | None = None
    visibility: str = "public"


@dataclass(frozen=True, slots=True)
class ClassDecl(Statement):
    """``class Name extends Parent { properties; methods }`` (PHP4 style:
    the constructor is the method named like the class)."""

    name: str
    parent: str | None
    properties: tuple[PropertyDecl, ...]
    methods: tuple[FunctionDecl, ...]

    def method(self, name: str) -> FunctionDecl | None:
        lowered = name.lower()
        for method in self.methods:
            if method.name.lower() == lowered:
                return method
        return None

    @property
    def constructor(self) -> FunctionDecl | None:
        # PHP4: constructor shares the class name; PHP5 added __construct.
        return self.method(self.name) or self.method("__construct")


@dataclass(frozen=True, slots=True)
class GlobalStatement(Statement):
    names: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class StaticVar(Node):
    name: str
    default: Expression | None


@dataclass(frozen=True, slots=True)
class StaticStatement(Statement):
    variables: tuple[StaticVar, ...]


@dataclass(frozen=True, slots=True)
class UnsetStatement(Statement):
    operands: tuple[Expression, ...]
