"""Frontend error types, all carrying precise source spans."""

from __future__ import annotations

from repro.php.span import Span

__all__ = ["FrontendError", "LexError", "ParseError", "IncludeError"]


class FrontendError(Exception):
    """Base class for all PHP frontend errors."""

    def __init__(self, message: str, span: Span | None = None) -> None:
        self.message = message
        self.span = span
        location = f" at {span}" if span is not None else ""
        super().__init__(f"{message}{location}")


class LexError(FrontendError):
    """Raised by the lexer on malformed input (unterminated string, etc.)."""


class ParseError(FrontendError):
    """Raised by the parser on a syntax error."""


class IncludeError(FrontendError):
    """Raised by include resolution (missing file, include cycle)."""
