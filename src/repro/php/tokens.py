"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.php.span import Span

__all__ = ["TokenKind", "Token", "KEYWORDS", "CASTS"]


class TokenKind(enum.Enum):
    # Structure
    INLINE_HTML = "inline_html"  # text outside <?php ... ?>
    OPEN_TAG = "open_tag"
    CLOSE_TAG = "close_tag"
    EOF = "eof"

    # Atoms
    VARIABLE = "variable"  # $name (value excludes the $)
    IDENTIFIER = "identifier"
    INT = "int"
    FLOAT = "float"
    STRING = "string"  # single-quoted or non-interpolated double-quoted
    TEMPLATE_STRING = "template_string"  # double-quoted with interpolation

    # Keywords
    KEYWORD = "keyword"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COMMA = ","
    ARROW = "->"
    DOUBLE_ARROW = "=>"
    DOUBLE_COLON = "::"
    QUESTION = "?"
    COLON = ":"
    AT = "@"
    DOT = "."
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    MUL_ASSIGN = "*="
    DIV_ASSIGN = "/="
    MOD_ASSIGN = "%="
    DOT_ASSIGN = ".="
    AND_ASSIGN = "&="
    OR_ASSIGN = "|="
    XOR_ASSIGN = "^="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    INCREMENT = "++"
    DECREMENT = "--"
    EQ = "=="
    IDENTICAL = "==="
    NEQ = "!="
    NOT_IDENTICAL = "!=="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    BOOL_AND = "&&"
    BOOL_OR = "||"
    NOT = "!"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHIFT_LEFT = "<<"
    SHIFT_RIGHT = ">>"
    CAST = "cast"  # (int), (string), ...

    def __repr__(self) -> str:
        return f"TokenKind.{self.name}"


#: Reserved words recognized by the lexer (lower-cased comparison; PHP
#: keywords are case-insensitive).
KEYWORDS = frozenset(
    {
        "if",
        "else",
        "elseif",
        "while",
        "do",
        "for",
        "foreach",
        "as",
        "switch",
        "case",
        "default",
        "break",
        "continue",
        "function",
        "return",
        "echo",
        "print",
        "include",
        "include_once",
        "require",
        "require_once",
        "true",
        "false",
        "null",
        "array",
        "list",
        "new",
        "global",
        "static",
        "isset",
        "empty",
        "unset",
        "class",
        "extends",
        "var",
        "public",
        "private",
        "protected",
        # Alternative (template) syntax terminators.
        "endif",
        "endwhile",
        "endfor",
        "endforeach",
        "endswitch",
        "exit",
        "die",
        "and",
        "or",
        "xor",
        "not",
    }
)

#: Cast type names accepted inside ``( )``.
CASTS = frozenset({"int", "integer", "bool", "boolean", "float", "double", "real", "string", "array", "object"})


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``value`` depends on the kind: the variable name (without ``$``) for
    VARIABLE, the decoded text for STRING, the list of string parts for
    TEMPLATE_STRING, the numeric value for INT/FLOAT, the lower-cased
    keyword for KEYWORD, the raw identifier for IDENTIFIER, and the cast
    type for CAST.
    """

    kind: TokenKind
    value: Any
    span: Span

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word

    def __str__(self) -> str:
        return f"{self.kind.name}({self.value!r})"
