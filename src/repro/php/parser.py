"""Recursive-descent parser for the PHP subset.

Expression parsing uses precedence climbing with PHP's operator table
(including the low-precedence ``and``/``or``/``xor`` word operators and
right-associative assignment).  Statement parsing covers everything the
information-flow filter consumes: assignments, calls, echo/print,
if/elseif/else, the four loop forms, switch, functions, includes,
global/static declarations, exit/die, and inline HTML.
"""

from __future__ import annotations

from repro.php import ast_nodes as ast
from repro.php.errors import ParseError
from repro.php.lexer import tokenize
from repro.php.span import Span
from repro.php.tokens import Token, TokenKind

__all__ = ["Parser", "parse"]


# Binary operator precedence (higher binds tighter), mirroring PHP.
_BINARY_PRECEDENCE: dict[str, int] = {
    "or": 1,
    "xor": 2,
    "and": 3,
    # assignment handled separately at precedence 4
    "||": 6,
    "&&": 7,
    "|": 8,
    "^": 9,
    "&": 10,
    "==": 11,
    "!=": 11,
    "===": 11,
    "!==": 11,
    "<": 12,
    "<=": 12,
    ">": 12,
    ">=": 12,
    "<<": 13,
    ">>": 13,
    "+": 14,
    "-": 14,
    ".": 14,
    "*": 15,
    "/": 15,
    "%": 15,
}

_TERNARY_PRECEDENCE = 5
_ASSIGN_PRECEDENCE = 4

_ASSIGN_KINDS = {
    TokenKind.ASSIGN: "",
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.MUL_ASSIGN: "*",
    TokenKind.DIV_ASSIGN: "/",
    TokenKind.MOD_ASSIGN: "%",
    TokenKind.DOT_ASSIGN: ".",
    TokenKind.AND_ASSIGN: "&",
    TokenKind.OR_ASSIGN: "|",
    TokenKind.XOR_ASSIGN: "^",
}

_BINARY_TOKEN_KINDS = {
    TokenKind.BOOL_OR: "||",
    TokenKind.BOOL_AND: "&&",
    TokenKind.PIPE: "|",
    TokenKind.CARET: "^",
    TokenKind.AMP: "&",
    TokenKind.EQ: "==",
    TokenKind.NEQ: "!=",
    TokenKind.IDENTICAL: "===",
    TokenKind.NOT_IDENTICAL: "!==",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.SHIFT_LEFT: "<<",
    TokenKind.SHIFT_RIGHT: ">>",
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.DOT: ".",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}

_INCLUDE_KEYWORDS = ("include", "include_once", "require", "require_once")


class Parser:
    """Parses one token stream into a :class:`repro.php.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token], filename: str = "<string>") -> None:
        self._tokens = tokens
        self._pos = 0
        self._filename = filename

    # -- token helpers ------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.value in words

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _accept_keyword(self, *words: str) -> Token | None:
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found {token}", token.span
            )
        return self._advance()

    def _expect_keyword(self, word: str, context: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word!r} {context}, found {token}", token.span
            )
        return self._advance()

    def _expect_semicolon(self) -> None:
        # A close tag also terminates a statement in PHP.
        if self._accept(TokenKind.SEMICOLON):
            return
        if self._check(TokenKind.CLOSE_TAG) or self._check(TokenKind.EOF):
            return
        token = self._peek()
        raise ParseError(f"expected ';', found {token}", token.span)

    # -- entry point ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        statements: list[ast.Statement] = []
        start = self._peek().span
        while not self._check(TokenKind.EOF):
            stmt = self._parse_statement()
            if stmt is not None:
                statements.append(stmt)
        span = start.merge(self._peek().span) if statements else start
        return ast.Program(span, tuple(statements))

    # -- statements -------------------------------------------------------------

    def _parse_statement(self) -> ast.Statement | None:
        token = self._peek()
        if token.kind is TokenKind.INLINE_HTML:
            self._advance()
            return ast.InlineHTML(token.span, token.value)
        if token.kind is TokenKind.CLOSE_TAG:
            self._advance()
            return None
        if token.kind is TokenKind.SEMICOLON:
            self._advance()
            return None
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        if token.kind is TokenKind.KEYWORD:
            word = token.value
            if word == "if":
                return self._parse_if()
            if word == "while":
                return self._parse_while()
            if word == "do":
                return self._parse_do_while()
            if word == "for":
                return self._parse_for()
            if word == "foreach":
                return self._parse_foreach()
            if word == "switch":
                return self._parse_switch()
            if word == "break":
                return self._parse_break_continue(ast.Break)
            if word == "continue":
                return self._parse_break_continue(ast.Continue)
            if word == "return":
                return self._parse_return()
            if word == "function":
                return self._parse_function()
            if word == "class":
                return self._parse_class()
            if word == "echo":
                return self._parse_echo()
            if word == "global":
                return self._parse_global()
            if word == "static" and self._peek(1).kind is TokenKind.VARIABLE:
                return self._parse_static()
            if word == "unset":
                return self._parse_unset()
        # Fallback: expression statement.
        expr = self._parse_expression()
        self._expect_semicolon()
        return ast.ExpressionStatement(expr.span, expr)

    def _parse_block(self) -> ast.Block:
        open_brace = self._expect(TokenKind.LBRACE, "to open a block")
        statements: list[ast.Statement] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated block", open_brace.span)
            stmt = self._parse_statement()
            if stmt is not None:
                statements.append(stmt)
        close = self._advance()
        return ast.Block(open_brace.span.merge(close.span), tuple(statements))

    def _parse_body(self) -> ast.Statement:
        """A loop/branch body: either a block or a single statement."""
        if self._check(TokenKind.LBRACE):
            return self._parse_block()
        stmt = self._parse_statement()
        if stmt is None:
            return ast.Block(self._peek().span, ())
        return stmt

    def _parse_alt_block(self, *stop_words: str) -> ast.Block:
        """Alternative-syntax body: statements after ':' until a stop
        keyword (``endif``, ``else``, …) — the keyword is not consumed."""
        colon = self._expect(TokenKind.COLON, "to open alternative-syntax body")
        statements: list[ast.Statement] = []
        while not self._check_keyword(*stop_words):
            if self._check(TokenKind.EOF):
                raise ParseError(
                    f"unterminated alternative-syntax block (expected one of {stop_words})",
                    colon.span,
                )
            stmt = self._parse_statement()
            if stmt is not None:
                statements.append(stmt)
        end = self._peek()
        return ast.Block(colon.span.merge(end.span), tuple(statements))

    def _parse_if(self) -> ast.If:
        kw = self._expect_keyword("if", "")
        self._expect(TokenKind.LPAREN, "after 'if'")
        condition = self._parse_expression()
        self._expect(TokenKind.RPAREN, "after if condition")
        if self._check(TokenKind.COLON):
            return self._parse_if_alternative(kw, condition)
        then = self._parse_body()
        elseifs: list[ast.ElseIfClause] = []
        orelse: ast.Statement | None = None
        while True:
            if self._check_keyword("elseif"):
                clause_kw = self._advance()
                self._expect(TokenKind.LPAREN, "after 'elseif'")
                cond = self._parse_expression()
                self._expect(TokenKind.RPAREN, "after elseif condition")
                body = self._parse_body()
                elseifs.append(ast.ElseIfClause(clause_kw.span.merge(body.span), cond, body))
                continue
            if self._check_keyword("else") and self._peek(1).is_keyword("if"):
                clause_kw = self._advance()
                self._advance()  # 'if'
                self._expect(TokenKind.LPAREN, "after 'else if'")
                cond = self._parse_expression()
                self._expect(TokenKind.RPAREN, "after else-if condition")
                body = self._parse_body()
                elseifs.append(ast.ElseIfClause(clause_kw.span.merge(body.span), cond, body))
                continue
            if self._check_keyword("else"):
                self._advance()
                orelse = self._parse_body()
            break
        end = orelse or (elseifs[-1] if elseifs else then)
        return ast.If(kw.span.merge(end.span), condition, then, tuple(elseifs), orelse)

    def _parse_if_alternative(self, kw: Token, condition: ast.Expression) -> ast.If:
        """``if (c): ... elseif (c2): ... else: ... endif;``"""
        then = self._parse_alt_block("elseif", "else", "endif")
        elseifs: list[ast.ElseIfClause] = []
        orelse: ast.Statement | None = None
        while self._check_keyword("elseif"):
            clause_kw = self._advance()
            self._expect(TokenKind.LPAREN, "after 'elseif'")
            cond = self._parse_expression()
            self._expect(TokenKind.RPAREN, "after elseif condition")
            body = self._parse_alt_block("elseif", "else", "endif")
            elseifs.append(ast.ElseIfClause(clause_kw.span.merge(body.span), cond, body))
        if self._accept_keyword("else"):
            orelse = self._parse_alt_block("endif")
        end = self._expect_keyword("endif", "to close alternative-syntax if")
        self._expect_semicolon()
        return ast.If(kw.span.merge(end.span), condition, then, tuple(elseifs), orelse)

    def _parse_while(self) -> ast.While:
        kw = self._expect_keyword("while", "")
        self._expect(TokenKind.LPAREN, "after 'while'")
        condition = self._parse_expression()
        self._expect(TokenKind.RPAREN, "after while condition")
        if self._check(TokenKind.COLON):
            body = self._parse_alt_block("endwhile")
            self._expect_keyword("endwhile", "to close alternative-syntax while")
            self._expect_semicolon()
        else:
            body = self._parse_body()
        return ast.While(kw.span.merge(body.span), condition, body)

    def _parse_do_while(self) -> ast.DoWhile:
        kw = self._expect_keyword("do", "")
        body = self._parse_body()
        self._expect_keyword("while", "after do-while body")
        self._expect(TokenKind.LPAREN, "after 'while'")
        condition = self._parse_expression()
        close = self._expect(TokenKind.RPAREN, "after do-while condition")
        self._expect_semicolon()
        return ast.DoWhile(kw.span.merge(close.span), body, condition)

    def _parse_for(self) -> ast.For:
        kw = self._expect_keyword("for", "")
        self._expect(TokenKind.LPAREN, "after 'for'")
        init = self._parse_expression_list_until(TokenKind.SEMICOLON)
        self._expect(TokenKind.SEMICOLON, "after for-init")
        condition = self._parse_expression_list_until(TokenKind.SEMICOLON)
        self._expect(TokenKind.SEMICOLON, "after for-condition")
        update = self._parse_expression_list_until(TokenKind.RPAREN)
        self._expect(TokenKind.RPAREN, "after for-update")
        if self._check(TokenKind.COLON):
            body: ast.Statement = self._parse_alt_block("endfor")
            self._expect_keyword("endfor", "to close alternative-syntax for")
            self._expect_semicolon()
        else:
            body = self._parse_body()
        return ast.For(kw.span.merge(body.span), init, condition, update, body)

    def _parse_expression_list_until(self, terminator: TokenKind) -> tuple[ast.Expression, ...]:
        if self._check(terminator):
            return ()
        exprs = [self._parse_expression()]
        while self._accept(TokenKind.COMMA):
            exprs.append(self._parse_expression())
        return tuple(exprs)

    def _parse_foreach(self) -> ast.Foreach:
        kw = self._expect_keyword("foreach", "")
        self._expect(TokenKind.LPAREN, "after 'foreach'")
        subject = self._parse_expression()
        self._expect_keyword("as", "in foreach")
        by_reference = bool(self._accept(TokenKind.AMP))
        first = self._parse_lvalue()
        key_var: ast.Expression | None = None
        value_var = first
        if self._accept(TokenKind.DOUBLE_ARROW):
            key_var = first
            by_reference = bool(self._accept(TokenKind.AMP))
            value_var = self._parse_lvalue()
        self._expect(TokenKind.RPAREN, "after foreach clause")
        if self._check(TokenKind.COLON):
            body: ast.Statement = self._parse_alt_block("endforeach")
            self._expect_keyword("endforeach", "to close alternative-syntax foreach")
            self._expect_semicolon()
        else:
            body = self._parse_body()
        return ast.Foreach(kw.span.merge(body.span), subject, key_var, value_var, body, by_reference)

    def _parse_switch(self) -> ast.Switch:
        kw = self._expect_keyword("switch", "")
        self._expect(TokenKind.LPAREN, "after 'switch'")
        subject = self._parse_expression()
        self._expect(TokenKind.RPAREN, "after switch subject")
        alternative = bool(self._accept(TokenKind.COLON))
        if not alternative:
            self._expect(TokenKind.LBRACE, "to open switch body")

        def at_end() -> bool:
            if alternative:
                return self._check_keyword("endswitch")
            return self._check(TokenKind.RBRACE)

        cases: list[ast.SwitchCase] = []
        while not at_end():
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated switch", kw.span)
            case_kw = self._peek()
            test: ast.Expression | None
            if self._accept_keyword("case"):
                test = self._parse_expression()
            elif self._accept_keyword("default"):
                test = None
            else:
                raise ParseError(f"expected 'case' or 'default', found {case_kw}", case_kw.span)
            if not self._accept(TokenKind.COLON):
                self._expect(TokenKind.SEMICOLON, "after case label")
            body: list[ast.Statement] = []
            while not (
                at_end()
                or self._check_keyword("case", "default")
                or self._check(TokenKind.EOF)
            ):
                stmt = self._parse_statement()
                if stmt is not None:
                    body.append(stmt)
            cases.append(ast.SwitchCase(case_kw.span, test, tuple(body)))
        close = self._advance()
        if alternative:
            self._expect_semicolon()
        return ast.Switch(kw.span.merge(close.span), subject, tuple(cases))

    def _parse_break_continue(self, cls):
        kw = self._advance()
        level = 1
        if self._check(TokenKind.INT):
            level = self._advance().value
        self._expect_semicolon()
        return cls(kw.span, level)

    def _parse_return(self) -> ast.Return:
        kw = self._expect_keyword("return", "")
        value: ast.Expression | None = None
        if not (
            self._check(TokenKind.SEMICOLON)
            or self._check(TokenKind.CLOSE_TAG)
            or self._check(TokenKind.EOF)
        ):
            value = self._parse_expression()
        self._expect_semicolon()
        return ast.Return(kw.span, value)

    def _parse_function(self) -> ast.FunctionDecl:
        kw = self._expect_keyword("function", "")
        self._accept(TokenKind.AMP)  # return-by-reference marker
        name_token = self._expect(TokenKind.IDENTIFIER, "as function name")
        self._expect(TokenKind.LPAREN, "after function name")
        parameters: list[ast.Parameter] = []
        if not self._check(TokenKind.RPAREN):
            while True:
                by_reference = bool(self._accept(TokenKind.AMP))
                param_token = self._expect(TokenKind.VARIABLE, "as parameter name")
                default: ast.Expression | None = None
                if self._accept(TokenKind.ASSIGN):
                    default = self._parse_expression()
                parameters.append(
                    ast.Parameter(param_token.span, param_token.value, default, by_reference)
                )
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "after parameter list")
        body = self._parse_block()
        return ast.FunctionDecl(
            kw.span.merge(body.span), name_token.value, tuple(parameters), body
        )

    def _parse_class(self) -> ast.ClassDecl:
        kw = self._expect_keyword("class", "")
        name_token = self._expect(TokenKind.IDENTIFIER, "as class name")
        parent: str | None = None
        if self._accept_keyword("extends"):
            parent = self._expect(TokenKind.IDENTIFIER, "as parent class name").value
        self._expect(TokenKind.LBRACE, "to open class body")
        properties: list[ast.PropertyDecl] = []
        methods: list[ast.FunctionDecl] = []
        while not self._check(TokenKind.RBRACE):
            token = self._peek()
            if token.kind is TokenKind.EOF:
                raise ParseError("unterminated class body", kw.span)
            if self._check_keyword("var", "public", "private", "protected"):
                visibility_token = self._advance()
                visibility = (
                    "public" if visibility_token.value == "var" else visibility_token.value
                )
                if self._check_keyword("function"):
                    methods.append(self._parse_function())
                    continue
                if self._check_keyword("static"):
                    self._advance()
                while True:
                    prop = self._expect(TokenKind.VARIABLE, "as property name")
                    default: ast.Expression | None = None
                    if self._accept(TokenKind.ASSIGN):
                        default = self._parse_expression()
                    properties.append(
                        ast.PropertyDecl(prop.span, prop.value, default, visibility)
                    )
                    if not self._accept(TokenKind.COMMA):
                        break
                self._expect_semicolon()
                continue
            if self._check_keyword("function"):
                methods.append(self._parse_function())
                continue
            raise ParseError(
                f"expected property or method in class body, found {token}", token.span
            )
        close = self._advance()
        return ast.ClassDecl(
            kw.span.merge(close.span),
            name_token.value,
            parent,
            tuple(properties),
            tuple(methods),
        )

    def _parse_echo(self) -> ast.Echo:
        kw = self._expect_keyword("echo", "")
        args = [self._parse_expression()]
        while self._accept(TokenKind.COMMA):
            args.append(self._parse_expression())
        self._expect_semicolon()
        return ast.Echo(kw.span.merge(args[-1].span), tuple(args))

    def _parse_global(self) -> ast.GlobalStatement:
        kw = self._expect_keyword("global", "")
        names = [self._expect(TokenKind.VARIABLE, "after 'global'").value]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect(TokenKind.VARIABLE, "in global list").value)
        self._expect_semicolon()
        return ast.GlobalStatement(kw.span, tuple(names))

    def _parse_static(self) -> ast.StaticStatement:
        kw = self._expect_keyword("static", "")
        variables: list[ast.StaticVar] = []
        while True:
            var_token = self._expect(TokenKind.VARIABLE, "after 'static'")
            default: ast.Expression | None = None
            if self._accept(TokenKind.ASSIGN):
                default = self._parse_expression()
            variables.append(ast.StaticVar(var_token.span, var_token.value, default))
            if not self._accept(TokenKind.COMMA):
                break
        self._expect_semicolon()
        return ast.StaticStatement(kw.span, tuple(variables))

    def _parse_unset(self) -> ast.UnsetStatement:
        kw = self._expect_keyword("unset", "")
        self._expect(TokenKind.LPAREN, "after 'unset'")
        operands = [self._parse_expression()]
        while self._accept(TokenKind.COMMA):
            operands.append(self._parse_expression())
        self._expect(TokenKind.RPAREN, "after unset arguments")
        self._expect_semicolon()
        return ast.UnsetStatement(kw.span, tuple(operands))

    # -- expressions --------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_binary(0)

    def _parse_lvalue(self) -> ast.Expression:
        """An assignable expression (variable / array dim / property)."""
        expr = self._parse_postfix(self._parse_primary())
        if not isinstance(
            expr, (ast.Variable, ast.ArrayDim, ast.PropertyFetch, ast.StaticPropertyFetch)
        ):
            raise ParseError("expected an assignable expression", expr.span)
        return expr

    def _parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self._parse_assignment_or_unary(min_precedence)
        while True:
            token = self._peek()
            op: str | None = None
            if token.kind in _BINARY_TOKEN_KINDS:
                op = _BINARY_TOKEN_KINDS[token.kind]
            elif token.kind is TokenKind.KEYWORD and token.value in ("and", "or", "xor"):
                op = token.value
            if op is None:
                break
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                break
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(left.span.merge(right.span), op, left, right)
            continue
        # Ternary at its own precedence level.
        if min_precedence <= _TERNARY_PRECEDENCE and self._check(TokenKind.QUESTION):
            self._advance()
            then: ast.Expression | None = None
            if not self._check(TokenKind.COLON):
                then = self._parse_expression()
            self._expect(TokenKind.COLON, "in ternary expression")
            orelse = self._parse_binary(_TERNARY_PRECEDENCE)
            left = ast.Ternary(left.span.merge(orelse.span), left, then, orelse)
        return left

    def _parse_assignment_or_unary(self, min_precedence: int) -> ast.Expression:
        expr = self._parse_unary()
        token = self._peek()
        if (
            min_precedence <= _ASSIGN_PRECEDENCE
            and token.kind in _ASSIGN_KINDS
            and isinstance(
                expr,
                (ast.Variable, ast.ArrayDim, ast.PropertyFetch, ast.StaticPropertyFetch),
            )
        ):
            self._advance()
            by_reference = False
            if token.kind is TokenKind.ASSIGN and self._accept(TokenKind.AMP):
                by_reference = True
            value = self._parse_binary(_ASSIGN_PRECEDENCE)  # right-associative
            return ast.Assign(
                expr.span.merge(value.span), expr, _ASSIGN_KINDS[token.kind], value, by_reference
            )
        return expr

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.span.merge(operand.span), "!", operand)
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.span.merge(operand.span), "-", operand)
        if token.kind is TokenKind.PLUS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.span.merge(operand.span), "+", operand)
        if token.kind is TokenKind.TILDE:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.span.merge(operand.span), "~", operand)
        if token.kind is TokenKind.AT:
            self._advance()
            operand = self._parse_unary()
            return ast.ErrorSuppress(token.span.merge(operand.span), operand)
        if token.kind is TokenKind.CAST:
            self._advance()
            operand = self._parse_unary()
            return ast.Cast(token.span.merge(operand.span), token.value, operand)
        if token.kind is TokenKind.INCREMENT or token.kind is TokenKind.DECREMENT:
            self._advance()
            target = self._parse_unary()
            return ast.IncDec(token.span.merge(target.span), token.value, target, prefix=True)
        if token.kind is TokenKind.KEYWORD:
            if token.value in _INCLUDE_KEYWORDS:
                self._advance()
                path = self._parse_expression()
                return ast.IncludeExpr(token.span.merge(path.span), token.value, path)
            if token.value == "print":
                self._advance()
                argument = self._parse_expression()
                return ast.PrintExpr(token.span.merge(argument.span), argument)
            if token.value == "new":
                self._advance()
                name_token = self._expect(TokenKind.IDENTIFIER, "after 'new'")
                args: tuple[ast.Expression, ...] = ()
                if self._check(TokenKind.LPAREN):
                    args = self._parse_arguments()
                return ast.New(token.span, name_token.value, args)
        return self._parse_postfix(self._parse_primary())

    def _parse_postfix(self, expr: ast.Expression) -> ast.Expression:
        while True:
            token = self._peek()
            if token.kind is TokenKind.LBRACKET:
                self._advance()
                index: ast.Expression | None = None
                if not self._check(TokenKind.RBRACKET):
                    index = self._parse_expression()
                close = self._expect(TokenKind.RBRACKET, "after array index")
                expr = ast.ArrayDim(expr.span.merge(close.span), expr, index)
                continue
            if token.kind is TokenKind.LBRACE and isinstance(expr, (ast.Variable, ast.ArrayDim)):
                # Legacy string/array offset syntax: $s{0}
                self._advance()
                index = self._parse_expression()
                close = self._expect(TokenKind.RBRACE, "after brace index")
                expr = ast.ArrayDim(expr.span.merge(close.span), expr, index)
                continue
            if token.kind is TokenKind.ARROW:
                self._advance()
                prop = self._expect(TokenKind.IDENTIFIER, "after '->'")
                if self._check(TokenKind.LPAREN):
                    args = self._parse_arguments()
                    expr = ast.MethodCall(expr.span.merge(prop.span), expr, prop.value, args)
                else:
                    expr = ast.PropertyFetch(expr.span.merge(prop.span), expr, prop.value)
                continue
            if token.kind is TokenKind.INCREMENT or token.kind is TokenKind.DECREMENT:
                self._advance()
                expr = ast.IncDec(expr.span.merge(token.span), token.value, expr, prefix=False)
                continue
            break
        return expr

    def _parse_arguments(self) -> tuple[ast.Expression, ...]:
        self._expect(TokenKind.LPAREN, "to open argument list")
        args: list[ast.Expression] = []
        if not self._check(TokenKind.RPAREN):
            while True:
                self._accept(TokenKind.AMP)  # by-reference argument marker
                args.append(self._parse_expression())
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "to close argument list")
        return tuple(args)

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.VARIABLE:
            self._advance()
            return ast.Variable(token.span, token.value)
        if token.kind is TokenKind.INT or token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.Literal(token.span, token.value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.span, token.value)
        if token.kind is TokenKind.TEMPLATE_STRING:
            self._advance()
            return self._interpolated_from_parts(token)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN, "to close parenthesized expression")
            return self._parse_postfix(expr)
        if token.kind is TokenKind.KEYWORD:
            word = token.value
            if word in ("true", "false"):
                self._advance()
                return ast.Literal(token.span, word == "true")
            if word == "null":
                self._advance()
                return ast.Literal(token.span, None)
            if word == "array":
                return self._parse_array_literal()
            if word == "list":
                return self._parse_list_assign()
            if word == "isset":
                self._advance()
                self._expect(TokenKind.LPAREN, "after 'isset'")
                operands = [self._parse_expression()]
                while self._accept(TokenKind.COMMA):
                    operands.append(self._parse_expression())
                close = self._expect(TokenKind.RPAREN, "after isset arguments")
                return ast.IssetExpr(token.span.merge(close.span), tuple(operands))
            if word == "empty":
                self._advance()
                self._expect(TokenKind.LPAREN, "after 'empty'")
                operand = self._parse_expression()
                close = self._expect(TokenKind.RPAREN, "after empty argument")
                return ast.EmptyExpr(token.span.merge(close.span), operand)
            if word in ("exit", "die"):
                self._advance()
                argument: ast.Expression | None = None
                if self._accept(TokenKind.LPAREN):
                    if not self._check(TokenKind.RPAREN):
                        argument = self._parse_expression()
                    self._expect(TokenKind.RPAREN, "after exit argument")
                return ast.ExitExpr(token.span, argument)
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            if self._check(TokenKind.DOUBLE_COLON):
                self._advance()
                if self._check(TokenKind.VARIABLE):
                    prop = self._advance()
                    return ast.StaticPropertyFetch(
                        token.span.merge(prop.span), token.value, prop.value
                    )
                method = self._expect(TokenKind.IDENTIFIER, "after '::'")
                args = self._parse_arguments()
                return ast.StaticCall(token.span, token.value, method.value, args)
            if self._check(TokenKind.LPAREN):
                args = self._parse_arguments()
                return ast.FunctionCall(token.span, token.value, args)
            # Bare identifier: PHP constant — treat as an (untainted) literal.
            return ast.Literal(token.span, token.value)
        raise ParseError(f"unexpected token {token}", token.span)

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        kw = self._expect_keyword("array", "")
        self._expect(TokenKind.LPAREN, "after 'array'")
        items: list[ast.ArrayItem] = []
        while not self._check(TokenKind.RPAREN):
            first = self._parse_expression()
            if self._accept(TokenKind.DOUBLE_ARROW):
                value = self._parse_expression()
                items.append(ast.ArrayItem(first.span.merge(value.span), first, value))
            else:
                items.append(ast.ArrayItem(first.span, None, first))
            if not self._accept(TokenKind.COMMA):
                break
        close = self._expect(TokenKind.RPAREN, "to close array literal")
        return ast.ArrayLiteral(kw.span.merge(close.span), tuple(items))

    def _parse_list_assign(self) -> ast.ListAssign:
        kw = self._expect_keyword("list", "")
        self._expect(TokenKind.LPAREN, "after 'list'")
        targets: list[ast.Expression | None] = []
        while not self._check(TokenKind.RPAREN):
            if self._check(TokenKind.COMMA):
                targets.append(None)
            else:
                targets.append(self._parse_lvalue())
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN, "to close list()")
        self._expect(TokenKind.ASSIGN, "after list()")
        value = self._parse_expression()
        return ast.ListAssign(kw.span.merge(value.span), tuple(targets), value)

    def _interpolated_from_parts(self, token: Token) -> ast.Expression:
        parts: list[object] = []
        for part in token.value:
            kind = part[0]
            if kind == "text":
                parts.append(part[1])
            elif kind == "var":
                parts.append(ast.Variable(token.span, part[1]))
            elif kind == "index":
                base = ast.Variable(token.span, part[1])
                key = ast.Literal(token.span, part[2])
                parts.append(ast.ArrayDim(token.span, base, key))
            elif kind == "prop":
                base = ast.Variable(token.span, part[1])
                parts.append(ast.PropertyFetch(token.span, base, part[2]))
            else:  # pragma: no cover - lexer emits only the kinds above
                raise ParseError(f"unknown interpolation part {kind!r}", token.span)
        return ast.InterpolatedString(token.span, tuple(parts))


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse PHP source text into an AST."""
    return Parser(tokenize(source, filename), filename).parse_program()
