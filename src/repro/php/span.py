"""Source locations and spans.

Every token, AST node, IR command, and AI instruction carries a
:class:`Span` so that error reports can point at concrete file/line/column
positions and the instrumentor can splice sanitization guards back into
the original source text at exact byte offsets (paper §4 — runtime guards
are inserted into the verified PHP files).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Position", "Span"]


@dataclass(frozen=True, slots=True)
class Position:
    """A point in a source file: 0-based byte offset, 1-based line/column."""

    offset: int
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open range [start, end) within a named source file."""

    filename: str
    start: Position
    end: Position

    @classmethod
    def point(cls, filename: str, offset: int, line: int, column: int) -> "Span":
        pos = Position(offset, line, column)
        return cls(filename, pos, pos)

    @classmethod
    def synthetic(cls, label: str = "<synthetic>") -> "Span":
        """Span for generated code that has no source location."""
        return cls.point(label, 0, 0, 0)

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both; filenames must agree."""
        if self.filename != other.filename:
            # Spans from different files (e.g. across an include boundary)
            # keep the earlier file's identity.
            return self
        start = min(self.start, other.start, key=lambda p: p.offset)
        end = max(self.end, other.end, key=lambda p: p.offset)
        return Span(self.filename, start, end)

    @property
    def line(self) -> int:
        return self.start.line

    def __str__(self) -> str:
        if self.start == self.end:
            return f"{self.filename}:{self.start}"
        return f"{self.filename}:{self.start}-{self.end}"
