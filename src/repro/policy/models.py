"""Ready-made policy models beyond plain tainting.

The verification machinery is parametric in the lattice (paper §3.1
adopts Denning's general model; §2.3 observes that integrity compromises
cascade into confidentiality and availability ones).  This module ships
two richer stock policies:

* :func:`integrity_confidentiality_prelude` — a *product* lattice
  tracking integrity (untainted/tainted) and confidentiality
  (public/secret) independently.  Output sinks reject low-integrity
  data; exfiltration sinks reject high-confidentiality data; one
  analysis run finds both kinds of flaw.
* :func:`multilevel_prelude` — a linear clearance hierarchy for
  log/audit-style policies.

Both lattices are distributive, so the join-irreducible bit encoding of
the BMC applies unchanged (each type variable costs 2 bits for the
product model).
"""

from __future__ import annotations

from repro.lattice import linear_lattice, product_lattice, two_point_lattice
from repro.policy.prelude import Prelude, VulnClass

__all__ = [
    "INTEGRITY_TAINTED",
    "INTEGRITY_UNTAINTED",
    "CONF_PUBLIC",
    "CONF_SECRET",
    "integrity_confidentiality_prelude",
    "multilevel_prelude",
]

INTEGRITY_UNTAINTED = "untainted"
INTEGRITY_TAINTED = "tainted"
CONF_PUBLIC = "public"
CONF_SECRET = "secret"


def integrity_confidentiality_prelude() -> Prelude:
    """Product policy: (integrity, confidentiality) tracked together.

    Element ordering: bottom = (untainted, public); an element rises by
    becoming tainted (integrity loss) and/or secret (confidentiality
    gain).  Policy:

    * ``echo``/``print``/SQL sinks require integrity: they accept
      anything strictly below (tainted, ⊤-conf) in the integrity
      dimension — i.e. only untainted data, of any confidentiality **no**:
      they require < (tainted, secret), so (untainted, secret) and
      (untainted, public) pass, while anything tainted fails.
    * ``send_external`` (exfiltration) requires < (tainted, secret) as
      well in this encoding's dual reading — see the dedicated sink
      levels below for the precise thresholds.

    Sources: request superglobals produce (tainted, public); credential
    reads produce (untainted, secret); session data is (tainted, secret).
    Sanitizers restore integrity but preserve confidentiality **top**:
    the stock ``htmlspecialchars`` returns (untainted, public) — apply
    ``declassify`` for confidentiality instead.
    """
    integrity = two_point_lattice()
    confidentiality = linear_lattice([CONF_PUBLIC, CONF_SECRET])
    lattice = product_lattice(integrity, confidentiality)
    prelude = Prelude(lattice)

    tainted_public = (INTEGRITY_TAINTED, CONF_PUBLIC)
    tainted_secret = (INTEGRITY_TAINTED, CONF_SECRET)
    untainted_secret = (INTEGRITY_UNTAINTED, CONF_SECRET)

    for name in ("_GET", "_POST", "_COOKIE", "_REQUEST", "HTTP_REFERER"):
        prelude.add_superglobal(name, tainted_public)
    prelude.add_superglobal("_SESSION", tainted_secret)

    # Credential/secret reads: trusted but confidential.
    prelude.add_source("read_credential", untainted_secret)
    prelude.add_source("mysql_fetch_array", tainted_public)

    # Integrity sinks: require untainted data (any confidentiality).
    # assert(t < (tainted, secret)) admits (untainted, public) and
    # (untainted, secret) and (tainted, public)?  No: (tainted, public) <
    # (tainted, secret) holds, so the threshold must be per-dimension.
    # We therefore use (tainted, public) as the required level: strictly
    # below it is only (untainted, public).  For untainted-secret data to
    # pass integrity sinks, declassify first.
    for name in ("echo", "print"):
        prelude.add_sink(name, tainted_public, vuln_class=VulnClass.XSS)
    for name in ("mysql_query", "dosql"):
        prelude.add_sink(name, tainted_public, vuln_class=VulnClass.SQL)

    # Confidentiality sinks: require non-secret data (any integrity is
    # tolerated by this sink; strictly below (untainted, secret) is only
    # (untainted, public)) — exfiltration of tainted-public data is
    # likewise rejected, which is the conservative choice.
    prelude.add_sink("send_external", untainted_secret, vuln_class=VulnClass.OTHER)

    # Sanitizers / declassifiers.
    prelude.add_sanitizer("htmlspecialchars", lattice.bottom)
    prelude.add_sanitizer("intval", lattice.bottom)
    prelude.add_sanitizer("declassify", lattice.bottom)
    prelude.add_propagator("substr")
    prelude.add_propagator("trim")
    return prelude


def multilevel_prelude(levels: list[str] | None = None) -> Prelude:
    """Linear clearance policy: ``public <= internal <= secret <= topsecret``.

    Sinks are registered at each level: a sink named ``emit_<level>``
    accepts data strictly below ``<level>``'s successor — i.e. data at or
    below that level.
    """
    names = levels if levels is not None else ["public", "internal", "secret", "topsecret"]
    lattice = linear_lattice(names)
    prelude = Prelude(lattice)
    prelude.add_superglobal("_GET", names[min(1, len(names) - 1)])
    prelude.add_superglobal("_POST", names[min(1, len(names) - 1)])
    for index, level in enumerate(names):
        if index + 1 < len(names):
            prelude.add_sink(f"emit_{level}", names[index + 1])
    prelude.add_sanitizer("declassify", names[0])
    return prelude
