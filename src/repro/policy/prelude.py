"""Preludes: pre- and postcondition definitions for library functions.

WebSSARI stores UIC/SOC pre/postconditions and sanitization routines "in
two prelude files that are loaded during startup" (paper §3.2/§4), and
users can supply their own.  A :class:`Prelude` here plays the same role:
it maps function and superglobal names to their information-flow effects
over a chosen security lattice.

Effect kinds
------------

* **source** (UIC, ``fi``): the call returns data at a fixed level
  (usually ⊤/tainted), e.g. ``getenv``, ``mysql_fetch_array``.
* **sink** (SOC, ``fo``): the call requires argument levels strictly
  below ``required`` (the ``assert(X, τ_r)`` precondition), e.g.
  ``echo``, ``mysql_query``, ``exec``.
* **sanitizer**: the call returns data pinned at a safe level, e.g.
  ``htmlspecialchars``, ``intval``.
* **propagate**: the call returns the join of its argument levels
  (``substr``, ``trim``, …) — also the default for unknown builtins.
* **taint-environment** (``fi(X)`` with unknown X): calls such as
  ``extract($row)`` that may define arbitrary variables from untrusted
  data; the filter responds by treating reads of never-assigned
  variables as tainted.

Superglobals (``$_GET`` …) are variable-shaped UICs: any read of them
(or of one of their elements) yields the configured level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lattice import FiniteLattice, Lattice, two_point_lattice
from repro.lattice.types import TAINTED, UNTAINTED

__all__ = [
    "EffectKind",
    "FunctionEffect",
    "Prelude",
    "default_php_prelude",
    "VulnClass",
]


class VulnClass(enum.Enum):
    """Vulnerability class a sink belongs to — used in error reports."""

    XSS = "cross-site scripting"
    SQL = "SQL injection"
    COMMAND = "command injection"
    CODE = "code injection"
    FILE = "file manipulation"
    OTHER = "insecure data use"


class EffectKind(enum.Enum):
    SOURCE = "source"
    SINK = "sink"
    SANITIZER = "sanitizer"
    PROPAGATE = "propagate"
    TAINT_ENVIRONMENT = "taint_environment"


@dataclass(frozen=True)
class FunctionEffect:
    """Information-flow contract of one library function."""

    kind: EffectKind
    #: SOURCE: level of the returned data.  SANITIZER: level the return
    #: value is pinned to.  Unused for other kinds.
    level: object = None
    #: SINK: the τ_r of the precondition assert(X, τ_r).
    required: object = None
    #: SINK: indices of checked arguments (None = all arguments).
    checked_args: tuple[int, ...] | None = None
    #: SINK: vulnerability classification for reports.
    vuln_class: VulnClass = VulnClass.OTHER


class Prelude:
    """A policy: a lattice plus per-function and per-superglobal effects."""

    def __init__(self, lattice: Lattice | None = None) -> None:
        self.lattice: Lattice = lattice if lattice is not None else two_point_lattice()
        self._functions: dict[str, FunctionEffect] = {}
        self._methods: dict[str, FunctionEffect] = {}
        self._superglobals: dict[str, object] = {}

    # -- registration (function names are case-insensitive, like PHP) -----

    def add_source(self, name: str, level: object | None = None) -> None:
        level = self.lattice.top if level is None else level
        self.lattice.check_member(level)
        self._functions[name.lower()] = FunctionEffect(EffectKind.SOURCE, level=level)

    def add_sink(
        self,
        name: str,
        required: object | None = None,
        checked_args: tuple[int, ...] | None = None,
        vuln_class: VulnClass = VulnClass.OTHER,
    ) -> None:
        required = self.lattice.top if required is None else required
        self.lattice.check_member(required)
        self._functions[name.lower()] = FunctionEffect(
            EffectKind.SINK,
            required=required,
            checked_args=checked_args,
            vuln_class=vuln_class,
        )

    def add_sanitizer(self, name: str, level: object | None = None) -> None:
        level = self.lattice.bottom if level is None else level
        self.lattice.check_member(level)
        self._functions[name.lower()] = FunctionEffect(EffectKind.SANITIZER, level=level)

    def add_propagator(self, name: str) -> None:
        self._functions[name.lower()] = FunctionEffect(EffectKind.PROPAGATE)

    def add_environment_tainter(self, name: str) -> None:
        self._functions[name.lower()] = FunctionEffect(EffectKind.TAINT_ENVIRONMENT)

    def add_method_sink(
        self,
        method: str,
        required: object | None = None,
        vuln_class: VulnClass = VulnClass.OTHER,
    ) -> None:
        required = self.lattice.top if required is None else required
        self._methods[method.lower()] = FunctionEffect(
            EffectKind.SINK, required=required, vuln_class=vuln_class
        )

    def add_superglobal(self, name: str, level: object | None = None) -> None:
        level = self.lattice.top if level is None else level
        self.lattice.check_member(level)
        self._superglobals[name] = level

    # -- lookup -------------------------------------------------------------

    def function_effect(self, name: str) -> FunctionEffect | None:
        return self._functions.get(name.lower())

    def method_effect(self, name: str) -> FunctionEffect | None:
        return self._methods.get(name.lower())

    def superglobal_level(self, name: str) -> object | None:
        return self._superglobals.get(name)

    def is_superglobal(self, name: str) -> bool:
        return name in self._superglobals

    def sink_names(self) -> list[str]:
        return sorted(
            name
            for name, effect in self._functions.items()
            if effect.kind is EffectKind.SINK
        )

    def sanitizer_names(self) -> list[str]:
        return sorted(
            name
            for name, effect in self._functions.items()
            if effect.kind is EffectKind.SANITIZER
        )


#: Name of the sanitization routine the instrumentor inserts (paper §4:
#: "it inserts a statement that secures the variable by treating it with
#: a sanitization routine").
GUARD_FUNCTION = "__webssari_sanitize"


def default_php_prelude(lattice: FiniteLattice | None = None) -> Prelude:
    """The stock PHP policy: taint lattice, standard sources/sinks/sanitizers.

    Mirrors the policy the paper's experiments use: superglobals and HTTP
    metadata are tainted; echo/print and SQL/command/eval functions are
    sinks; the usual escaping functions sanitize.  Users extend the
    returned prelude exactly like WebSSARI's user-supplied prelude files.
    """
    prelude = Prelude(lattice)
    tainted = prelude.lattice.top

    # Superglobals — untrusted input channels in variable form.  The
    # paper (§2.2) stresses that HTTP_REFERER, cookies, and other request
    # metadata are as untrusted as GET/POST parameters.
    for name in (
        "_GET",
        "_POST",
        "_COOKIE",
        "_REQUEST",
        "_FILES",
        "_SERVER",
        "_ENV",
        # Session data routinely stores user input (the paper's Figure 1
        # inserts $_SESSION['username'] into SQL), so it is untrusted.
        "_SESSION",
        "HTTP_SESSION_VARS",
        "HTTP_GET_VARS",
        "HTTP_POST_VARS",
        "HTTP_COOKIE_VARS",
        "HTTP_SERVER_VARS",
        "HTTP_ENV_VARS",
        "HTTP_REFERER",
        "HTTP_USER_AGENT",
        "PHP_SELF",
        "QUERY_STRING",
    ):
        prelude.add_superglobal(name, tainted)

    # Sources — functions returning untrusted data.
    for name in (
        "get_http_vars",
        "getenv",
        "getallheaders",
        "file_get_contents",
        "fgets",
        "fread",
        "file",
        "gzread",
        "gzgets",
        # Database reads: stored data is untrusted (stored XSS — the
        # paper's Figure 2 scenario).
        "mysql_fetch_array",
        "mysql_fetch_row",
        "mysql_fetch_assoc",
        "mysql_fetch_object",
        "mysql_result",
        "pg_fetch_array",
        "pg_fetch_row",
        "pg_fetch_assoc",
        "pg_fetch_result",
    ):
        prelude.add_source(name, tainted)

    # Environment tainters — fi(X) with statically-unknown X.
    for name in ("extract", "import_request_variables", "parse_str", "mb_parse_str"):
        prelude.add_environment_tainter(name)

    # Sinks — sensitive output channels with their required levels.
    for name in ("echo", "print", "printf", "vprintf", "print_r", "die", "exit"):
        prelude.add_sink(name, tainted, vuln_class=VulnClass.XSS)
    for name in (
        "mysql_query",
        "mysql_db_query",
        "mysql_unbuffered_query",
        "mysqli_query",
        "pg_query",
        "pg_exec",
        "sqlite_query",
        "dosql",
        "odbc_exec",
    ):
        prelude.add_sink(name, tainted, vuln_class=VulnClass.SQL)
    for name in ("exec", "system", "passthru", "shell_exec", "popen", "proc_open", "pcntl_exec"):
        prelude.add_sink(name, tainted, vuln_class=VulnClass.COMMAND)
    for name in ("eval", "assert", "create_function", "preg_replace_eval"):
        prelude.add_sink(name, tainted, vuln_class=VulnClass.CODE)
    for name in ("fopen", "readfile", "unlink", "rmdir", "mkdir", "file_put_contents", "touch", "copy", "rename", "move_uploaded_file"):
        prelude.add_sink(name, tainted, vuln_class=VulnClass.FILE)
    prelude.add_sink("header", tainted, vuln_class=VulnClass.OTHER)
    prelude.add_sink("setcookie", tainted, vuln_class=VulnClass.OTHER)
    prelude.add_sink("mail", tainted, vuln_class=VulnClass.OTHER)

    # Method-name sinks for common DB wrapper objects ($db->query(...)).
    prelude.add_method_sink("query", tainted, vuln_class=VulnClass.SQL)
    prelude.add_method_sink("execute", tainted, vuln_class=VulnClass.SQL)

    # Sanitizers — functions whose output is trusted.
    for name in (
        GUARD_FUNCTION,
        "htmlspecialchars",
        "htmlentities",
        "addslashes",
        "mysql_escape_string",
        "mysql_real_escape_string",
        "mysqli_real_escape_string",
        "pg_escape_string",
        "escapeshellarg",
        "escapeshellcmd",
        "intval",
        "floatval",
        "urlencode",
        "rawurlencode",
        "md5",
        "sha1",
        "crc32",
        "base64_encode",
        "strip_tags",
        "count",
        "sizeof",
        "strlen",
    ):
        prelude.add_sanitizer(name, prelude.lattice.bottom)

    # Propagators — pure string/array functions that forward taint.
    for name in (
        "substr",
        "trim",
        "ltrim",
        "rtrim",
        "str_replace",
        "preg_replace",
        "str_pad",
        "strtolower",
        "strtoupper",
        "ucfirst",
        "ucwords",
        "sprintf",
        "vsprintf",
        "implode",
        "join",
        "explode",
        "array_merge",
        "array_values",
        "array_keys",
        "serialize",
        "unserialize",
        "stripslashes",
        "nl2br",
        "wordwrap",
        "number_format",
        "strrev",
        "str_repeat",
        "chunk_split",
        "strval",
        "urldecode",
        "rawurldecode",
        "base64_decode",
        "html_entity_decode",
        "htmlspecialchars_decode",
    ):
        prelude.add_propagator(name)

    return prelude
