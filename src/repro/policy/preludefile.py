"""Textual prelude files.

WebSSARI stores pre/postconditions in "two prelude files that are loaded
during startup", and "users can supply the prelude with their own
routines" (paper §3.2, §4).  This module defines a simple line-oriented
format with the same role, so policies can be versioned alongside the
application they protect:

```
# comments and blank lines are ignored
lattice linear public internal secret   # optional; default: taint lattice

superglobal _GET            secret
source      mysql_fetch_array secret
sink        mysql_query     secret  sql
sink        echo            secret  xss
sanitizer   htmlspecialchars public
propagator  substr
tainter     extract
method_sink query           secret  sql
```

``load_prelude``/``parse_prelude`` build a :class:`Prelude` from such a
file on top of (by default) the stock PHP policy; ``render_prelude``
serializes a prelude back to the format.
"""

from __future__ import annotations

from pathlib import Path

from repro.lattice import FiniteLattice, linear_lattice, two_point_lattice
from repro.policy.prelude import EffectKind, Prelude, VulnClass, default_php_prelude

__all__ = ["PreludeSyntaxError", "parse_prelude", "load_prelude", "render_prelude"]


class PreludeSyntaxError(ValueError):
    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_VULN_BY_NAME = {
    "xss": VulnClass.XSS,
    "sql": VulnClass.SQL,
    "command": VulnClass.COMMAND,
    "code": VulnClass.CODE,
    "file": VulnClass.FILE,
    "other": VulnClass.OTHER,
}


def _strip_comment(line: str) -> str:
    index = line.find("#")
    return line if index == -1 else line[:index]


def parse_prelude(text: str, base: Prelude | None = None) -> Prelude:
    """Parse prelude text; directives extend ``base`` (default: the stock
    PHP policy; pass an empty ``Prelude()`` for a from-scratch policy).

    A ``lattice`` directive must appear before any other directive and
    replaces the base entirely (levels must then be named explicitly).
    """
    prelude = base
    seen_directive = False

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        parts = line.split()
        directive, args = parts[0].lower(), parts[1:]

        if directive == "lattice":
            if seen_directive:
                raise PreludeSyntaxError(
                    "'lattice' must precede all other directives", line_number
                )
            prelude = Prelude(_parse_lattice(args, line_number))
            seen_directive = True
            continue

        if prelude is None:
            prelude = default_php_prelude()
        seen_directive = True

        try:
            _apply_directive(prelude, directive, args, line_number)
        except PreludeSyntaxError:
            raise
        except Exception as exc:  # lattice membership errors etc.
            raise PreludeSyntaxError(str(exc), line_number) from exc

    if prelude is None:
        prelude = default_php_prelude()
    return prelude


def _parse_lattice(args: list[str], line_number: int) -> FiniteLattice:
    if not args:
        raise PreludeSyntaxError("'lattice' needs a kind", line_number)
    kind = args[0].lower()
    if kind == "taint":
        return two_point_lattice()
    if kind == "linear":
        if len(args) < 3:
            raise PreludeSyntaxError("'lattice linear' needs >= 2 levels", line_number)
        return linear_lattice(args[1:])
    raise PreludeSyntaxError(f"unknown lattice kind {kind!r}", line_number)


def _level(prelude: Prelude, token: str, line_number: int):
    for element in prelude.lattice.elements:
        if str(element) == token:
            return element
    raise PreludeSyntaxError(f"unknown lattice level {token!r}", line_number)


def _apply_directive(prelude: Prelude, directive: str, args: list[str], line_number: int) -> None:
    if directive == "superglobal":
        if len(args) not in (1, 2):
            raise PreludeSyntaxError("usage: superglobal NAME [LEVEL]", line_number)
        level = _level(prelude, args[1], line_number) if len(args) == 2 else None
        prelude.add_superglobal(args[0], level)
    elif directive == "source":
        if len(args) not in (1, 2):
            raise PreludeSyntaxError("usage: source NAME [LEVEL]", line_number)
        level = _level(prelude, args[1], line_number) if len(args) == 2 else None
        prelude.add_source(args[0], level)
    elif directive == "sink":
        if len(args) not in (1, 2, 3):
            raise PreludeSyntaxError("usage: sink NAME [LEVEL] [CLASS]", line_number)
        level = _level(prelude, args[1], line_number) if len(args) >= 2 else None
        vuln = _VULN_BY_NAME.get(args[2].lower()) if len(args) == 3 else VulnClass.OTHER
        if len(args) == 3 and vuln is None:
            raise PreludeSyntaxError(f"unknown vulnerability class {args[2]!r}", line_number)
        prelude.add_sink(args[0], level, vuln_class=vuln or VulnClass.OTHER)
    elif directive == "sanitizer":
        if len(args) not in (1, 2):
            raise PreludeSyntaxError("usage: sanitizer NAME [LEVEL]", line_number)
        level = _level(prelude, args[1], line_number) if len(args) == 2 else None
        prelude.add_sanitizer(args[0], level)
    elif directive == "propagator":
        if len(args) != 1:
            raise PreludeSyntaxError("usage: propagator NAME", line_number)
        prelude.add_propagator(args[0])
    elif directive == "tainter":
        if len(args) != 1:
            raise PreludeSyntaxError("usage: tainter NAME", line_number)
        prelude.add_environment_tainter(args[0])
    elif directive == "method_sink":
        if len(args) not in (1, 2, 3):
            raise PreludeSyntaxError("usage: method_sink NAME [LEVEL] [CLASS]", line_number)
        level = _level(prelude, args[1], line_number) if len(args) >= 2 else None
        vuln = _VULN_BY_NAME.get(args[2].lower(), VulnClass.OTHER) if len(args) == 3 else VulnClass.OTHER
        prelude.add_method_sink(args[0], level, vuln_class=vuln)
    else:
        raise PreludeSyntaxError(f"unknown directive {directive!r}", line_number)


def load_prelude(path: str | Path, base: Prelude | None = None) -> Prelude:
    return parse_prelude(Path(path).read_text(), base=base)


def render_prelude(prelude: Prelude) -> str:
    """Serialize the function tables of a prelude (lattice directives are
    only emitted for linear lattices built by this module)."""
    out = ["# WebSSARI prelude (generated)"]
    for name in sorted(prelude._superglobals):  # noqa: SLF001 - same package
        out.append(f"superglobal {name} {prelude._superglobals[name]}")
    for name, effect in sorted(prelude._functions.items()):  # noqa: SLF001
        if effect.kind is EffectKind.SOURCE:
            out.append(f"source {name} {effect.level}")
        elif effect.kind is EffectKind.SINK:
            vuln = next(
                (k for k, v in _VULN_BY_NAME.items() if v is effect.vuln_class), "other"
            )
            out.append(f"sink {name} {effect.required} {vuln}")
        elif effect.kind is EffectKind.SANITIZER:
            out.append(f"sanitizer {name} {effect.level}")
        elif effect.kind is EffectKind.PROPAGATE:
            out.append(f"propagator {name}")
        elif effect.kind is EffectKind.TAINT_ENVIRONMENT:
            out.append(f"tainter {name}")
    for name, effect in sorted(prelude._methods.items()):  # noqa: SLF001
        vuln = next(
            (k for k, v in _VULN_BY_NAME.items() if v is effect.vuln_class), "other"
        )
        out.append(f"method_sink {name} {effect.required} {vuln}")
    return "\n".join(out) + "\n"
