"""Security policies: prelude files mapping library functions to effects."""

from repro.policy.models import (
    integrity_confidentiality_prelude,
    multilevel_prelude,
)
from repro.policy.prelude import (
    GUARD_FUNCTION,
    EffectKind,
    FunctionEffect,
    Prelude,
    VulnClass,
    default_php_prelude,
)

__all__ = [
    "integrity_confidentiality_prelude",
    "multilevel_prelude",
    "GUARD_FUNCTION",
    "EffectKind",
    "FunctionEffect",
    "Prelude",
    "VulnClass",
    "default_php_prelude",
]
