"""The batch-audit scheduler: fan tasks over a worker pool, survive
anything a file can throw at it.

Design (persistent workers, pipelined two-deep):

* ``jobs`` long-lived worker processes are started once (fork where
  available, or ``spawn`` via :attr:`EngineConfig.start_method`), given
  their policy as an explicit session-setup message, and fed
  :class:`~repro.engine.worker.AuditTask` objects over duplex pipes, so
  process start-up cost is paid per *pool*, not per file.
* Each pipe holds up to :data:`_QUEUE_DEPTH` (2) tasks: while a worker
  computes its current file the next one is already buffered in the
  pipe, hiding the scheduler's wakeup latency (~1.3 ms/task round-trip
  measured on a 1-core box).  Tasks are dealt breadth-first — every
  worker gets a first task before any worker gets a second — so
  pipelining never starves an idle worker.
* Per-file wall-clock deadline: the clock for a task starts when it
  reaches the head of its worker's queue, so timeout semantics stay
  per-task despite pipelining.  An overdue worker is killed, the file
  recorded as ``timeout`` (deterministically slow files are not
  retried), its queued-but-unstarted tasks are requeued (they keep
  their attempt count — they never ran), and a fresh worker forked in
  its place.
* A worker that dies mid-task (hard crash, OOM kill) only ever takes its
  own file with it: the scheduler respawns the worker and retries the
  task once (``crash_retries``), then records it as ``crash``.
* Results are keyed by task index, so the final outcome list is in input
  order no matter how completion interleaves.
* With a :class:`~repro.engine.cache.ResultCache` attached, each task's
  content-addressed key is probed first; hits skip the pool entirely and
  fresh ``ok``/``frontend-error`` outcomes (the deterministic statuses)
  are written back.

``jobs <= 1`` runs tasks inline in the calling process — same outcome
records and caching, no subprocess machinery (and therefore no timeout
or crash isolation); useful for debugging and on single-core boxes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection
from typing import TYPE_CHECKING

from repro.engine.cache import ResultCache, cache_key, policy_fingerprint
from repro.engine.jsonl import JsonlSink
from repro.engine.stats import EngineStats, ProgressPrinter
from repro.engine.worker import (
    AuditTask,
    FileOutcome,
    FileRef,
    WorkerSession,
    _worker_loop,
    safe_execute,
)
from repro.obs import MetricsRegistry, Span, Tracer, span_from_dict
from repro.php.parsecache import content_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.websari.pipeline import WebSSARI

__all__ = ["AuditEngine", "EngineConfig", "EngineResult"]

#: Statuses whose outcome is a deterministic function of the inputs and
#: may therefore be cached.
_CACHEABLE_STATUSES = frozenset({"ok", "frontend-error"})

_POLL_INTERVAL = 0.05

#: Tasks buffered per worker pipe (1 executing + 1 queued).  Depth 2 is
#: enough to hide the scheduler round-trip; deeper queues only delay
#: crash/timeout requeueing without adding overlap.
_QUEUE_DEPTH = 2


@dataclass
class EngineConfig:
    """Knobs for one engine run."""

    jobs: int = 1
    #: Per-file wall-clock limit in seconds (None = unlimited).  Only
    #: enforced when ``jobs > 1`` (inline mode has no process to kill).
    timeout: float | None = None
    cache: ResultCache | None = None
    #: How many times to re-run a task whose worker died without a result.
    crash_retries: int = 1
    #: Attach the full VerificationReport to each outcome (pickled back
    #: from the worker).  Disables cache reads: reports cannot be
    #: reconstructed from JSON records.
    want_reports: bool = False
    progress: bool = False
    jsonl: JsonlSink | None = None
    #: Enabled tracer: workers collect per-stage span trees (down to
    #: per-assertion SAT solves) and the scheduler stitches them under a
    #: per-file root span on this tracer.  None (or a disabled tracer)
    #: keeps the whole path no-op.
    tracer: Tracer | None = None
    #: Metrics registry updated per finalized outcome (file/verdict
    #: counters, per-stage and solver totals, duration histogram).
    metrics: MetricsRegistry | None = None
    #: Graceful-shutdown hook: once this event is set, no further pending
    #: task is dispatched — tasks already executing (or buffered in a
    #: worker pipe) finish normally, everything else is finalized with
    #: status ``skipped``.  The ``repro watch`` daemon sets it from its
    #: SIGINT/SIGTERM handler so a signal drains the in-flight cycle
    #: instead of killing it mid-file.
    drain_event: threading.Event | None = None
    #: Multiprocessing start method for the pool: ``"fork"``, ``"spawn"``,
    #: or None to prefer fork where available (fastest) and fall back to
    #: the platform default.  Workers receive their policy as an explicit
    #: session-setup message either way, so both methods produce
    #: identical outcomes — ``spawn`` is the portable escape hatch for
    #: hosts without fork (and what remote worker nodes default through).
    start_method: str | None = None

    @property
    def tracing(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    @property
    def draining(self) -> bool:
        return self.drain_event is not None and self.drain_event.is_set()


@dataclass
class EngineResult:
    """Outcomes in input order, plus the run's aggregate counters."""

    outcomes: list[FileOutcome]
    stats: EngineStats

    @property
    def any_vulnerable(self) -> bool:
        return any(o.status == "ok" and not o.safe for o in self.outcomes)

    @property
    def any_failed(self) -> bool:
        return any(o.status != "ok" for o in self.outcomes)


@dataclass
class _Worker:
    """One persistent worker process and its pipelined task queue.

    ``inflight[0]`` is the task the worker is (assumed to be) executing;
    later entries are buffered in the pipe behind it.  ``started`` and
    ``deadline`` always refer to the head task and are reset whenever the
    head changes.
    """

    process: multiprocessing.process.BaseProcess
    conn: connection.Connection
    inflight: deque[tuple[AuditTask, int]] = field(default_factory=deque)
    started: float = 0.0
    deadline: float | None = None
    #: Content digests of project-file texts already sent down this pipe
    #: (mirrors the worker's session store): later tasks replace those
    #: texts with :class:`FileRef` placeholders.
    shipped: set[str] = field(default_factory=set)


class AuditEngine:
    """Batch verifier: give it tasks, get ordered outcomes + stats."""

    def __init__(self, websari: "WebSSARI | None" = None, config: EngineConfig | None = None) -> None:
        if websari is None:
            from repro.websari.pipeline import WebSSARI

            websari = WebSSARI()
        self.websari = websari
        self.config = config if config is not None else EngineConfig()

    # -- public API ---------------------------------------------------------

    def run(self, tasks: list[AuditTask]) -> EngineResult:
        config = self.config
        stats = EngineStats(total=len(tasks))
        progress = ProgressPrinter(total=len(tasks), enabled=config.progress)
        outcomes: dict[int, FileOutcome] = {}
        started = time.monotonic()
        tracer = config.tracer if config.tracing else None
        run_span = tracer.span("audit", files=len(tasks), jobs=config.jobs) if tracer else None

        keys: dict[int, str] = {}
        pending: deque[tuple[AuditTask, int]] = deque()
        if config.cache is not None:
            policy_fp = policy_fingerprint(self.websari)
            for task in tasks:
                material, extra = task.cache_material()
                keys[task.index] = cache_key(material, policy_fp, extra)

        completed = False
        if run_span is not None:
            run_span.__enter__()
        try:
            for task in tasks:
                hit = self._probe_cache(task, keys)
                if hit is not None:
                    self._finalize(hit, task, stats, progress, outcomes, keys)
                else:
                    pending.append((task, 1))
            try:
                if config.jobs <= 1:
                    self._run_inline(pending, stats, progress, outcomes, keys)
                else:
                    self._run_pool(pending, stats, progress, outcomes, keys)
            finally:
                progress.close()
            completed = True
        finally:
            # The trailer is written even on SIGINT / early termination:
            # an interrupted audit must still leave a well-formed stream
            # (every line standalone JSON, exactly one stats record).
            stats.wall_seconds = time.monotonic() - started
            if run_span is not None:
                run_span.__exit__(None, None, None)
            if config.jsonl is not None:
                payload = stats.as_dict()
                if not completed:
                    payload["interrupted"] = True
                config.jsonl.write_stats(payload)

        ordered = [outcomes[task.index] for task in tasks]
        return EngineResult(outcomes=ordered, stats=stats)

    # -- cache --------------------------------------------------------------

    def _probe_cache(self, task: AuditTask, keys: dict[int, str]) -> FileOutcome | None:
        config = self.config
        if config.cache is None or config.want_reports:
            return None
        record = config.cache.get(keys[task.index])
        if record is None:
            return None
        outcome = FileOutcome.from_record(record)
        outcome.cached = True
        outcome.cache_key = keys[task.index]
        outcome.timings = {}
        outcome.duration = 0.0
        outcome.attempts = 0
        return outcome

    def _finalize(
        self,
        outcome: FileOutcome,
        task: AuditTask,
        stats: EngineStats,
        progress: ProgressPrinter,
        outcomes: dict[int, FileOutcome],
        keys: dict[int, str],
    ) -> None:
        config = self.config
        key = keys.get(task.index)
        if key is not None:
            outcome.cache_key = key
            if not outcome.cached and outcome.status in _CACHEABLE_STATUSES:
                assert config.cache is not None
                config.cache.put(key, outcome.to_record())
        outcomes[task.index] = outcome
        stats.record(outcome)
        if config.tracing:
            self._stitch_trace(outcome)
        if config.metrics is not None:
            self._observe(outcome)
        if config.jsonl is not None:
            config.jsonl.write_file(outcome.to_record())
        progress.update(stats)

    # -- observability -------------------------------------------------------

    def _stitch_trace(self, outcome: FileOutcome) -> None:
        """Reparent the worker's serialized span trees under one per-file
        root span on the scheduler's tracer (children keep their worker
        pid/tid, so multi-process audits render one track per worker)."""
        tracer = self.config.tracer
        assert tracer is not None
        children = [span_from_dict(payload) for payload in outcome.trace or []]
        start = min((child.start for child in children), default=tracer.now())
        root = Span(
            "file:" + outcome.filename,
            start=start,
            duration=max(
                outcome.duration,
                max((child.end for child in children), default=start) - start,
            ),
            attrs={
                "filename": outcome.filename,
                "status": outcome.status,
                "cached": outcome.cached,
                "attempts": outcome.attempts,
            },
            pid=os.getpid(),
        )
        if outcome.safe is not None:
            root.attrs["safe"] = outcome.safe
        root.children = children
        tracer.add(root)

    def _observe(self, outcome: FileOutcome) -> None:
        metrics = self.config.metrics
        assert metrics is not None
        metrics.counter("repro_files_total", "audited files by outcome status").inc(
            status=outcome.status
        )
        if outcome.status == "ok":
            metrics.counter("repro_verdicts_total", "verdicts by kind").inc(
                verdict="safe" if outcome.safe else "vulnerable"
            )
            if outcome.num_ai_assertions:
                metrics.counter(
                    "repro_assertions_total", "AI assertions checked by the BMC stage"
                ).inc(outcome.num_ai_assertions)
        metrics.counter("repro_cache_lookups_total", "result-cache probes").inc(
            result="hit" if outcome.cached else "miss"
        )
        replay = getattr(outcome, "replay", None) or {}
        replay_counter = metrics.counter(
            "repro_replay_total", "witness-replay traces by verdict"
        )
        for verdict in ("confirmed", "refuted", "unsupported"):
            if replay.get(verdict):
                replay_counter.inc(replay[verdict], verdict=verdict)
        for patched in ("refuted", "confirmed", "unsupported"):
            if replay.get(f"patched_{patched}"):
                metrics.counter(
                    "repro_replay_patched_total",
                    "patched witness re-runs by verdict",
                ).inc(replay[f"patched_{patched}"], verdict=patched)
        metrics.histogram(
            "repro_file_seconds", "end-to-end wall seconds per file"
        ).observe(outcome.duration)
        if outcome.cached:
            return
        stage_counter = metrics.counter(
            "repro_stage_seconds_total", "worker CPU seconds by pipeline stage"
        )
        stage_histogram = metrics.histogram(
            "repro_stage_seconds", "per-file wall seconds by pipeline stage"
        )
        for stage, seconds in outcome.timings.items():
            if isinstance(seconds, (int, float)):
                stage_counter.inc(float(seconds), stage=stage)
                stage_histogram.observe(float(seconds), stage=stage)
        solver_counter = metrics.counter(
            "repro_solver_events_total", "aggregated SAT-solver counters"
        )
        backend = str(outcome.solver.get("backend", "unknown")) if outcome.solver else "unknown"
        for name, value in (outcome.solver or {}).items():
            if name == "backend" or not isinstance(value, int):
                continue
            solver_counter.inc(value, kind=name, backend=backend)
        includes = getattr(outcome, "includes", None) or {}
        if includes.get("edges"):
            metrics.counter(
                "repro_include_edges_total", "include edges seen while splicing"
            ).inc(includes["edges"])
        if includes.get("unresolved"):
            metrics.counter(
                "repro_unresolved_includes",
                "dynamic include paths left unresolved (coverage gap)",
            ).inc(includes["unresolved"])
        parse_hits = includes.get("parse_cache_hits", 0)
        parse_misses = includes.get("parse_cache_misses", 0)
        if parse_hits or parse_misses:
            parse_counter = metrics.counter(
                "repro_parse_cache_total", "parse-cache probes by result"
            )
            if parse_hits:
                parse_counter.inc(parse_hits, result="hit")
            if parse_misses:
                parse_counter.inc(parse_misses, result="miss")

    # -- graceful drain -----------------------------------------------------

    def _skip_pending(self, pending, stats, progress, outcomes, keys) -> None:
        """Finalize every not-yet-started task as ``skipped`` (drain path)."""
        while pending:
            task, attempt = pending.popleft()
            outcome = FileOutcome(
                filename=task.filename,
                status="skipped",
                error="not started: engine drained before dispatch",
            )
            outcome.attempts = attempt - 1  # it never ran
            self._finalize(outcome, task, stats, progress, outcomes, keys)

    # -- inline execution ---------------------------------------------------

    def _run_inline(self, pending, stats, progress, outcomes, keys) -> None:
        while pending:
            if self.config.draining:
                self._skip_pending(pending, stats, progress, outcomes, keys)
                return
            task, attempt = pending.popleft()
            outcome = safe_execute(
                task, self.websari, self.config.want_reports, self.config.tracing
            )
            outcome.attempts = attempt
            self._finalize(outcome, task, stats, progress, outcomes, keys)

    # -- pool execution -----------------------------------------------------

    def _mp_context(self):
        methods = multiprocessing.get_all_start_methods()
        method = self.config.start_method
        if method is None:
            method = "fork" if "fork" in methods else None
        elif method not in methods:
            raise ValueError(
                f"start method {method!r} unavailable on this platform "
                f"(have: {', '.join(methods)})"
            )
        return multiprocessing.get_context(method)

    def _spawn_worker(self, ctx) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(target=_worker_loop, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        # The policy travels as an explicit session message (not fork
        # inheritance), so fork and spawn workers are interchangeable.
        # A worker that dies before reading it surfaces through the
        # normal broken-pipe crash path on its first task.
        try:
            parent_conn.send(
                WorkerSession(
                    websari=self.websari,
                    want_report=self.config.want_reports,
                    collect_trace=self.config.tracing,
                )
            )
        except (BrokenPipeError, OSError):
            pass
        return _Worker(process, parent_conn)

    def _dedupe_for_pipe(
        self, task: AuditTask, shipped: set[str], stats: EngineStats
    ) -> AuditTask:
        """Build the pipe payload for ``task``: project-file texts this
        worker has already received become :class:`FileRef` digests.

        With closure-sliced tasks this makes a shared prelude cross each
        pipe once per worker session — per-task pickle volume drops from
        O(project) to O(unseen bytes).  The caller keeps the original
        task in ``inflight``; only the payload is stripped.
        """
        if task.project_files is None:
            return task
        payload: dict[str, object] = {}
        sent = 0
        deduped = 0
        for path, text in task.project_files.items():
            digest = content_digest(text)
            if digest in shipped:
                payload[path] = FileRef(digest)
                deduped += len(text)
            else:
                shipped.add(digest)
                payload[path] = text
                sent += len(text)
        stats.closure_bytes_shipped += sent
        stats.closure_bytes_deduped += deduped
        if self.config.metrics is not None:
            counter = self.config.metrics.counter(
                "repro_closure_bytes_shipped_total",
                "project-slice bytes sent to workers, by pipe outcome",
            )
            if sent:
                counter.inc(sent, result="sent")
            if deduped:
                counter.inc(deduped, result="deduped")
        return replace(task, project_files=payload)  # type: ignore[arg-type]

    def _run_pool(self, pending, stats, progress, outcomes, keys) -> None:
        config = self.config
        ctx = self._mp_context()
        workers: list[_Worker] = []

        def discard(worker: _Worker) -> None:
            worker.process.terminate()
            worker.process.join()
            worker.conn.close()
            workers.remove(worker)

        def rearm(worker: _Worker) -> None:
            """The head of the queue changed: restart its task clock."""
            worker.started = time.monotonic()
            worker.deadline = worker.started + config.timeout if config.timeout else None

        def requeue_tail(worker: _Worker) -> None:
            """Return queued-but-unstarted tasks to the front of pending,
            preserving order and attempt counts (they never ran)."""
            while worker.inflight:
                pending.appendleft(worker.inflight.pop())

        def finish(worker: _Worker, outcome: FileOutcome) -> None:
            task, attempt = worker.inflight.popleft()
            outcome.attempts = attempt
            if not outcome.duration:
                outcome.duration = time.monotonic() - worker.started
            if worker.inflight:
                rearm(worker)
            self._finalize(outcome, task, stats, progress, outcomes, keys)

        def crashed(worker: _Worker) -> None:
            """Pipe broke with no payload: the worker died mid-task.

            Only the head task was executing — it gets the retry/crash
            accounting; anything buffered behind it is requeued untouched.
            """
            task, attempt = worker.inflight.popleft()
            requeue_tail(worker)
            worker.process.join()
            code = worker.process.exitcode
            if attempt <= config.crash_retries:
                pending.appendleft((task, attempt + 1))
            else:
                worker.inflight.appendleft((task, attempt))
                finish(
                    worker,
                    FileOutcome(
                        filename=task.filename,
                        status="crash",
                        error=f"worker exited with code {code} before reporting a result",
                    ),
                )
            discard(worker)

        def drain(worker: _Worker) -> None:
            try:
                outcome: FileOutcome = worker.conn.recv()
            except (EOFError, OSError):
                crashed(worker)
            else:
                finish(worker, outcome)

        try:
            while pending or any(w.inflight for w in workers):
                if config.draining:
                    # Graceful shutdown: whatever is buffered in a worker
                    # pipe still runs to completion, but nothing new is
                    # dispatched — undispatched tasks become ``skipped``.
                    self._skip_pending(pending, stats, progress, outcomes, keys)
                    if not any(w.inflight for w in workers):
                        break
                else:
                    # Keep the pool at strength: one worker per pending or
                    # busy slot, capped at ``jobs`` (covers both initial
                    # spawn and replacement after crash/timeout discards).
                    busy_count = sum(1 for w in workers if w.inflight)
                    desired = min(config.jobs, len(pending) + busy_count)
                    while len(workers) < desired:
                        workers.append(self._spawn_worker(ctx))

                    # Deal tasks breadth-first: fill every worker's first
                    # slot before buffering a second task behind anyone, so
                    # the pipeline never starves an idle worker.
                    for depth in range(1, _QUEUE_DEPTH + 1):
                        for worker in list(workers):
                            if len(worker.inflight) >= depth or not pending:
                                continue
                            if not worker.process.is_alive():
                                if worker.inflight:
                                    continue  # let the drain path handle it
                                discard(worker)
                                continue
                            task, attempt = pending.popleft()
                            was_idle = not worker.inflight
                            # inflight keeps the ORIGINAL task: a requeue
                            # to a fresh worker (empty store) must re-ship
                            # full texts, not dangling FileRefs.
                            worker.inflight.append((task, attempt))
                            if was_idle:
                                rearm(worker)
                            try:
                                worker.conn.send(
                                    self._dedupe_for_pipe(task, worker.shipped, stats)
                                )
                            except (BrokenPipeError, OSError):
                                crashed(worker)

                busy = [w for w in workers if w.inflight]
                if not busy:
                    continue
                ready = connection.wait([w.conn for w in busy], timeout=_POLL_INTERVAL)
                for worker in busy:
                    if worker not in workers:  # replaced earlier this round
                        continue
                    if worker.conn in ready:
                        drain(worker)
                        continue
                    if worker.deadline is not None and time.monotonic() > worker.deadline:
                        head_task = worker.inflight[0][0]
                        finish(
                            worker,
                            FileOutcome(
                                filename=head_task.filename,
                                status="timeout",
                                error=f"exceeded {config.timeout:g}s wall-clock limit",
                            ),
                        )
                        requeue_tail(worker)
                        discard(worker)
                        continue
                    if not worker.process.is_alive():
                        # Died between wait() and now; a payload may still be
                        # buffered (poll() is also True at bare EOF, in which
                        # case drain() routes to crash handling).
                        if worker.conn.poll():
                            drain(worker)
                        else:
                            crashed(worker)
        finally:
            for worker in list(workers):
                if not worker.inflight and worker.process.is_alive():
                    try:
                        worker.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
                discard(worker)
