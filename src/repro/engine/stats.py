"""Engine observability: per-run counters, stage timings, live progress.

The paper's evaluation is a corpus sweep (230 projects, ~1.1M
statements); at that scale the sweep itself needs instruments.  Every
file outcome feeds an :class:`EngineStats` accumulator — cache hit/miss
counters, verdict tallies, per-stage (parse / filter / AI / SAT) time —
and a :class:`ProgressPrinter` keeps one live status line on a terminal
while the pool drains.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING

from repro.obs.ledger import SlowQueryLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.worker import FileOutcome

__all__ = ["EngineStats", "ProgressPrinter", "STAGES"]

#: Pipeline stages the worker times individually.
STAGES = ("parse", "filter", "ai", "sat", "replay")


@dataclass
class EngineStats:
    """Aggregated counters for one engine run."""

    total: int = 0
    completed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    vulnerable: int = 0
    safe: int = 0
    frontend_errors: int = 0
    errors: int = 0
    timeouts: int = 0
    crashes: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    #: CPU seconds spent inside each pipeline stage, summed over workers
    #: (cache hits contribute nothing: their stages never ran this run).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: SAT-solver counters (decisions, conflicts, propagations, restarts,
    #: learned clauses, solve calls) summed over non-cached outcomes.
    solver_totals: dict[str, int] = field(default_factory=dict)
    #: Outcomes whose status is none of the known five — counted here
    #: (and in :attr:`failed`) instead of being silently folded into
    #: ``errors``.
    other_statuses: dict[str, int] = field(default_factory=dict)
    #: Include-layer counters (edges, included_files, unresolved,
    #: parse_cache_hits/misses) summed over non-cached project outcomes.
    include_totals: dict[str, int] = field(default_factory=dict)
    #: Project-slice bytes actually sent down worker pipes this run, and
    #: bytes avoided because the pipe's worker already held the content.
    closure_bytes_shipped: int = 0
    closure_bytes_deduped: int = 0
    #: Witness-replay verdict counters (confirmed / refuted / unsupported
    #: plus the patched_* re-run tallies and skipped overflow), summed
    #: over every outcome carrying a ``replay`` section — cached ones
    #: included, since a cached replay verdict is still this run's
    #: verdict.
    replay_totals: dict[str, int] = field(default_factory=dict)
    #: Run-wide top-K hardest SAT queries, merged from per-file ledgers
    #: (cache hits contribute nothing: their solves never ran this run).
    slow_queries: SlowQueryLedger = field(default_factory=SlowQueryLedger)

    def record(self, outcome: "FileOutcome") -> None:
        self.completed += 1
        if outcome.cached:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
            # Tolerate unexpected stage keys and non-numeric values: an
            # outcome from a newer/older worker must never abort or skew
            # the aggregate mid-run.
            for stage, seconds in outcome.timings.items():
                if isinstance(seconds, (int, float)) and not isinstance(seconds, bool):
                    self.stage_seconds[stage] = (
                        self.stage_seconds.get(stage, 0.0) + float(seconds)
                    )
            for name, value in (getattr(outcome, "solver", None) or {}).items():
                if name != "backend" and isinstance(value, int) and not isinstance(value, bool):
                    self.solver_totals[name] = self.solver_totals.get(name, 0) + value
            for name, value in (getattr(outcome, "includes", None) or {}).items():
                if isinstance(value, int) and not isinstance(value, bool):
                    self.include_totals[name] = self.include_totals.get(name, 0) + value
            self.slow_queries.merge(getattr(outcome, "slow_queries", None))
        for name, value in (getattr(outcome, "replay", None) or {}).items():
            if isinstance(value, int) and not isinstance(value, bool):
                self.replay_totals[name] = self.replay_totals.get(name, 0) + value
        self.retries += max(0, outcome.attempts - 1)
        if outcome.status == "ok":
            if outcome.safe:
                self.safe += 1
            else:
                self.vulnerable += 1
        elif outcome.status == "frontend-error":
            self.frontend_errors += 1
        elif outcome.status == "timeout":
            self.timeouts += 1
        elif outcome.status == "crash":
            self.crashes += 1
        elif outcome.status == "error":
            self.errors += 1
        else:
            self.other_statuses[outcome.status] = (
                self.other_statuses.get(outcome.status, 0) + 1
            )

    @property
    def failed(self) -> int:
        """Files that produced no verdict (any non-ok status)."""
        return (
            self.frontend_errors
            + self.errors
            + self.timeouts
            + self.crashes
            + sum(self.other_statuses.values())
        )

    def hit_rate(self) -> float:
        return self.cache_hits / self.completed if self.completed else 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "vulnerable": self.vulnerable,
            "safe": self.safe,
            "frontend_errors": self.frontend_errors,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "retries": self.retries,
            "wall_seconds": round(self.wall_seconds, 6),
            "stage_seconds": {k: round(v, 6) for k, v in sorted(self.stage_seconds.items())},
            "solver": dict(sorted(self.solver_totals.items())),
            "includes": dict(sorted(self.include_totals.items())),
            "replay": dict(sorted(self.replay_totals.items())),
            "closure_bytes_shipped": self.closure_bytes_shipped,
            "closure_bytes_deduped": self.closure_bytes_deduped,
            "other_statuses": dict(sorted(self.other_statuses.items())),
            "slow_queries": self.slow_queries.records(),
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"audited {self.completed}/{self.total} file(s) in {self.wall_seconds:.2f}s: "
            f"{self.safe} safe, {self.vulnerable} vulnerable, {self.failed} failed",
            f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)"
            + (f" ({100.0 * self.hit_rate():.0f}% hit rate)" if self.completed else ""),
        ]
        if self.failed:
            parts = []
            if self.frontend_errors:
                parts.append(f"{self.frontend_errors} frontend error(s)")
            if self.errors:
                parts.append(f"{self.errors} error(s)")
            if self.timeouts:
                parts.append(f"{self.timeouts} timeout(s)")
            if self.crashes:
                parts.append(f"{self.crashes} crash(es)")
            for status, count in sorted(self.other_statuses.items()):
                parts.append(f"{count} {status}")
            lines.append("failures: " + ", ".join(parts))
        if self.retries:
            lines.append(f"retries: {self.retries}")
        if self.stage_seconds:
            shown = [stage for stage in STAGES if stage in self.stage_seconds]
            extras = sorted(set(self.stage_seconds) - set(STAGES))
            stage_text = ", ".join(
                f"{stage} {self.stage_seconds[stage]:.2f}s" for stage in shown + extras
            )
            lines.append(f"stage time: {stage_text}")
        if self.solver_totals:
            solver_parts = [
                f"{self.solver_totals[name]} {label}"
                for name, label in (
                    ("solve_calls", "solve call(s)"),
                    ("decisions", "decisions"),
                    ("propagations", "propagations"),
                    ("conflicts", "conflicts"),
                    ("learned_clauses", "learned"),
                    ("restarts", "restarts"),
                    ("preprocessed_clauses", "preprocessed"),
                    ("lbd_deletions", "LBD deletion(s)"),
                )
                if name in self.solver_totals
            ]
            if solver_parts:
                lines.append("solver: " + ", ".join(solver_parts))
            if self.solver_totals.get("cache_hits", 0) or self.solver_totals.get(
                "cache_misses", 0
            ):
                lines.append(
                    f"sat-cache: {self.solver_totals.get('cache_hits', 0)} hit(s), "
                    f"{self.solver_totals.get('cache_misses', 0)} miss(es)"
                )
        if self.include_totals:
            include_parts = [
                f"{self.include_totals[name]} {label}"
                for name, label in (
                    ("edges", "edge(s)"),
                    ("included_files", "spliced"),
                    ("unresolved", "unresolved dynamic"),
                )
                if name in self.include_totals
            ]
            if include_parts:
                lines.append("includes: " + ", ".join(include_parts))
            if self.include_totals.get("parse_cache_hits", 0) or self.include_totals.get(
                "parse_cache_misses", 0
            ):
                lines.append(
                    f"parse-cache: {self.include_totals.get('parse_cache_hits', 0)} hit(s), "
                    f"{self.include_totals.get('parse_cache_misses', 0)} miss(es)"
                )
        if self.replay_totals:
            replay_parts = [
                f"{self.replay_totals.get(name, 0)} {name}"
                for name in ("confirmed", "refuted", "unsupported")
                if self.replay_totals.get(name, 0)
            ]
            lines.append(
                "replay: " + (", ".join(replay_parts) if replay_parts else "0 traces")
            )
            if self.replay_totals.get("patched_refuted", 0) or self.replay_totals.get(
                "patched_confirmed", 0
            ):
                lines.append(
                    f"patched replay: {self.replay_totals.get('patched_refuted', 0)} "
                    f"killed, {self.replay_totals.get('patched_confirmed', 0)} survived"
                )
        if self.closure_bytes_shipped or self.closure_bytes_deduped:
            lines.append(
                f"closure shipping: {self.closure_bytes_shipped} byte(s) sent, "
                f"{self.closure_bytes_deduped} byte(s) deduped"
            )
        if self.slow_queries:
            top = self.slow_queries.records()[0]
            lines.append(
                f"slowest sat query: {float(top.get('seconds', 0.0)):.3f}s "
                f"({top.get('file', '?')}, assertion {top.get('assert_id', '?')})"
            )
        return lines


class ProgressPrinter:
    """One live ``\\r``-rewritten status line (only when enabled).

    Writes to ``stream`` (default stderr) so report text on stdout stays
    machine-parseable; :meth:`close` clears the line.
    """

    def __init__(self, total: int, enabled: bool = True, stream: IO[str] | None = None) -> None:
        self.total = total
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self._started = time.monotonic()
        self._last_len = 0

    def update(self, stats: EngineStats) -> None:
        if not self.enabled:
            return
        elapsed = time.monotonic() - self._started
        line = (
            f"[{stats.completed}/{self.total}] "
            f"{stats.vulnerable} vulnerable, {stats.failed} failed, "
            f"{stats.cache_hits} cached, {elapsed:.1f}s"
        )
        pad = " " * max(0, self._last_len - len(line))
        self.stream.write("\r" + line + pad)
        self.stream.flush()
        self._last_len = len(line)

    def close(self) -> None:
        if not self.enabled or not self._last_len:
            return
        self.stream.write("\r" + " " * self._last_len + "\r")
        self.stream.flush()
        self._last_len = 0
