"""Content-addressed on-disk result cache.

A verdict for a PHP file is a pure function of (a) the source text, (b)
the policy — prelude plus analyzer options — and (c) the analyzer
implementation itself.  The cache key is therefore the SHA-256 of all
three, so re-auditing an unchanged corpus is a directory of O(1) lookups
and editing either a file or the policy invalidates exactly the entries
it should.

Layout (git-object style fan-out to keep directories small)::

    <root>/objects/<key[:2]>/<key>.json

Entries are JSON records written atomically (temp file + rename) so a
killed audit never leaves a truncated entry; unreadable or corrupt
entries are treated as misses and evicted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.websari.pipeline import WebSSARI

__all__ = [
    "ENGINE_VERSION",
    "HotResultCache",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "policy_fingerprint",
]

#: Bump whenever a pipeline change can alter verdicts: every cached
#: entry keyed under an older version silently becomes a miss.
#: (2: records gained per-file SAT-solver counters.
#:  3: SolverStats grew sat-cache and preprocessing counters, and the
#:  CDCL solver gained add-time preprocessing + LBD-aware reduction,
#:  both of which change the counters embedded in records.
#:  4: records gained the per-file slow-query ledger.
#:  5: the CDCL solver became incremental (trail/VSIDS/learned-clause
#:  retention across the enumeration, gate retirement sweeps, learned
#:  clause import) and the portfolio backend landed — verdicts are
#:  unchanged but every embedded counter is.
#:  6: records gained the per-file ``includes`` section and project
#:  entries switched from whole-project to closure-scoped cache keys —
#:  old whole-project entries must become clean misses.
#:  7: records gained the per-file ``replay`` section (concrete witness
#:  replay verdicts) — pre-replay entries must become clean misses.)
ENGINE_VERSION = "7"

#: Cache record schema version (independent of verdict semantics).
_RECORD_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-audit``, else
    ``~/.cache/repro-audit``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-audit"


def policy_fingerprint(websari: "WebSSARI") -> str:
    """Digest of everything besides the source that determines a verdict:
    the prelude's function/superglobal tables, the lattice structure, and
    the analyzer options."""
    from repro.policy.preludefile import render_prelude

    lattice = websari.prelude.lattice
    elements = sorted(str(e) for e in lattice.elements)
    covers = sorted((str(a), str(b)) for a, b in lattice.covers())  # type: ignore[attr-defined]
    payload = json.dumps(
        {
            "prelude": render_prelude(websari.prelude),
            "lattice": {"elements": elements, "covers": covers},
            "options": {
                "accumulate": websari.accumulate,
                "max_counterexamples": websari.max_counterexamples,
                "max_unfold_depth": websari.max_unfold_depth,
                "sanitize_in_place": websari.sanitize_in_place,
                # Both backends must agree on verdicts, but cached records
                # embed per-backend solver counters, so key them apart.
                "solver": getattr(websari, "solver", "cdcl"),
                # Same coherence rule for the SAT-level query cache: it
                # never changes verdicts, but records embed its hit/miss
                # counters, so runs with and without it must not alias.
                "sat_cache": getattr(websari, "sat_cache", None) is not None,
                # Restart schedule and VSIDS/phase seed steer the search
                # order: verdict-neutral, counter-visible — same rule.
                "restart_strategy": getattr(websari, "restart_strategy", "geometric"),
                "sat_seed": getattr(websari, "sat_seed", 0),
                # Ablation switch for the incremental machinery: verdicts
                # agree either way, embedded counters do not.
                "sat_incremental": getattr(websari, "sat_incremental", True),
                # Parse cache and closure-scoped keying are verdict-
                # neutral too, but records embed parse-cache counters and
                # closure scoping changes what a key covers — runs with
                # different switches must not alias.
                "parse_cache": getattr(websari, "parse_cache", None) is not None,
                "closure_keys": getattr(websari, "closure_keys", True),
                # Witness replay adds the ``replay`` section to records:
                # verdict-neutral, record-visible — runs with and without
                # it must not serve each other's entries.
                "replay": getattr(websari, "replay", False),
            },
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def cache_key(source: str, policy_fp: str, extra: str = "") -> str:
    """SHA-256 over engine version + policy fingerprint + source text.

    ``extra`` distinguishes task shapes that share source text (e.g. a
    project entry point vs. the same file audited standalone).
    """
    digest = hashlib.sha256()
    digest.update(b"repro-audit\x00")
    digest.update(ENGINE_VERSION.encode())
    digest.update(b"\x00")
    digest.update(policy_fp.encode())
    digest.update(b"\x00")
    digest.update(extra.encode())
    digest.update(b"\x00")
    digest.update(source.encode())
    return digest.hexdigest()


class ResultCache:
    """Content-addressed store of per-file audit records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"

    def _path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the stored record, or None (corrupt entries are evicted)."""
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._evict(path)
            return None
        if not isinstance(record, dict) or record.get("record_version") != _RECORD_VERSION:
            self._evict(path)
            return None
        return record

    def put(self, key: str, record: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(record)
        payload["record_version"] = _RECORD_VERSION
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        if not self._objects.is_dir():
            return 0
        return sum(1 for _ in self._objects.glob("*/*.json"))


class HotResultCache(ResultCache):
    """A :class:`ResultCache` with a process-lifetime in-memory layer.

    Built for long-running processes (the ``repro watch`` daemon) that
    probe the same keys every poll cycle: a key served once from disk is
    answered from memory afterwards, so an idle watch cycle over N files
    costs N dict lookups, not N file reads.  Writes go to both layers;
    the memo is LRU-bounded so a daemon watching a huge, churning tree
    cannot grow without bound.  Disk stays the source of truth — other
    processes sharing the directory see every entry this one writes.
    """

    def __init__(self, root: str | Path, max_entries: int = 65536) -> None:
        super().__init__(root)
        self.max_entries = max_entries
        self._memo: OrderedDict[str, dict] = OrderedDict()
        self.hot_hits = 0
        self.disk_hits = 0

    def get(self, key: str) -> dict | None:
        record = self._memo.get(key)
        if record is not None:
            self._memo.move_to_end(key)
            self.hot_hits += 1
            return record
        record = super().get(key)
        if record is not None:
            self.disk_hits += 1
            self._remember(key, record)
        return record

    def put(self, key: str, record: dict) -> None:
        super().put(key, record)
        payload = dict(record)
        payload["record_version"] = _RECORD_VERSION
        self._remember(key, payload)

    def _remember(self, key: str, record: dict) -> None:
        self._memo[key] = record
        self._memo.move_to_end(key)
        while len(self._memo) > self.max_entries:
            self._memo.popitem(last=False)
