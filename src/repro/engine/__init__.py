"""Parallel batch-audit engine with content-addressed result caching.

The paper's evaluation sweeps 230 SourceForge projects (~1.1M
statements); this subsystem makes that kind of corpus sweep a
first-class engineered operation instead of a for-loop:

* :class:`AuditEngine` fans per-file verification tasks over a
  ``multiprocessing`` worker pool (one process per file, bounded live
  set) with per-file wall-clock timeouts, crash isolation with
  retry-once, and structured error records instead of audit-wide aborts.
* :class:`ResultCache` stores verdicts content-addressed by SHA-256 of
  source + policy fingerprint + engine version, so re-auditing an
  unchanged corpus is pure cache lookups.
* :class:`EngineStats` aggregates per-stage timings (parse / filter /
  AI / SAT), cache hit/miss counters and verdict tallies;
  :class:`JsonlSink` streams per-file records for machine consumption.

Entry points: the ``repro audit`` CLI subcommand, or::

    from repro.engine import AuditEngine, AuditTask, EngineConfig

    engine = AuditEngine(config=EngineConfig(jobs=4, timeout=30.0))
    result = engine.run([AuditTask(0, "a.php", source="<?php ...")])
    print(result.stats.summary_lines())
"""

from repro.engine.cache import (
    ENGINE_VERSION,
    HotResultCache,
    ResultCache,
    cache_key,
    default_cache_dir,
    policy_fingerprint,
)
from repro.engine.jsonl import JsonlSink
from repro.engine.scheduler import AuditEngine, EngineConfig, EngineResult
from repro.engine.stats import EngineStats, ProgressPrinter
from repro.engine.worker import AuditTask, FileOutcome, WorkerSession, execute_task

__all__ = [
    "ENGINE_VERSION",
    "AuditEngine",
    "AuditTask",
    "EngineConfig",
    "EngineResult",
    "EngineStats",
    "FileOutcome",
    "HotResultCache",
    "JsonlSink",
    "ProgressPrinter",
    "ResultCache",
    "WorkerSession",
    "cache_key",
    "default_cache_dir",
    "execute_task",
    "policy_fingerprint",
]
