"""Per-file audit work unit: the code that runs inside a worker process.

A :class:`AuditTask` describes one verification job — either a standalone
source file or one entry point of a multi-file project (include
resolution then happens inside the worker).  :func:`execute_task` runs
the WebSSARI pipeline stage by stage, timing each (parse / filter / AI /
SAT), and always returns a :class:`FileOutcome` — exceptions become
structured error records rather than aborting the batch.

Everything crossing the process boundary (task in, outcome out) is
picklable; the outcome additionally round-trips through JSON
(``to_record``/``from_record``) so it can live in the result cache and
the JSONL sink.  The full :class:`VerificationReport` object is attached
only when ``want_report`` is set (used by ``verify_project``) and is
deliberately excluded from the JSON record.
"""

from __future__ import annotations

import hashlib
import signal
import time
import traceback
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro.obs import Tracer, get_tracer, set_tracer
from repro.php.errors import FrontendError
from repro.php.parsecache import content_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.websari.pipeline import VerificationReport, WebSSARI

__all__ = [
    "AuditTask",
    "FileOutcome",
    "FileRef",
    "WorkerSession",
    "execute_task",
    "project_content_digest",
]


def project_content_digest(files: dict[str, str]) -> str:
    """One digest over a whole file set — the conservative cache
    material for entries whose include closure could not be trusted
    (dynamic includes, unparsable members).  Byte-compatible with
    hashing :meth:`AuditTask.cache_material`'s joined form."""
    joined = "\x00".join(f"{path}\x01{files[path]}" for path in sorted(files))
    return hashlib.sha256(joined.encode()).hexdigest()


@dataclass(frozen=True)
class FileRef:
    """Stand-in for a project file the worker already holds.

    The scheduler replaces file texts it has previously shipped down the
    same pipe with these (keyed by content digest); the worker keeps a
    per-session ``digest → text`` store and rehydrates tasks on receipt.
    This cuts per-task pickle volume from O(project) to O(new bytes) —
    a shared prelude crosses each pipe once per session, not once per
    entry.
    """

    digest: str


@dataclass(frozen=True)
class WorkerSession:
    """Session setup shipped to a fresh worker as its first pipe message.

    The policy (the :class:`~repro.websari.pipeline.WebSSARI` instance
    with its prelude, lattice, and solver options) travels over the pipe
    instead of relying on fork-time memory inheritance, so workers behave
    identically under the ``fork`` and ``spawn`` start methods — and can
    therefore live on hosts where fork is unavailable (macOS default,
    Windows) or undesirable (remote worker nodes).
    """

    websari: "WebSSARI"
    want_report: bool = False
    collect_trace: bool = False


@dataclass(frozen=True)
class AuditTask:
    """One unit of work for the engine."""

    index: int
    filename: str
    #: Standalone mode: the PHP source text.
    source: str | None = None
    #: Project mode: the files this entry's audit may read (path → text).
    #: Historically the whole project; with closure-scoped scheduling it
    #: is the entry's transitive include closure — which is also exactly
    #: what ``cache_material`` hashes, so an edit to an included file
    #: invalidates precisely the entries that splice it.
    project_files: dict[str, str] | None = None
    entry: str | None = None
    #: True when the include scan could not bound this entry's
    #: dependency set (dynamic includes / unparsable members); the task
    #: then carries the whole project and keys on ``project_digest``.
    closure_widened: bool = False
    #: Precomputed whole-project content digest for widened tasks (the
    #: scheduler computes it once per run instead of re-joining the full
    #: project per entry).
    project_digest: str | None = None

    def cache_material(self) -> tuple[str, str]:
        """(source-text, extra) pair feeding the content-addressed key.

        The filename is part of the key because report text embeds it
        (summaries, counterexample spans) — two files with identical
        content must not serve each other's rendered records.  Project
        entries hash the file set they carry (their include closure, or
        historically the whole project); widened entries key on the
        precomputed whole-project digest so *any* project edit
        conservatively invalidates them.
        """
        if self.project_files is None:
            return self.source or "", f"file={self.filename}"
        if self.project_digest is not None:
            return self.project_digest, f"entry={self.entry}|closure=widened"
        joined = "\x00".join(
            f"{path}\x01{self.project_files[path]}" for path in sorted(self.project_files)
        )
        return joined, f"entry={self.entry}"


@dataclass
class FileOutcome:
    """Everything the engine learned about one file.

    ``status`` is one of ``ok``, ``frontend-error``, ``error``,
    ``timeout``, ``crash``, or ``skipped`` (never started because the
    engine drained on shutdown); only ``ok`` carries a verdict
    (``safe``).
    """

    filename: str
    status: str
    safe: bool | None = None
    ts_errors: int = 0
    bmc_groups: int = 0
    num_statements: int = 0
    num_ai_branches: int = 0
    num_ai_assertions: int = 0
    warnings: list[str] = field(default_factory=list)
    summary: str = ""
    detailed: str = ""
    error: str | None = None
    #: Per-stage wall seconds measured inside the worker.
    timings: dict[str, float] = field(default_factory=dict)
    #: SAT-solver counters for this file: ``backend``, ``solve_calls``,
    #: and the aggregated :class:`~repro.sat.solver.SolverStats` fields
    #: (decisions, conflicts, propagations, restarts, ...).
    solver: dict = field(default_factory=dict)
    #: Hardest SAT queries of this file (ledger records from the BMC
    #: check, each stamped with ``file``; see :mod:`repro.obs.ledger`).
    slow_queries: list[dict] = field(default_factory=list)
    #: Include-layer facts for project entries: ``edges`` (direct
    #: includer→included edges seen while splicing), ``included_files``,
    #: ``unresolved`` (dynamic include paths), and — when a parse cache
    #: is attached — ``parse_cache_hits``/``parse_cache_misses`` deltas
    #: for this task.  Empty for standalone tasks.
    includes: dict = field(default_factory=dict)
    #: Concrete witness replay results (``repro.replay``): per-trace
    #: verdicts plus confirmed/refuted/unsupported counts and the
    #: patched re-run tallies.  Empty unless the policy enables replay
    #: and the file verified vulnerable.
    replay: dict = field(default_factory=dict)
    #: End-to-end seconds for this file as seen by the scheduler.
    duration: float = 0.0
    cached: bool = False
    cache_key: str | None = None
    attempts: int = 1
    #: Serialized span trees (``Span.to_dict`` payloads) collected inside
    #: the worker when tracing is on; stitched by the scheduler and
    #: deliberately excluded from the JSON record (cache + JSONL stay lean).
    trace: list[dict] | None = None
    #: Full report object (pickled across the process boundary, never
    #: JSON-serialized); present only when the caller asked for it.
    report: "VerificationReport | None" = None

    _RECORD_FIELDS = (
        "filename",
        "status",
        "safe",
        "ts_errors",
        "bmc_groups",
        "num_statements",
        "num_ai_branches",
        "num_ai_assertions",
        "warnings",
        "summary",
        "detailed",
        "error",
        "timings",
        "solver",
        "slow_queries",
        "includes",
        "replay",
    )

    def to_record(self) -> dict:
        """JSON-safe record (cache entry / JSONL payload)."""
        record = {name: getattr(self, name) for name in self._RECORD_FIELDS}
        record["timings"] = {k: round(v, 6) for k, v in self.timings.items()}
        record["duration"] = round(self.duration, 6)
        record["cached"] = self.cached
        record["cache_key"] = self.cache_key
        record["attempts"] = self.attempts
        return record

    @classmethod
    def from_record(cls, record: dict) -> "FileOutcome":
        known = {f.name for f in fields(cls)} - {"report"}
        kwargs = {k: v for k, v in record.items() if k in known}
        return cls(**kwargs)


def execute_task(
    task: AuditTask, websari: "WebSSARI", want_report: bool = False
) -> FileOutcome:
    """Run the full pipeline on one task, timing each stage.

    Never raises for per-file analysis failures: frontend errors (parse,
    lex, include) map to ``frontend-error`` outcomes, anything else to
    ``error`` outcomes carrying the traceback tail.
    """
    timings: dict[str, float] = {}
    started = time.perf_counter()
    try:
        outcome = _run_stages(task, websari, timings, want_report)
    except FrontendError as exc:
        outcome = FileOutcome(filename=task.filename, status="frontend-error", error=str(exc))
    except RecursionError:
        outcome = FileOutcome(
            filename=task.filename, status="error", error="recursion limit exceeded"
        )
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        tail = traceback.format_exc(limit=5)
        outcome = FileOutcome(
            filename=task.filename, status="error", error=f"{type(exc).__name__}: {exc}\n{tail}"
        )
    outcome.timings = timings
    outcome.duration = time.perf_counter() - started
    return outcome


def _run_stages(
    task: AuditTask,
    websari: "WebSSARI",
    timings: dict[str, float],
    want_report: bool,
) -> FileOutcome:
    from repro.ai.renaming import rename
    from repro.ai.translate import translate_filter_result
    from repro.analysis.grouping import group_errors
    from repro.bmc.checker import check_program
    from repro.ir.filter import filter_program
    from repro.php.includes import SourceProject, resolve_includes
    from repro.php.parser import parse
    from repro.typestate.ts import analyze_commands
    from repro.websari.pipeline import VerificationReport, count_statements

    include_warnings: list[str] = []
    includes_info: dict = {}
    tracer = get_tracer()

    parse_cache = getattr(websari, "parse_cache", None)
    do_parse = parse_cache.parse if parse_cache is not None else parse

    clock = time.perf_counter
    mark = clock()
    with tracer.span("parse"):
        if task.project_files is not None:
            assert task.entry is not None
            hits_before = parse_cache.hits if parse_cache is not None else 0
            misses_before = parse_cache.misses if parse_cache is not None else 0
            project = SourceProject(task.project_files)
            resolution = resolve_includes(project, task.entry, parse_hook=do_parse)
            program = resolution.program
            include_warnings = list(resolution.warnings)
            # The entry's own program came back on the resolution — no
            # second parse just to count its statements.
            assert resolution.entry_program is not None
            num_statements = count_statements(resolution.entry_program)
            includes_info = {
                "edges": len(resolution.edges),
                "included_files": len(resolution.included_files),
                "unresolved": len(resolution.unresolved),
            }
            if task.closure_widened:
                includes_info["widened"] = True
            if parse_cache is not None:
                includes_info["parse_cache_hits"] = parse_cache.hits - hits_before
                includes_info["parse_cache_misses"] = parse_cache.misses - misses_before
        else:
            # Standalone tasks may still parse through the cache (shared
            # content across files, warm daemon cycles) but record no
            # cache counters: their JSONL records stay byte-deterministic
            # regardless of cache warmth, which the distributed-audit
            # merge comparison relies on.
            program = do_parse(task.source or "", task.filename)
            num_statements = count_statements(program)
    timings["parse"] = clock() - mark

    mark = clock()
    with tracer.span("filter"):
        filtered = filter_program(
            program,
            prelude=websari.prelude,
            max_unfold_depth=websari.max_unfold_depth,
            sanitize_in_place=websari.sanitize_in_place,
        )
    timings["filter"] = clock() - mark

    mark = clock()
    with tracer.span("ai"):
        ts_report = analyze_commands(filtered.commands, lattice=websari.lattice)
        ai_program = translate_filter_result(filtered)
        renamed = rename(ai_program)
    timings["ai"] = clock() - mark

    solver_backend = getattr(websari, "solver", "cdcl")
    mark = clock()
    with tracer.span("sat", backend=solver_backend):
        bmc_result = check_program(
            renamed,
            lattice=websari.lattice,
            accumulate=websari.accumulate,
            max_counterexamples=websari.max_counterexamples,
            solver_backend=solver_backend,
            sat_cache=getattr(websari, "sat_cache", None),
            restart_strategy=getattr(websari, "restart_strategy", "geometric"),
            sat_seed=getattr(websari, "sat_seed", 0),
            sat_incremental=getattr(websari, "sat_incremental", True),
        )
        grouping = group_errors(bmc_result)
    timings["sat"] = clock() - mark

    report = VerificationReport(
        filename=task.filename,
        ts=ts_report,
        bmc=bmc_result,
        grouping=grouping,
        num_statements=num_statements,
        num_ai_branches=ai_program.num_branches,
        num_ai_assertions=ai_program.num_assertions,
        warnings=list(ai_program.warnings) + include_warnings,
    )

    replay_info: dict = {}
    if getattr(websari, "replay", False) and not report.safe:
        from repro.replay import replay_for_task

        mark = clock()
        with tracer.span("replay"):
            replay_info = replay_for_task(task, report)
        timings["replay"] = clock() - mark

    return FileOutcome(
        filename=task.filename,
        status="ok",
        safe=report.safe,
        ts_errors=report.ts_error_count,
        bmc_groups=report.bmc_group_count,
        num_statements=report.num_statements,
        num_ai_branches=report.num_ai_branches,
        num_ai_assertions=report.num_ai_assertions,
        warnings=list(report.warnings),
        summary=report.summary(),
        detailed=report.detailed_report(),
        includes=includes_info,
        solver={
            "backend": bmc_result.solver_backend,
            "solve_calls": bmc_result.num_solve_calls,
            **bmc_result.solver_stats,
        },
        slow_queries=[
            {
                **query,
                "seconds": round(float(query.get("seconds", 0.0)), 6),
                "file": task.filename,
            }
            for query in bmc_result.slow_queries
        ],
        replay=replay_info,
        report=report if want_report else None,
    )


def safe_execute(
    task: AuditTask,
    websari: "WebSSARI",
    want_report: bool,
    collect_trace: bool = False,
) -> FileOutcome:
    """``execute_task`` with a last-resort catch: even a bug in the
    executor itself must yield a structured record, not an abort.

    With ``collect_trace``, a fresh enabled tracer is installed for the
    duration of the task and the finished span trees (the stage spans
    and everything the pipeline nested under them) are serialized onto
    ``outcome.trace`` for the scheduler to stitch.
    """
    tracer = Tracer(enabled=True) if collect_trace else None
    previous = set_tracer(tracer) if tracer is not None else None
    try:
        try:
            outcome = execute_task(task, websari, want_report)
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            outcome = FileOutcome(
                filename=task.filename,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
            )
    finally:
        if tracer is not None:
            set_tracer(previous)
    if tracer is not None:
        outcome.trace = [span.to_dict() for span in tracer.take_roots()]
    return outcome


def _rehydrate_task(task: AuditTask, store: dict[str, str]) -> AuditTask:
    """Resolve :class:`FileRef` placeholders in a project task against
    the worker's per-session content store, and remember any new texts
    for later tasks on the same pipe.

    A reference to a digest the store has never seen raises ``KeyError``
    (turned into a structured error outcome by the caller) — it would
    mean the scheduler's shipped-set and this store disagreed.
    """
    if task.project_files is None:
        return task
    files: dict[str, str] = {}
    for path, text in task.project_files.items():
        if isinstance(text, FileRef):
            files[path] = store[text.digest]
        else:
            store[content_digest(text)] = text
            files[path] = text
    return replace(task, project_files=files)


def _worker_loop(conn) -> None:
    """Entry point of a persistent worker process.

    The first message on the pipe must be a :class:`WorkerSession` (the
    policy and run options — shipped explicitly rather than inherited
    through fork, so the loop is start-method agnostic).  After that it
    receives :class:`AuditTask` objects and sends one
    :class:`FileOutcome` back per task until the scheduler shuts it down
    (``None`` sentinel or closed pipe).  Project-file texts already seen
    on this pipe arrive as :class:`FileRef` digests and are rehydrated
    from a session-local store.  A worker that dies mid-task (hard
    crash, kill, unpicklable result) is detected by the scheduler
    through the broken pipe and replaced with a fresh process.
    """
    # The parent coordinates interrupts (drain + trailer): a terminal ^C
    # reaches the whole foreground process group, so workers must not
    # die mid-task from it and turn a clean drain into crash records.
    # Fork also copies any CLI signal handlers (e.g. `repro watch`'s
    # SIGTERM banner) — reset SIGTERM to the default so the scheduler's
    # terminate() actually terminates, silently.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        try:
            session = conn.recv()
        except EOFError:
            return
        if not isinstance(session, WorkerSession):
            raise TypeError(
                f"worker expected a WorkerSession setup message, got "
                f"{type(session).__name__}"
            )
        store: dict[str, str] = {}
        while True:
            try:
                task = conn.recv()
            except EOFError:
                return
            if task is None:
                return
            try:
                task = _rehydrate_task(task, store)
            except KeyError as exc:
                conn.send(
                    FileOutcome(
                        filename=task.filename,
                        status="error",
                        error=f"missing project slice content for digest {exc}",
                    )
                )
                continue
            conn.send(
                safe_execute(
                    task, session.websari, session.want_report, session.collect_trace
                )
            )
    finally:
        conn.close()
