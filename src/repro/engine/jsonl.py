"""JSONL sink: one machine-readable line per audited file.

Record types (every line is a standalone JSON object with a ``type``):

* ``{"type": "file", ...}`` — one per file, in completion order; carries
  the outcome record (see ``FileOutcome.to_record``).
* ``{"type": "stats", ...}`` — exactly one, last; the final
  :class:`~repro.engine.stats.EngineStats` counters.

Lines are flushed as written so a tailing consumer sees progress live
and a killed audit still leaves a valid (if truncated) log.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["JsonlSink"]


class JsonlSink:
    """Append-mode JSONL writer; usable as a context manager.

    Writing after :meth:`close` (or writing twice after the stats
    trailer lands in an interrupt path) is a silent no-op rather than a
    ``ValueError`` — the engine's ``finally`` blocks must be able to
    flush unconditionally.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        self._wrote_stats = False

    def write(self, record: dict) -> None:
        if self._handle.closed:
            return
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def write_file(self, record: dict) -> None:
        self.write({"type": "file", **record})

    def write_stats(self, stats_dict: dict) -> None:
        """Write the final stats trailer (at most once per sink)."""
        if self._wrote_stats:
            return
        self._wrote_stats = True
        self.write({"type": "stats", **stats_dict})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
