"""Mapping SAT branch decisions back onto concrete request inputs.

F(p) replaces every branch condition with a nondeterministic boolean, so
a counterexample model only says "``b3`` was true".  The renamer now
records the *source span* of the statement behind each branch variable
(:attr:`RenamedProgram.branch_spans`); this module closes the loop by

1. re-parsing the source and indexing branch-bearing statements by span,
   mirroring exactly how the IR filter assigns spans (if/elseif clauses,
   while/do-while/for/foreach headers, switch cases), and
2. statically solving the simple condition shapes of the subset —
   superglobal truthiness, ``isset``/``empty``, negation, boolean
   connectives, (in)equality against literals — into request-field
   assignments.

Conditions outside this fragment (computed locals, DB cursors, …)
solve to ``None``; the replayer then relies on optimistic confirmation:
a sentinel that still reaches the sink confirms the witness regardless,
and only the refutation verdict requires every deciding branch solved.
"""

from __future__ import annotations

import dataclasses

from repro.php import ast_nodes as ast
from repro.php.span import Span
from repro.replay.sentinel import SENTINEL

__all__ = [
    "ABSENT",
    "Constraints",
    "index_conditions",
    "collect_input_keys",
    "solve_condition",
    "merge_constraints",
]

#: Sentinel value meaning "this request field must be missing".
ABSENT = None

#: channel → superglobal names feeding it.
_CHANNELS = {
    "get": ("_GET", "HTTP_GET_VARS", "_REQUEST"),
    "post": ("_POST", "HTTP_POST_VARS"),
    "cookie": ("_COOKIE",),
}
_SUPERGLOBAL_CHANNEL = {
    name: channel for channel, names in _CHANNELS.items() for name in names
}

#: (channel, key) → required value; value ``ABSENT`` means absent.
#: ``referer``/``user_agent`` use the empty key.
Constraints = dict[tuple[str, str], "str | None"]


# -- condition indexing ------------------------------------------------------


def index_conditions(program: ast.Program) -> dict[Span, "ast.Expression | None"]:
    """Span → branch condition, following the IR filter's span choices.

    A ``None`` condition marks a span whose branch has no statically
    solvable condition by construction (foreach iteration, ``default``
    switch cases, for-loops without a test).
    """
    table: dict[Span, ast.Expression | None] = {}

    def walk_stmt(stmt) -> None:
        if isinstance(stmt, (ast.Program, ast.Block)):
            for child in stmt.statements:
                walk_stmt(child)
        elif isinstance(stmt, ast.If):
            table[stmt.span] = stmt.condition
            walk_stmt(stmt.then)
            for clause in stmt.elseifs:
                table[clause.span] = clause.condition
                walk_stmt(clause.body)
            if stmt.orelse is not None:
                walk_stmt(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            table[stmt.span] = stmt.condition
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            table[stmt.span] = stmt.condition[-1] if stmt.condition else None
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.Foreach):
            table[stmt.span] = None
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.Switch):
            for case in stmt.cases:
                if case.test is not None:
                    table[case.span] = ast.Binary(
                        case.span, "==", stmt.subject, case.test
                    )
                else:
                    table[case.span] = None
                for child in case.body:
                    walk_stmt(child)
        elif isinstance(stmt, ast.FunctionDecl):
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.ClassDecl):
            for method in stmt.methods:
                walk_stmt(method.body)

    walk_stmt(program)
    return table


# -- input discovery ---------------------------------------------------------


def _walk_nodes(node):
    yield node
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, ast.Node):
            yield from _walk_nodes(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.Node):
                    yield from _walk_nodes(item)


def _input_slot(expr) -> "tuple[str, str] | None":
    """(channel, key) when ``expr`` reads one attacker-controlled input."""
    if isinstance(expr, ast.ArrayDim) and isinstance(expr.base, ast.Variable):
        if not isinstance(expr.index, ast.Literal) or not isinstance(
            expr.index.value, str
        ):
            return None
        channel = _SUPERGLOBAL_CHANNEL.get(expr.base.name)
        if channel is not None:
            return (channel, expr.index.value)
        if expr.base.name == "_SERVER":
            if expr.index.value == "HTTP_REFERER":
                return ("referer", "")
            if expr.index.value == "HTTP_USER_AGENT":
                return ("user_agent", "")
        return None
    if isinstance(expr, ast.Variable):
        if expr.name == "HTTP_REFERER":
            return ("referer", "")
        if expr.name == "HTTP_USER_AGENT":
            return ("user_agent", "")
    return None


def collect_input_keys(program: ast.Program) -> list[tuple[str, str]]:
    """Every (channel, key) the program can read, in first-seen order."""
    seen: dict[tuple[str, str], None] = {}
    for node in _walk_nodes(program):
        slot = _input_slot(node)
        if slot is not None:
            seen.setdefault(slot, None)
    return list(seen)


# -- condition solving -------------------------------------------------------


def merge_constraints(base: Constraints, extra: Constraints) -> "Constraints | None":
    """Union two constraint sets; ``None`` on conflicting requirements."""
    merged = dict(base)
    for slot, value in extra.items():
        if slot in merged and merged[slot] != value:
            return None
        merged[slot] = value
    return merged


def _php_truthy(value) -> bool:
    if value is None or value is False:
        return False
    if value is True:
        return True
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value not in ("", "0")
    return bool(value)


def _literal_text(value) -> str:
    if value is None:
        return ""
    if value is True:
        return "1"
    if value is False:
        return ""
    return str(value)


def solve_condition(expr, want: bool) -> "Constraints | None":
    """Request constraints making ``expr`` evaluate with truthiness
    ``want``, or ``None`` when the shape is outside the solvable
    fragment."""
    slot = _input_slot(expr)
    if slot is not None:
        # Plain truthiness test on an input: the sentinel is truthy,
        # absence reads as null/'' which is falsy.
        return {slot: SENTINEL if want else ABSENT}
    if isinstance(expr, ast.Literal):
        return {} if _php_truthy(expr.value) == want else None
    if isinstance(expr, ast.Unary) and expr.op == "!":
        return solve_condition(expr.operand, not want)
    if isinstance(expr, ast.IssetExpr):
        slots = [_input_slot(op) for op in expr.operands]
        if any(s is None for s in slots):
            return None
        if want:
            constraints: Constraints = {}
            for s in slots:
                assert s is not None
                merged = merge_constraints(constraints, {s: SENTINEL})
                if merged is None:
                    return None
                constraints = merged
            return constraints
        return {slots[0]: ABSENT}  # one missing operand falsifies isset
    if isinstance(expr, ast.EmptyExpr):
        return solve_condition(expr.operand, not want)
    if isinstance(expr, ast.Binary):
        return _solve_binary(expr, want)
    return None


def _solve_binary(expr: ast.Binary, want: bool) -> "Constraints | None":
    op = expr.op.lower()
    if op in ("&&", "and"):
        if want:
            left = solve_condition(expr.left, True)
            right = solve_condition(expr.right, True)
            if left is None or right is None:
                return None
            return merge_constraints(left, right)
        left = solve_condition(expr.left, False)
        if left is not None:
            return left
        return solve_condition(expr.right, False)
    if op in ("||", "or"):
        if want:
            left = solve_condition(expr.left, True)
            if left is not None:
                return left
            return solve_condition(expr.right, True)
        left = solve_condition(expr.left, False)
        right = solve_condition(expr.right, False)
        if left is None or right is None:
            return None
        return merge_constraints(left, right)
    if op in ("==", "===", "!=", "!==", "<>"):
        negated = op in ("!=", "!==", "<>")
        return _solve_equality(expr.left, expr.right, want != negated)
    return None


def _solve_equality(left, right, want_equal: bool) -> "Constraints | None":
    slot, literal = _input_slot(left), right
    if slot is None:
        slot, literal = _input_slot(right), left
    if slot is None or not isinstance(literal, ast.Literal):
        return None
    text = _literal_text(literal.value)
    if want_equal:
        return {slot: text}
    # Any value different from the literal works; the sentinel keeps the
    # input attacker-marked, unless the literal *is* sentinel-shaped.
    return {slot: SENTINEL if text != SENTINEL else ABSENT}
