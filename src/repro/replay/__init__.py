"""Concrete witness replay: confirm BMC counterexamples end-to-end.

See docs/REPLAY.md for the request-synthesis and verdict-semantics
design.  Public surface:

* :data:`SENTINEL` / :func:`sentinel_observed` — the marked attack
  payload and the sink observer;
* :func:`replay_counterexamples` / :func:`replay_source` — replay the
  traces of one verified entry (original and patched source);
* :func:`replay_for_task` / :func:`summarize_replays` — the engine
  integration that produces the ``replay`` section of file records.
"""

from repro.replay.conditions import (
    collect_input_keys,
    index_conditions,
    solve_condition,
)
from repro.replay.replayer import (
    MAX_REPLAYED_TRACES,
    REPLAY_MAX_STEPS,
    ReplayResult,
    canonical_request,
    canonical_request_text,
    replay_counterexamples,
    replay_for_task,
    replay_source,
    summarize_replays,
    synthesize_request,
)
from repro.replay.sentinel import SENTINEL, sentinel_observed

__all__ = [
    "SENTINEL",
    "sentinel_observed",
    "ReplayResult",
    "replay_counterexamples",
    "replay_source",
    "replay_for_task",
    "summarize_replays",
    "synthesize_request",
    "canonical_request",
    "canonical_request_text",
    "collect_input_keys",
    "index_conditions",
    "solve_condition",
    "MAX_REPLAYED_TRACES",
    "REPLAY_MAX_STEPS",
]
