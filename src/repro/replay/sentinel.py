"""Taint sentinel and sink observation for witness replay.

The replayer plants one distinctive payload on the attacker-controlled
inputs and then checks whether it arrived *unsanitized* at any sensitive
channel of the executed environment.  The payload is chosen so that every
sanitizer in the subset destroys it:

* it contains ``'`` and ``"`` — ``addslashes``/``mysql_escape_string``
  backslash-escape the quotes, so the *full* sentinel no longer appears
  as a contiguous substring (matching only the tag suffix would miss
  this, which is why :func:`sentinel_observed` insists on the whole
  marker);
* it contains ``<`` and ``>`` — ``htmlspecialchars``/``htmlentities``
  entity-encode them and ``strip_tags`` removes the tag outright;
* it is non-numeric — ``intval``/``(int)`` casts collapse it to ``0``;
* it is truthy as a PHP string, so planting it on a branch input steers
  plain ``if ($_GET['k'])`` truthiness tests to the then-arm.
"""

from __future__ import annotations

from repro.interp.environment import ExecutionEnvironment

__all__ = ["SENTINEL", "sentinel_observed", "observation_channels"]

#: The marked attack payload.  Quote characters first so escaping
#: sanitizers break the match even when the tag part survives.
SENTINEL = "'\"<xbmc-replay/>"


def observation_channels(
    env: ExecutionEnvironment, *, sql_log_start: int = 0
) -> dict[str, str]:
    """Sensitive channels of one finished execution, name → content.

    ``sql_log_start`` scopes the query log to entries this run issued:
    a shared :class:`MockDatabase` (stored-taint replay sequences)
    accumulates queries across runs, and a patched re-run must not be
    blamed for the unpatched run's sentinel-bearing INSERT.
    """
    channels = {
        "response": env.response_body(),
        "sql": "\n".join(env.database.query_log[sql_log_start:]),
        "command": "\n".join(env.command_log),
        "header": "\n".join(env.headers),
    }
    channels["sink"] = "\n".join(
        arg for _fn, args in env.sink_log for arg in args
    )
    return channels


def sentinel_observed(
    env: ExecutionEnvironment,
    sentinel: str = SENTINEL,
    *,
    sql_log_start: int = 0,
) -> str | None:
    """Name of the first channel carrying the intact sentinel, else None."""
    for name, content in observation_channels(
        env, sql_log_start=sql_log_start
    ).items():
        if sentinel in content:
            return name
    return None
