"""The witness replayer: BMC counterexample → concrete HTTP request →
interpreter run → ``confirmed`` / ``refuted`` / ``unsupported``.

For each :class:`~repro.bmc.trace.CounterexampleTrace` the replayer

1. synthesizes the concrete :class:`HttpRequest` the trace implies — the
   taint sentinel planted on *every* input the program can read, then
   overridden by the request constraints solved from the trace's deciding
   branch decisions (via the span→condition table of
   :mod:`repro.replay.conditions`);
2. executes the program through :func:`run_php` and checks the sensitive
   channels for the intact sentinel;
3. records the verdict:

   * ``confirmed`` — the sentinel reached a sink.  Confirmation is
     *optimistic*: an unsolved branch condition does not block it, since
     an observed exploit is an exploit no matter how the request was
     steered;
   * ``refuted`` — no sentinel arrived **and** every deciding branch was
     solved, so the synthesized request genuinely exercised the witness
     path and the static verdict looks like a false positive;
   * ``unsupported`` — the run left the interpreter's subset (runtime
     error, step budget) or a deciding branch was unsolvable, so the
     witness is neither confirmed nor contradicted.  Never an audit
     failure — unsupported traces quarantine.

4. optionally re-runs the *patched* program (cause-site guards from
   :mod:`repro.instrument`) under the same request, asserting the payload
   no longer reaches the sink — the auto-patcher's end-to-end validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.interp.environment import HttpRequest
from repro.interp.interpreter import PhpRuntimeError, run_php
from repro.php.parser import parse
from repro.replay.conditions import (
    ABSENT,
    Constraints,
    collect_input_keys,
    index_conditions,
    merge_constraints,
    solve_condition,
)
from repro.replay.sentinel import SENTINEL, sentinel_observed

__all__ = [
    "ReplayResult",
    "synthesize_request",
    "canonical_request",
    "replay_counterexamples",
    "replay_source",
    "summarize_replays",
    "replay_for_task",
    "MAX_REPLAYED_TRACES",
    "REPLAY_MAX_STEPS",
]

#: Per-file cap on replayed traces: enumeration can produce hundreds of
#: counterexamples per assertion; replaying each is a full interpreter
#: run, so the tail is skipped and counted (never silently dropped).
MAX_REPLAYED_TRACES = 32

#: Step budget per replay run — far above any corpus program, far below
#: the default interpreter budget, so a steering mistake that produces an
#: infinite loop degrades to ``unsupported`` quickly.
REPLAY_MAX_STEPS = 200_000


@dataclass
class ReplayResult:
    """Verdict for one replayed counterexample trace."""

    assert_id: int
    function: str
    span: str
    verdict: str  # confirmed | refuted | unsupported
    #: Channel that carried the sentinel (confirmed verdicts only).
    channel: str | None = None
    reason: str = ""
    #: Canonical request payload (see :func:`canonical_request`).
    request: dict = field(default_factory=dict)
    #: Deciding branch variables whose conditions could not be solved.
    unsolved: list[str] = field(default_factory=list)
    #: Verdict of the re-run against the patched source: ``refuted``
    #: means the patch killed the witness (the expected outcome),
    #: ``confirmed`` means the payload still got through, ``unsupported``
    #: means the patched run left the subset; None when not attempted.
    patched: str | None = None

    def to_record(self) -> dict:
        return {
            "assert_id": self.assert_id,
            "function": self.function,
            "span": self.span,
            "verdict": self.verdict,
            "channel": self.channel,
            "reason": self.reason,
            "request": self.request,
            "unsolved": list(self.unsolved),
            "patched": self.patched,
        }


# -- request synthesis -------------------------------------------------------


def synthesize_request(
    condition_table,
    input_keys,
    trace,
) -> tuple[HttpRequest, list[str]]:
    """Build the concrete request a trace implies.

    Baseline: the sentinel on every readable input (maximally tainted,
    and truthy for plain branch tests).  Each deciding branch whose
    source condition solves statically overrides the affected fields;
    branches that do not solve (or whose constraints conflict with an
    earlier branch) are returned as ``unsolved``.
    """
    constraints: Constraints = {}
    unsolved: list[str] = []
    for name in sorted(trace.deciding_branches):
        value = trace.deciding_branches[name]
        span = trace.branch_spans.get(name)
        condition = condition_table.get(span) if span is not None else None
        solved = solve_condition(condition, value) if condition is not None else None
        if solved is None:
            unsolved.append(name)
            continue
        merged = merge_constraints(constraints, solved)
        if merged is None:
            unsolved.append(name)
            continue
        constraints = merged

    fields_: dict[tuple[str, str], str | None] = {
        slot: SENTINEL for slot in input_keys
    }
    fields_.update(constraints)

    request = HttpRequest()
    channels = {"get": request.get, "post": request.post, "cookie": request.cookies}
    for (channel, key), value in fields_.items():
        if value is ABSENT:
            continue
        if channel in channels:
            channels[channel][key] = value
        elif channel == "referer":
            request.referer = value
        elif channel == "user_agent":
            request.user_agent = value
    return request, unsolved


def canonical_request(request: HttpRequest) -> dict:
    """Deterministic JSON-safe rendering of a synthesized request."""
    record: dict = {}
    for name, mapping in (
        ("get", request.get),
        ("post", request.post),
        ("cookies", request.cookies),
    ):
        if mapping:
            record[name] = {key: mapping[key] for key in sorted(mapping)}
    if request.referer:
        record["referer"] = request.referer
    if request.user_agent:
        record["user_agent"] = request.user_agent
    return record


def canonical_request_text(request: HttpRequest) -> str:
    return json.dumps(canonical_request(request), sort_keys=True)


# -- replay ------------------------------------------------------------------


def _parse_tables(sources: dict[str, str]):
    """Span→condition table plus input-key inventory over all files.

    Files that fail to parse contribute nothing (their branch conditions
    stay unsolvable — the optimistic path still applies)."""
    table: dict = {}
    input_keys: dict[tuple[str, str], None] = {}
    for filename, text in sources.items():
        try:
            program = parse(text, filename)
        except Exception:  # noqa: BLE001 - degrade, never crash the audit
            continue
        table.update(index_conditions(program))
        for slot in collect_input_keys(program):
            input_keys.setdefault(slot, None)
    return table, list(input_keys)


def _run(source, request, files, database, session, max_steps):
    include_files = {k: v for k, v in files.items()} if files else None
    return run_php(
        source,
        request=request,
        database=database,
        files=include_files,
        session=session,
        max_steps=max_steps,
    )


def _patched_sources(sources: dict[str, str], grouping) -> dict[str, str]:
    from repro.instrument.instrumentor import apply_edits, collect_bmc_edits

    patched: dict[str, str] = {}
    for filename, text in sources.items():
        edits, _notes = collect_bmc_edits(text, grouping, filename)
        patched[filename] = apply_edits(text, edits) if edits else text
    return patched


def replay_counterexamples(
    sources: dict[str, str],
    entry: str,
    traces,
    grouping=None,
    *,
    database=None,
    session=None,
    max_steps: int = REPLAY_MAX_STEPS,
    max_traces: int = MAX_REPLAYED_TRACES,
) -> list[ReplayResult]:
    """Replay counterexample traces of one verified entry.

    ``sources`` maps filename → text for the entry and everything it may
    include (a standalone file passes just itself).  With ``grouping``
    the patched re-run is attempted for confirmed traces.  Pass a shared
    ``database``/``session`` to replay against accumulated application
    state (stored-taint scenarios); by default each trace runs against a
    fresh environment.
    """
    condition_table, input_keys = _parse_tables(sources)
    entry_source = sources[entry]
    include_files = {k: v for k, v in sources.items() if k != entry} or None
    patched: dict[str, str] | None = None

    results: list[ReplayResult] = []
    for trace in traces[:max_traces]:
        request, unsolved = synthesize_request(condition_table, input_keys, trace)
        result = ReplayResult(
            assert_id=trace.assert_id,
            function=trace.function,
            span=str(trace.span),
            verdict="unsupported",
            request=canonical_request(request),
            unsolved=unsolved,
        )
        # A shared database accumulates query_log entries across runs;
        # scope observation to queries this run issues.
        log_start = len(database.query_log) if database is not None else 0
        try:
            env = _run(
                entry_source, request, include_files, database, session, max_steps
            )
        except PhpRuntimeError as exc:
            result.reason = f"interpreter: {exc}"
            results.append(result)
            continue
        except Exception as exc:  # noqa: BLE001 - degrade, never crash
            result.reason = f"{type(exc).__name__}: {exc}"
            results.append(result)
            continue

        channel = sentinel_observed(env, sql_log_start=log_start)
        if channel is not None:
            result.verdict = "confirmed"
            result.channel = channel
            result.reason = f"sentinel reached {channel} sink"
        elif unsolved:
            result.verdict = "unsupported"
            result.reason = (
                "sentinel not observed; unsolved branch conditions: "
                + ", ".join(unsolved)
            )
        else:
            result.verdict = "refuted"
            result.reason = "sentinel not observed on the fully steered path"

        if result.verdict == "confirmed" and grouping is not None:
            if patched is None:
                patched = _patched_sources(sources, grouping)
            patched_includes = (
                {k: v for k, v in patched.items() if k != entry} or None
            )
            patched_log_start = (
                len(database.query_log) if database is not None else 0
            )
            try:
                patched_env = _run(
                    patched[entry],
                    request,
                    patched_includes,
                    database,
                    session,
                    max_steps,
                )
            except PhpRuntimeError as exc:
                result.patched = "unsupported"
                result.reason += f"; patched run: {exc}"
            except Exception as exc:  # noqa: BLE001
                result.patched = "unsupported"
                result.reason += f"; patched run: {type(exc).__name__}: {exc}"
            else:
                if sentinel_observed(
                    patched_env, sql_log_start=patched_log_start
                ) is None:
                    result.patched = "refuted"
                else:
                    result.patched = "confirmed"
                    result.reason += "; payload SURVIVED the patch"
        results.append(result)
    return results


def replay_source(
    source: str,
    report,
    filename: str = "<string>",
    **kwargs,
) -> list[ReplayResult]:
    """Convenience wrapper for a standalone source + VerificationReport."""
    return replay_counterexamples(
        {filename: source},
        filename,
        report.bmc.all_counterexamples(),
        report.grouping,
        **kwargs,
    )


# -- engine integration ------------------------------------------------------


def summarize_replays(results: list[ReplayResult], skipped: int = 0) -> dict:
    """The ``replay`` section of a file record (JSON-safe)."""
    summary = {
        "confirmed": 0,
        "refuted": 0,
        "unsupported": 0,
        "patched_refuted": 0,
        "patched_confirmed": 0,
        "patched_unsupported": 0,
        "skipped": skipped,
        "traces": [result.to_record() for result in results],
    }
    for result in results:
        summary[result.verdict] += 1
        if result.patched is not None:
            summary[f"patched_{result.patched}"] += 1
    return summary


def replay_for_task(task, report) -> dict:
    """Replay every counterexample of one engine task; never raises.

    Returns the ``replay`` record for the task's :class:`FileOutcome`.
    Any unexpected failure inside the replayer itself degrades to a
    record with an ``error`` note and all traces ``unsupported``.
    """
    traces = report.bmc.all_counterexamples()
    try:
        if task.project_files is not None:
            sources = dict(task.project_files)
            entry = task.entry or task.filename
            sources.setdefault(entry, "")
        else:
            sources = {task.filename: task.source or ""}
            entry = task.filename
        results = replay_counterexamples(
            sources,
            entry,
            traces,
            report.grouping,
        )
        summary = summarize_replays(
            results, skipped=max(0, len(traces) - MAX_REPLAYED_TRACES)
        )
    except Exception as exc:  # noqa: BLE001 - replay must never fail an audit
        summary = summarize_replays([], skipped=0)
        summary["unsupported"] = len(traces)
        summary["error"] = f"{type(exc).__name__}: {exc}"
    return summary
