"""Security-type lattices in the style of Denning's information-flow model.

The paper (Section 3.1) assumes a finite set of safety types ``T`` that is
partially ordered by ``<=`` and forms a complete lattice with bottom ``⊥``
(the safest level) and top ``⊤`` (the least safe level).  Types resulting
from expressions are combined with the least-upper-bound operator: the
safety type of ``e1 ~ e2`` is ``join(t_e1, t_e2)``, and constants have type
``⊥``.

This module provides:

* :class:`Lattice` — an abstract interface every safety lattice implements.
* :class:`FiniteLattice` — a concrete lattice built from an explicit
  covering (Hasse) relation, with verification that the order really is a
  complete lattice (unique joins/meets, top and bottom exist).
* :func:`two_point_lattice` — the taint lattice used by WebSSARI's default
  policy (``untainted <= tainted``).
* :func:`linear_lattice` — a total order of ``n`` levels (the general
  multi-level security model).
* :func:`product_lattice` — the component-wise product of two lattices
  (e.g. integrity x confidentiality).
* :func:`powerset_lattice` — the lattice of subsets ordered by inclusion.

All lattices are immutable once constructed and hashable elements are
required, so types can be used freely as dictionary keys by the analyses.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Sequence
from typing import Any

__all__ = [
    "Lattice",
    "FiniteLattice",
    "LatticeError",
    "two_point_lattice",
    "linear_lattice",
    "product_lattice",
    "powerset_lattice",
]


class LatticeError(ValueError):
    """Raised when a structure fails to be a complete lattice."""


class Lattice:
    """Abstract interface of a complete lattice of safety types.

    Concrete implementations must provide :meth:`leq`, :attr:`elements`,
    :attr:`bottom` and :attr:`top`; default implementations of ``join``
    and ``meet`` are derived from ``leq`` but are usually overridden with
    faster table-driven versions.
    """

    @property
    def elements(self) -> frozenset[Hashable]:
        raise NotImplementedError

    @property
    def bottom(self) -> Hashable:
        raise NotImplementedError

    @property
    def top(self) -> Hashable:
        raise NotImplementedError

    def leq(self, a: Hashable, b: Hashable) -> bool:
        """Return True iff ``a <= b`` in the safety order."""
        raise NotImplementedError

    def lt(self, a: Hashable, b: Hashable) -> bool:
        """Strict order: ``a <= b`` and ``a != b`` (paper Section 3.1)."""
        return a != b and self.leq(a, b)

    def join(self, a: Hashable, b: Hashable) -> Hashable:
        """Least upper bound of ``a`` and ``b``."""
        uppers = [x for x in self.elements if self.leq(a, x) and self.leq(b, x)]
        return self._unique_extremum(uppers, lower=True, what=f"join({a!r}, {b!r})")

    def meet(self, a: Hashable, b: Hashable) -> Hashable:
        """Greatest lower bound of ``a`` and ``b``."""
        lowers = [x for x in self.elements if self.leq(x, a) and self.leq(x, b)]
        return self._unique_extremum(lowers, lower=False, what=f"meet({a!r}, {b!r})")

    def join_all(self, types: Iterable[Hashable]) -> Hashable:
        """Least upper bound of a subset; ``⊥`` for the empty subset.

        This is the paper's ``⊔Y`` operator (with the empty-set convention
        from Section 3.1).
        """
        result = self.bottom
        for t in types:
            result = self.join(result, t)
        return result

    def meet_all(self, types: Iterable[Hashable]) -> Hashable:
        """Greatest lower bound of a subset; ``⊤`` for the empty subset."""
        result = self.top
        for t in types:
            result = self.meet(result, t)
        return result

    def contains(self, a: Hashable) -> bool:
        return a in self.elements

    def check_member(self, a: Hashable) -> None:
        if not self.contains(a):
            raise LatticeError(f"{a!r} is not an element of this lattice")

    def _unique_extremum(self, candidates: Sequence[Hashable], lower: bool, what: str) -> Hashable:
        if not candidates:
            raise LatticeError(f"no candidate for {what}")
        # The extremum is the candidate comparable-below (resp. above) all
        # other candidates.
        for c in candidates:
            if lower and all(self.leq(c, other) for other in candidates):
                return c
            if not lower and all(self.leq(other, c) for other in candidates):
                return c
        raise LatticeError(f"{what} is not unique; structure is not a lattice")


class FiniteLattice(Lattice):
    """A complete lattice over an explicit finite carrier set.

    Constructed from the full ``<=`` relation given as a set of ordered
    pairs (the constructor computes the reflexive-transitive closure of
    whatever pairs are supplied, so a covering relation suffices).  The
    constructor *verifies* the lattice laws: antisymmetry, existence of a
    unique bottom and top, and existence of unique binary joins and meets
    for every pair — raising :class:`LatticeError` otherwise.  Joins and
    meets are precomputed into tables so the analyses pay O(1) per
    operation.
    """

    def __init__(self, elements: Iterable[Hashable], order_pairs: Iterable[tuple[Hashable, Hashable]]):
        elems = frozenset(elements)
        if not elems:
            raise LatticeError("lattice carrier set must be non-empty")
        self._elements = elems

        leq: set[tuple[Hashable, Hashable]] = {(e, e) for e in elems}
        for a, b in order_pairs:
            if a not in elems or b not in elems:
                raise LatticeError(f"order pair ({a!r}, {b!r}) mentions a non-element")
            leq.add((a, b))
        self._leq = self._transitive_closure(leq)
        self._check_antisymmetry()

        self._bottom = self._find_bottom()
        self._top = self._find_top()
        self._join_table: dict[tuple[Hashable, Hashable], Hashable] = {}
        self._meet_table: dict[tuple[Hashable, Hashable], Hashable] = {}
        self._build_tables()

    # -- construction helpers -------------------------------------------

    def _transitive_closure(self, pairs: set[tuple[Hashable, Hashable]]) -> frozenset[tuple[Hashable, Hashable]]:
        closure = set(pairs)
        changed = True
        while changed:
            changed = False
            additions = set()
            for a, b in closure:
                for c, d in closure:
                    if b == c and (a, d) not in closure:
                        additions.add((a, d))
            if additions:
                closure |= additions
                changed = True
        return frozenset(closure)

    def _check_antisymmetry(self) -> None:
        for a, b in self._leq:
            if a != b and (b, a) in self._leq:
                raise LatticeError(f"antisymmetry violated: {a!r} <= {b!r} and {b!r} <= {a!r}")

    def _find_bottom(self) -> Hashable:
        bottoms = [e for e in self._elements if all((e, x) in self._leq for x in self._elements)]
        if len(bottoms) != 1:
            raise LatticeError(f"lattice must have exactly one bottom, found {bottoms!r}")
        return bottoms[0]

    def _find_top(self) -> Hashable:
        tops = [e for e in self._elements if all((x, e) in self._leq for x in self._elements)]
        if len(tops) != 1:
            raise LatticeError(f"lattice must have exactly one top, found {tops!r}")
        return tops[0]

    def _build_tables(self) -> None:
        elems = sorted(self._elements, key=repr)
        for a, b in itertools.product(elems, repeat=2):
            uppers = [x for x in elems if (a, x) in self._leq and (b, x) in self._leq]
            lowers = [x for x in elems if (x, a) in self._leq and (x, b) in self._leq]
            self._join_table[(a, b)] = self._extremum_from(uppers, minimal=True, what=f"join({a!r},{b!r})")
            self._meet_table[(a, b)] = self._extremum_from(lowers, minimal=False, what=f"meet({a!r},{b!r})")

    def _extremum_from(self, candidates: Sequence[Hashable], minimal: bool, what: str) -> Hashable:
        for c in candidates:
            if minimal and all((c, other) in self._leq for other in candidates):
                return c
            if not minimal and all((other, c) in self._leq for other in candidates):
                return c
        raise LatticeError(f"{what} does not exist; structure is not a lattice")

    # -- Lattice interface ----------------------------------------------

    @property
    def elements(self) -> frozenset[Hashable]:
        return self._elements

    @property
    def bottom(self) -> Hashable:
        return self._bottom

    @property
    def top(self) -> Hashable:
        return self._top

    def leq(self, a: Hashable, b: Hashable) -> bool:
        self.check_member(a)
        self.check_member(b)
        return (a, b) in self._leq

    def join(self, a: Hashable, b: Hashable) -> Hashable:
        self.check_member(a)
        self.check_member(b)
        return self._join_table[(a, b)]

    def meet(self, a: Hashable, b: Hashable) -> Hashable:
        self.check_member(a)
        self.check_member(b)
        return self._meet_table[(a, b)]

    def covers(self) -> set[tuple[Hashable, Hashable]]:
        """Return the covering (Hasse) relation: pairs a < b with nothing between."""
        result = set()
        for a, b in self._leq:
            if a == b:
                continue
            between = any(
                c not in (a, b) and (a, c) in self._leq and (c, b) in self._leq
                for c in self._elements
            )
            if not between:
                result.add((a, b))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FiniteLattice({sorted(map(repr, self._elements))})"


# -- Standard lattice constructors ---------------------------------------

#: Canonical element names for the default taint policy.
UNTAINTED = "untainted"
TAINTED = "tainted"


def two_point_lattice() -> FiniteLattice:
    """The WebSSARI default policy lattice: ``untainted <= tainted``.

    Bottom (safest) is *untainted*; top is *tainted*.  Expression types
    combine with join, so touching any tainted operand taints the result.
    """
    return FiniteLattice({UNTAINTED, TAINTED}, {(UNTAINTED, TAINTED)})


def linear_lattice(levels: Sequence[Hashable]) -> FiniteLattice:
    """A total order ``levels[0] <= levels[1] <= ...`` (multi-level security)."""
    if len(levels) != len(set(levels)):
        raise LatticeError("levels must be distinct")
    pairs = [(levels[i], levels[i + 1]) for i in range(len(levels) - 1)]
    return FiniteLattice(levels, pairs)


def product_lattice(left: FiniteLattice, right: FiniteLattice) -> FiniteLattice:
    """Component-wise product of two finite lattices.

    ``(a1, b1) <= (a2, b2)`` iff ``a1 <= a2`` and ``b1 <= b2``.  Used to
    model independent policy dimensions (e.g. integrity and
    confidentiality) in the general Denning model.
    """
    elements = {(a, b) for a in left.elements for b in right.elements}
    pairs = {
        ((a1, b1), (a2, b2))
        for (a1, b1) in elements
        for (a2, b2) in elements
        if left.leq(a1, a2) and right.leq(b1, b2)
    }
    return FiniteLattice(elements, pairs)


def powerset_lattice(universe: Iterable[Hashable]) -> FiniteLattice:
    """The lattice of subsets of ``universe`` ordered by inclusion.

    Models policies where a value's safety level is the *set* of untrusted
    channels that influenced it (bottom = empty set, top = all channels).
    """
    items = sorted(set(universe), key=repr)
    if len(items) > 10:
        raise LatticeError("powerset lattice limited to 10 generators (2^10 elements)")
    subsets = [frozenset(c) for r in range(len(items) + 1) for c in itertools.combinations(items, r)]
    pairs = [(a, b) for a in subsets for b in subsets if a <= b]
    return FiniteLattice(subsets, pairs)


def is_monotone(lattice: Lattice, fn: Any) -> bool:
    """Check that a unary function on lattice elements is monotone.

    Utility used by tests and by prelude validation: sanitizers must be
    monotone maps so abstract interpretation stays sound.
    """
    elems = list(lattice.elements)
    for a in elems:
        for b in elems:
            if lattice.leq(a, b) and not lattice.leq(fn(a), fn(b)):
                return False
    return True
