"""Security-type lattices (Denning's information-flow model, paper §3.1)."""

from repro.lattice.types import (
    TAINTED,
    UNTAINTED,
    FiniteLattice,
    Lattice,
    LatticeError,
    is_monotone,
    linear_lattice,
    powerset_lattice,
    product_lattice,
    two_point_lattice,
)

__all__ = [
    "TAINTED",
    "UNTAINTED",
    "FiniteLattice",
    "Lattice",
    "LatticeError",
    "is_monotone",
    "linear_lattice",
    "powerset_lattice",
    "product_lattice",
    "two_point_lattice",
]
