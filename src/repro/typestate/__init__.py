"""The TS baseline algorithm (typestate-style flow-sensitive taint analysis)."""

from repro.typestate.ts import TSReport, TSViolation, TypestateAnalyzer, analyze_commands

__all__ = ["TSReport", "TSViolation", "TypestateAnalyzer", "analyze_commands"]
