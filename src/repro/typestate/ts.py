"""The TS baseline: typestate-style flow-sensitive taint analysis.

This is the verification algorithm of the authors' earlier WebSSARI
paper [14], reimplemented as the comparison baseline.  It "essentially
performs breadth-first searches on control flow graphs and trades space
for time" (paper §7): a polynomial-time abstract interpretation that
tracks one lattice value per variable, joining states at control-flow
merges and iterating loop bodies to a fixpoint.

Its defining limitation — the reason the paper moved to BMC — is that it
reports each *symptom* (a sink call whose argument may be tainted) as an
individual error with no counterexample trace, so runtime guards must be
inserted at every violating call site rather than at the error's root
cause.  :attr:`TSReport.num_violations` is therefore both the error
count and the instrumentation count for the TS column of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.commands import (
    Assign,
    Command,
    Const,
    Expr,
    If,
    InputCall,
    Join,
    LevelConst,
    Seq,
    SinkCall,
    Stop,
    VarRef,
    While,
)
from repro.ir.filter import FilterResult, php_name_of
from repro.lattice import Lattice, two_point_lattice
from repro.php.span import Span

__all__ = ["TSViolation", "TSReport", "TypestateAnalyzer", "analyze_commands"]


@dataclass(frozen=True, slots=True)
class TSViolation:
    """One symptom: a sink argument that may hold unsafe data."""

    function: str
    variable: str
    level: object
    required: object
    span: Span
    arg_span: Span | None = None
    vuln_class: object = None

    @property
    def php_name(self) -> str | None:
        return php_name_of(self.variable)

    def __str__(self) -> str:
        return (
            f"{self.function}(${self.variable}) may receive {self.level} data "
            f"(requires < {self.required}) at {self.span}"
        )


@dataclass
class TSReport:
    violations: list[TSViolation] = field(default_factory=list)
    #: Sink call sites inspected (violating or not).
    num_sinks_checked: int = 0
    #: Distinct violating statements (sink call sites with >= 1 violation).
    num_violating_sites: int = 0

    @property
    def num_violations(self) -> int:
        return len(self.violations)

    @property
    def safe(self) -> bool:
        return not self.violations


State = dict[str, object]


class TypestateAnalyzer:
    """Flow-sensitive forward taint analysis over F(p)."""

    def __init__(self, lattice: Lattice | None = None, max_loop_iterations: int = 64) -> None:
        self.lattice = lattice if lattice is not None else two_point_lattice()
        self.max_loop_iterations = max_loop_iterations

    # -- lattice state helpers -------------------------------------------

    def _lookup(self, state: State, name: str) -> object:
        return state.get(name, self.lattice.bottom)

    def _join_states(self, a: State, b: State) -> State:
        merged = dict(a)
        for name, level in b.items():
            if name in merged:
                merged[name] = self.lattice.join(merged[name], level)
            else:
                merged[name] = level
        return merged

    def _states_equal(self, a: State, b: State) -> bool:
        names = set(a) | set(b)
        return all(self._lookup(a, n) == self._lookup(b, n) for n in names)

    def eval_expr(self, expr: Expr, state: State) -> object:
        if isinstance(expr, Const):
            return self.lattice.bottom
        if isinstance(expr, LevelConst):
            return expr.level
        if isinstance(expr, VarRef):
            return self._lookup(state, expr.name)
        if isinstance(expr, Join):
            return self.lattice.join_all(self.eval_expr(op, state) for op in expr.operands)
        raise TypeError(f"unknown expression {type(expr).__name__}")

    # -- analysis ------------------------------------------------------------

    def run(self, commands: Seq) -> TSReport:
        report = TSReport()
        self._transfer(commands, {}, report, reporting=True)
        sites = {
            (str(v.span), v.function)
            for v in report.violations
        }
        report.num_violating_sites = len(sites)
        return report

    def _transfer(self, command: Command, state: State, report: TSReport, reporting: bool) -> State:
        if isinstance(command, Seq):
            for child in command.commands:
                state = self._transfer(child, state, report, reporting)
            return state
        if isinstance(command, Assign):
            new_state = dict(state)
            new_state[command.target] = self.eval_expr(command.value, state)
            return new_state
        if isinstance(command, InputCall):
            new_state = dict(state)
            for target in command.targets:
                new_state[target] = command.level
            return new_state
        if isinstance(command, SinkCall):
            if reporting:
                report.num_sinks_checked += 1
                for position, variable in enumerate(command.arguments):
                    level = self._lookup(state, variable)
                    if not self.lattice.lt(level, command.required):
                        arg_span = (
                            command.arg_spans[position]
                            if position < len(command.arg_spans)
                            else None
                        )
                        report.violations.append(
                            TSViolation(
                                function=command.function,
                                variable=variable,
                                level=level,
                                required=command.required,
                                span=command.span,
                                arg_span=arg_span,
                                vuln_class=command.vuln_class,
                            )
                        )
            return state
        if isinstance(command, Stop):
            return state  # over-approximation: fall through
        if isinstance(command, If):
            then_state = self._transfer(command.then, state, report, reporting)
            else_state = self._transfer(command.orelse, state, report, reporting)
            return self._join_states(then_state, else_state)
        if isinstance(command, While):
            # Fixpoint without reporting, then one reporting pass.
            current = state
            for _ in range(self.max_loop_iterations):
                body_out = self._transfer(command.body, current, report, reporting=False)
                merged = self._join_states(current, body_out)
                if self._states_equal(merged, current):
                    break
                current = merged
            if reporting:
                self._transfer(command.body, current, report, reporting=True)
            return current
        raise TypeError(f"unknown command {type(command).__name__}")


def analyze_commands(
    commands: Seq | FilterResult,
    lattice: Lattice | None = None,
) -> TSReport:
    """Run the TS baseline on a filtered program."""
    if isinstance(commands, FilterResult):
        commands = commands.commands
    return TypestateAnalyzer(lattice).run(commands)
