"""The ``repro serve`` coordinator: an HTTP audit service.

One :class:`Coordinator` process owns the corpus state; any number of
``repro work --connect`` nodes pull from it.  The flow:

1. A client **submits** a project — inline JSON files, a tar archive, or
   a path local to the coordinator.  Each ``.php`` file becomes one
   task in a :class:`~repro.service.leases.LeaseQueue`.
2. Worker nodes **register** (policy fingerprints must agree — a node
   running a different prelude would merge incomparable verdicts),
   then **lease** task batches, audit them through their local worker
   pool, and **report** one JSON outcome record per task.
3. Node loss is handled by the lease clock: no heartbeat → leases
   expire → tasks re-queue → another node completes them.  First result
   wins; duplicates are rejected, so the merged stream has exactly one
   record per file.
4. Clients stream **merged JSONL** per job: file records in submission
   order (each attributed to the node that produced it), one per-node
   ``stats`` trailer, and — once the job is complete — a global
   ``stats`` trailer identical in shape to a single-box ``repro audit
   --jsonl`` run, so ``repro report`` (and ``--diff``) consume it
   unchanged.

Observability mirrors the in-process engine: ``/metrics`` serves a live
Prometheus snapshot, ``/healthz`` a liveness JSON, and with a tracer
attached each reported outcome is stitched into a per-file span whose
children reconstruct the worker's stage timings — one trace for the
whole fleet.

Endpoints (all request/response bodies JSON unless noted)::

    POST /api/submit            {"files": {path: source}, "name"?} |
                                {"path": dir-on-coordinator} |
                                raw tar body (Content-Type: */x-tar)
    POST /api/workers/register  {"node": name, "policy"?: fingerprint}
    POST /api/workers/heartbeat {"worker_id", "metrics"?: snapshot}
    POST /api/workers/release   {"worker_id", "metrics"?: snapshot}
    POST /api/lease             {"worker_id", "max"?: n, "metrics"?: snapshot}
    POST /api/result            {"worker_id", "task_id", "record"}
    GET  /api/jobs              job summaries
    GET  /api/jobs/<id>         one job's status counters
    GET  /api/jobs/<id>/results merged JSONL stream (application/x-ndjson)
    GET  /metrics               Prometheus text (fleet + service series)
    GET  /healthz               liveness JSON

``metrics`` payloads are cumulative :meth:`MetricsRegistry.snapshot`
dicts; the coordinator delta-merges them (node-restart tolerant) into
node-labelled and fleet-summed series on its ``/metrics`` endpoint.

See docs/SERVICE.md for the architecture and failure model.
"""

from __future__ import annotations

import io
import json
import tarfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.jsonl import JsonlSink
from repro.engine.stats import EngineStats
from repro.engine.worker import FileOutcome
from repro.obs import FleetMetrics, MetricsRegistry, Span, Tracer
from repro.obs.ledger import SlowQueryLedger
from repro.obs.metrics import DEFAULT_QUANTILES, PROMETHEUS_CONTENT_TYPE
from repro.service.httpbase import HttpEndpoint, HttpError
from repro.service.leases import LeaseQueue

__all__ = ["Coordinator", "ServiceTask", "AuditJob", "WorkerInfo"]

#: Stage order used when reconstructing spans from reported timings.
_STAGE_ORDER = ("parse", "filter", "ai", "sat")


@dataclass
class ServiceTask:
    """One file-level unit of distributed work."""

    task_id: str
    job_id: str
    index: int
    filename: str
    source: str
    #: Outcome record as reported by a node (None until settled).
    record: dict | None = None
    #: Name of the node whose result was accepted.
    node: str | None = None

    def wire_payload(self) -> dict:
        return {
            "task_id": self.task_id,
            "filename": self.filename,
            "source": self.source,
        }


@dataclass
class AuditJob:
    """One submitted corpus and its tasks."""

    job_id: str
    name: str
    created: float
    tasks: list[ServiceTask] = field(default_factory=list)
    finished: float | None = None

    @property
    def done_count(self) -> int:
        return sum(1 for task in self.tasks if task.record is not None)

    @property
    def complete(self) -> bool:
        return bool(self.tasks) and self.done_count == len(self.tasks)

    def status(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "tasks": len(self.tasks),
            "done": self.done_count,
            "complete": self.complete,
        }


@dataclass
class WorkerInfo:
    """One registered worker node."""

    worker_id: str
    node: str
    registered: float
    last_seen: float
    completed: int = 0
    rejected: int = 0
    #: The node has seen the drain flag on a lease response (it will make
    #: no further lease requests and is about to exit 0).
    saw_drain: bool = False
    #: The node handed its leases back (clean exit completed).
    released: bool = False


class Coordinator(HttpEndpoint):
    """HTTP coordinator for a fleet of ``repro work`` nodes."""

    thread_name = "repro-serve-coordinator"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout: float = 60.0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        jsonl_dir: str | Path | None = None,
        clock=time.monotonic,
    ) -> None:
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Delta-merges node registry snapshots (piggybacked on heartbeat /
        #: lease / release requests) into ``self.metrics`` as node-labelled
        #: plus fleet-summed series, so one scrape covers the whole fleet.
        self.fleet = FleetMetrics(self.metrics)
        self.tracer = tracer
        self.jsonl_dir = Path(jsonl_dir) if jsonl_dir is not None else None
        self.queue = LeaseQueue(timeout=lease_timeout, clock=clock)
        self.draining = threading.Event()
        self._state = threading.RLock()
        self._jobs: dict[str, AuditJob] = {}
        self._tasks: dict[str, ServiceTask] = {}
        self._workers: dict[str, WorkerInfo] = {}
        self._policy_fp: str | None = None
        self._job_seq = 0
        self._worker_seq = 0
        super().__init__(host, port)

    # -- job intake ---------------------------------------------------------

    def submit_files(self, files: dict[str, str], name: str = "") -> AuditJob:
        """Create a job from ``{path: source}`` and enqueue its tasks.

        Paths are sorted so task order (and therefore the merged stream
        order) is deterministic regardless of submission dict order.
        """
        php = {path: text for path, text in files.items() if path.endswith(".php")}
        if not php:
            raise HttpError(400, "submission contains no .php files")
        with self._state:
            self._job_seq += 1
            job_id = f"job-{self._job_seq:04d}"
            job = AuditJob(job_id=job_id, name=name or job_id, created=self.clock())
            for index, path in enumerate(sorted(php)):
                task = ServiceTask(
                    task_id=f"{job_id}:{index:06d}",
                    job_id=job_id,
                    index=index,
                    filename=path,
                    source=php[path],
                )
                job.tasks.append(task)
                self._tasks[task.task_id] = task
                self.queue.add(task.task_id)
            self._jobs[job_id] = job
        self.metrics.counter(
            "repro_service_jobs_total", "submitted audit jobs"
        ).inc()
        self.metrics.counter(
            "repro_service_tasks_total", "file-level tasks by event"
        ).inc(len(job.tasks), event="enqueued")
        return job

    def submit_path(self, root: str | Path, name: str = "") -> AuditJob:
        """Submit a directory (or single file) local to the coordinator."""
        root = Path(root)
        if root.is_dir():
            files = {
                str(path): path.read_text()
                for path in sorted(root.rglob("*.php"))
                if path.is_file()
            }
        elif root.is_file():
            files = {str(root): root.read_text()}
        else:
            raise HttpError(400, f"no such path on coordinator: {root}")
        return self.submit_files(files, name=name or str(root))

    def submit_tar(self, payload: bytes, name: str = "") -> AuditJob:
        """Submit a tar archive (member paths become task filenames)."""
        files: dict[str, str] = {}
        try:
            with tarfile.open(fileobj=io.BytesIO(payload)) as archive:
                for member in archive.getmembers():
                    if not member.isfile() or not member.name.endswith(".php"):
                        continue
                    handle = archive.extractfile(member)
                    if handle is None:
                        continue
                    files[member.name] = handle.read().decode(errors="replace")
        except tarfile.TarError as exc:
            raise HttpError(400, f"unreadable tar submission: {exc}")
        return self.submit_files(files, name=name)

    # -- worker lifecycle ---------------------------------------------------

    def register_worker(self, node: str, policy_fp: str | None = None) -> WorkerInfo:
        with self._state:
            if policy_fp:
                if self._policy_fp is None:
                    self._policy_fp = policy_fp
                elif policy_fp != self._policy_fp:
                    raise HttpError(
                        409,
                        "policy fingerprint mismatch: node runs a different "
                        "prelude/options than this fleet; verdicts would not "
                        "be comparable",
                    )
            self._worker_seq += 1
            now = self.clock()
            worker = WorkerInfo(
                worker_id=f"{node}#{self._worker_seq}",
                node=node,
                registered=now,
                last_seen=now,
            )
            self._workers[worker.worker_id] = worker
        self.metrics.counter(
            "repro_service_workers_registered_total", "worker node registrations"
        ).inc()
        return worker

    def _touch_worker(self, worker_id: str) -> WorkerInfo:
        with self._state:
            worker = self._workers.get(worker_id)
            if worker is None:
                raise HttpError(404, f"unknown worker {worker_id!r}; re-register")
            worker.last_seen = self.clock()
            return worker

    # -- leasing and results ------------------------------------------------

    def lease_tasks(self, worker_id: str, max_tasks: int = 1) -> dict:
        worker = self._touch_worker(worker_id)
        self.queue.extend(worker_id)
        requeued_before = self.queue.requeues
        leased: list[dict] = []
        if self.draining.is_set():
            worker.saw_drain = True
        else:
            for task_id in self.queue.lease(worker_id, max_tasks=max_tasks):
                leased.append(self._tasks[task_id].wire_payload())
        requeued = self.queue.requeues - requeued_before
        if requeued:
            self.metrics.counter(
                "repro_service_tasks_total", "file-level tasks by event"
            ).inc(requeued, event="requeued")
        if leased:
            self.metrics.counter(
                "repro_service_tasks_total", "file-level tasks by event"
            ).inc(len(leased), event="leased")
        self._observe_gauges()
        return {
            "tasks": leased,
            "draining": self.draining.is_set(),
            "idle": not leased and self.queue.outstanding == 0,
            "lease_timeout": self.queue.timeout,
        }

    def report_result(self, worker_id: str, task_id: str, record: dict) -> bool:
        """Settle one task with a node's outcome record.

        Returns False (and drops the record) when the task was already
        settled by someone else — the exactly-once half of the lease
        protocol.
        """
        worker = self._touch_worker(worker_id)
        task = self._tasks.get(task_id)
        if task is None:
            raise HttpError(404, f"unknown task {task_id!r}")
        if not isinstance(record, dict) or record.get("filename") != task.filename:
            raise HttpError(400, f"malformed outcome record for {task_id!r}")
        accepted = self.queue.complete(task_id)
        if not accepted:
            worker.rejected += 1
            self.metrics.counter(
                "repro_service_results_total", "reported task results"
            ).inc(accepted="false", node=worker.node)
            return False
        job_complete = False
        with self._state:
            task.record = dict(record)
            task.node = worker.node
            worker.completed += 1
            job = self._jobs[task.job_id]
            if job.complete and job.finished is None:
                job.finished = self.clock()
                job_complete = True
        self.metrics.counter(
            "repro_service_results_total", "reported task results"
        ).inc(accepted="true", node=worker.node)
        self.metrics.counter(
            "repro_service_tasks_total", "file-level tasks by event"
        ).inc(event="done")
        if self.tracer is not None and self.tracer.enabled:
            self._stitch_span(task)
        if job_complete and self.jsonl_dir is not None:
            self._write_job_stream(self._jobs[task.job_id])
        self._observe_gauges()
        return True

    def release_worker(self, worker_id: str) -> list[str]:
        """A draining node hands its unfinished leases back."""
        worker = self._touch_worker(worker_id)
        worker.released = True
        released = self.queue.release(worker_id)
        if released:
            self.metrics.counter(
                "repro_service_tasks_total", "file-level tasks by event"
            ).inc(len(released), event="requeued")
        return released

    # -- merged output ------------------------------------------------------

    def job_records(self, job: AuditJob) -> list[dict]:
        """The job's merged JSONL records, in submission order.

        Always ends with per-node ``stats`` trailers; the global
        ``stats`` trailer appears only once the job is complete, so an
        in-progress stream reads as truncated (exactly like a killed
        single-box audit) rather than silently final.
        """
        with self._state:
            settled = [task for task in job.tasks if task.record is not None]
            lines: list[dict] = [
                {"type": "file", **task.record, "node": task.node}
                for task in settled
            ]
            per_node: dict[str, dict] = {}
            node_ledgers: dict[str, SlowQueryLedger] = {}
            for task in settled:
                entry = per_node.setdefault(
                    task.node,
                    {"files": 0, "safe": 0, "vulnerable": 0, "failed": 0},
                )
                entry["files"] += 1
                record = task.record
                if record.get("status") == "ok":
                    entry["safe" if record.get("safe") else "vulnerable"] += 1
                else:
                    entry["failed"] += 1
                queries = record.get("slow_queries") or []
                if queries:
                    ledger = node_ledgers.setdefault(task.node, SlowQueryLedger())
                    ledger.merge(
                        {**query, "node": task.node}
                        for query in queries
                        if isinstance(query, dict)
                    )
            for node in sorted(per_node):
                node_ledger = node_ledgers.get(node)
                lines.append(
                    {
                        "type": "stats",
                        "node": node,
                        "job": job.job_id,
                        **per_node[node],
                        "slow_queries": node_ledger.records() if node_ledger else [],
                    }
                )
            if job.complete:
                stats = EngineStats(total=len(job.tasks))
                for task in job.tasks:
                    stats.record(FileOutcome.from_record(task.record))
                stats.wall_seconds = (job.finished or self.clock()) - job.created
                trailer = stats.as_dict()
                # Rebuild the fleet ledger from the node-annotated records
                # so the global trailer attributes every query to its node.
                fleet_ledger = SlowQueryLedger()
                for node_ledger in node_ledgers.values():
                    fleet_ledger.merge(node_ledger.records())
                trailer["slow_queries"] = fleet_ledger.records()
                trailer["job"] = job.job_id
                trailer["nodes"] = len(per_node)
                lines.append({"type": "stats", **trailer})
            return lines

    def render_job_stream(self, job: AuditJob) -> str:
        return "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.job_records(job)
        )

    def _write_job_stream(self, job: AuditJob) -> Path:
        path = self.jsonl_dir / f"{job.job_id}.jsonl"
        with JsonlSink(path) as sink:
            for record in self.job_records(job):
                sink.write(record)
        return path

    # -- observability ------------------------------------------------------

    def _ingest_metrics(self, worker: WorkerInfo, payload: dict) -> None:
        """Fold a node's piggybacked registry snapshot into the fleet.

        Incompatible snapshots (histogram bucket boundaries that disagree
        with the node's own history or with the fleet registry) are
        rejected with a 400 carrying the mismatch detail — merging them
        would corrupt every fleet-summed bucket series.
        """
        snapshot = payload.get("metrics")
        if not isinstance(snapshot, dict):
            return
        try:
            self.fleet.ingest(worker.node, snapshot)
        except ValueError as exc:
            raise HttpError(400, f"metrics snapshot rejected: {exc}")

    def _stitch_span(self, task: ServiceTask) -> None:
        """Rebuild one file's span tree from its reported stage timings.

        Worker nodes report flat timing dicts, not serialized spans (the
        wire stays JSON); the coordinator lays the stages out
        sequentially under a per-file root so a fleet-wide run still
        renders as one coherent trace, one track per node.
        """
        record = task.record or {}
        timings = record.get("timings") or {}
        duration = float(record.get("duration") or 0.0)
        end = self.tracer.now()
        start = end - max(duration, sum(
            t for t in timings.values() if isinstance(t, (int, float))
        ))
        root = Span(
            "file:" + task.filename,
            start=start,
            duration=end - start,
            attrs={
                "filename": task.filename,
                "status": record.get("status"),
                "node": task.node,
                "task_id": task.task_id,
            },
            tid=hash(task.node) & 0x7FFF,
        )
        if record.get("safe") is not None:
            root.attrs["safe"] = record["safe"]
        cursor = start
        for stage in _STAGE_ORDER:
            seconds = timings.get(stage)
            if not isinstance(seconds, (int, float)):
                continue
            child = Span(stage, start=cursor, duration=float(seconds), tid=root.tid)
            root.children.append(child)
            cursor += float(seconds)
        self.tracer.add(root)

    def _observe_gauges(self) -> None:
        self.metrics.gauge(
            "repro_service_queue_depth", "pending (unleased) tasks"
        ).set(self.queue.pending_count)
        self.metrics.gauge(
            "repro_service_leased_tasks", "tasks currently leased to nodes"
        ).set(self.queue.leased_count)
        with self._state:
            workers = len(self._workers)
        self.metrics.gauge(
            "repro_service_workers", "registered worker nodes"
        ).set(workers)

    def health(self) -> dict:
        with self._state:
            jobs = len(self._jobs)
            complete = sum(1 for job in self._jobs.values() if job.complete)
            workers = len(self._workers)
        return {
            "status": "draining" if self.draining.is_set() else "ok",
            "jobs": jobs,
            "jobs_complete": complete,
            "workers": workers,
            "tasks_pending": self.queue.pending_count,
            "tasks_leased": self.queue.leased_count,
            "tasks_done": self.queue.done_count,
            "lease_requeues": self.queue.requeues,
        }

    # -- drain --------------------------------------------------------------

    def drain(self) -> None:
        """Stop leasing; nodes observe ``draining`` and exit cleanly."""
        self.draining.set()

    def wait_for_leases(self, grace: float, poll: float = 0.05) -> bool:
        """Block until every outstanding lease settles or ``grace`` runs
        out (the SIGTERM path: let in-flight node batches finish)."""
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            self.queue.reap()
            if self.queue.leased_count == 0:
                return True
            time.sleep(poll)
        return self.queue.leased_count == 0

    def wait_for_drain(self, grace: float, poll: float = 0.05) -> bool:
        """Block until leases settle AND every live node has acknowledged
        the drain (its next lease poll, after which it exits 0), so
        closing the listener doesn't turn clean node shutdowns into
        connection-refused failures.  Nodes silent for longer than one
        lease timeout are presumed dead and not waited for.
        """
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            self.queue.reap()
            with self._state:
                now = self.clock()
                unacked = [
                    worker
                    for worker in self._workers.values()
                    if not (worker.saw_drain or worker.released)
                    and now - worker.last_seen <= self.queue.timeout
                ]
            if self.queue.leased_count == 0 and not unacked:
                return True
            time.sleep(poll)
        return False

    # -- HTTP dispatch ------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes) -> tuple[int, str, bytes]:
        if method == "GET":
            return self._handle_get(path)
        if method == "POST":
            return self._handle_post(path, body)
        raise HttpError(405, f"method {method} not allowed")

    def _handle_get(self, path: str) -> tuple[int, str, bytes]:
        if path in ("/metrics", "/"):
            return 200, PROMETHEUS_CONTENT_TYPE, (
                self.metrics.render(quantiles=DEFAULT_QUANTILES).encode()
            )
        if path == "/healthz":
            return self.json_reply(self.health())
        if path == "/api/jobs":
            with self._state:
                jobs = [job.status() for job in self._jobs.values()]
            return self.json_reply({"jobs": jobs})
        if path.startswith("/api/jobs/"):
            rest = path[len("/api/jobs/"):]
            job_id, _, tail = rest.partition("/")
            with self._state:
                job = self._jobs.get(job_id)
            if job is None:
                raise HttpError(404, f"unknown job {job_id!r}")
            if not tail:
                status = job.status()
                status["queue"] = {
                    "pending": self.queue.pending_count,
                    "leased": self.queue.leased_count,
                    "requeues": self.queue.requeues,
                }
                return self.json_reply(status)
            if tail == "results":
                return 200, "application/x-ndjson", self.render_job_stream(job).encode()
        raise HttpError(404, f"no such endpoint: {path}")

    def _handle_post(self, path: str, body: bytes) -> tuple[int, str, bytes]:
        if path == "/api/submit":
            return self._handle_submit(body)
        if path == "/api/workers/register":
            payload = self.read_json(body)
            node = str(payload.get("node") or "").strip()
            if not node:
                raise HttpError(400, "registration needs a non-empty node name")
            worker = self.register_worker(node, payload.get("policy"))
            return self.json_reply(
                {
                    "worker_id": worker.worker_id,
                    "lease_timeout": self.queue.timeout,
                }
            )
        if path == "/api/workers/heartbeat":
            payload = self.read_json(body)
            worker = self._touch_worker(str(payload.get("worker_id")))
            self._ingest_metrics(worker, payload)
            extended = self.queue.extend(worker.worker_id)
            return self.json_reply(
                {"ok": True, "extended": extended, "draining": self.draining.is_set()}
            )
        if path == "/api/workers/release":
            payload = self.read_json(body)
            worker = self._touch_worker(str(payload.get("worker_id")))
            self._ingest_metrics(worker, payload)
            released = self.release_worker(worker.worker_id)
            return self.json_reply({"released": released})
        if path == "/api/lease":
            payload = self.read_json(body)
            max_tasks = payload.get("max", 1)
            if not isinstance(max_tasks, int) or max_tasks < 1:
                raise HttpError(400, "lease max must be a positive integer")
            worker = self._touch_worker(str(payload.get("worker_id")))
            self._ingest_metrics(worker, payload)
            return self.json_reply(self.lease_tasks(worker.worker_id, max_tasks))
        if path == "/api/result":
            payload = self.read_json(body)
            accepted = self.report_result(
                str(payload.get("worker_id")),
                str(payload.get("task_id")),
                payload.get("record"),
            )
            return self.json_reply({"accepted": accepted})
        raise HttpError(404, f"no such endpoint: {path}")

    def _handle_submit(self, body: bytes) -> tuple[int, str, bytes]:
        if self.draining.is_set():
            raise HttpError(503, "coordinator is draining; not accepting jobs")
        stripped = body.lstrip()
        if stripped.startswith(b"{"):
            payload = self.read_json(body)
            name = str(payload.get("name") or "")
            if isinstance(payload.get("files"), dict):
                files = {
                    str(path): str(text)
                    for path, text in payload["files"].items()
                }
                job = self.submit_files(files, name=name)
            elif payload.get("path"):
                job = self.submit_path(str(payload["path"]), name=name)
            else:
                raise HttpError(400, 'submission needs "files" or "path"')
        else:
            job = self.submit_tar(body)
        return self.json_reply(
            {"job_id": job.job_id, "tasks": len(job.tasks)}, status=201
        )
