"""Distributed audit service: sharding, coordinator, worker nodes.

The paper's evaluation swept 230 SourceForge projects on one machine;
the ROADMAP's north star is a scanning backend that audits submissions
from millions of users.  This package is the horizontal-scale layer that
turns ``repro audit`` from a CLI into that backend:

* :mod:`repro.service.sharding` — deterministic corpus partitioning for
  ``repro audit --shard i/n``: content-hash-based assignment, so shards
  are disjoint, exhaustive, and stable under file renames.  Machines
  sharing a cache directory can each take a shard with zero
  coordination (the engine and SAT caches already write atomically and
  tolerate concurrent writers).
* :mod:`repro.service.httpbase` — the stdlib HTTP endpoint base
  (``ThreadingHTTPServer`` on a daemon thread, ephemeral-port fallback)
  shared by the daemon's metrics server and the coordinator.
* :mod:`repro.service.leases` — timeout-based task leasing with
  exactly-once completion and automatic re-queue when a worker node
  dies mid-task.
* :mod:`repro.service.coordinator` — the ``repro serve`` HTTP
  coordinator: accepts submitted projects (JSON, tar, or local path),
  enqueues file-level tasks, leases them to registered worker nodes,
  merges results into per-job JSONL streams with per-node attribution,
  and serves ``/metrics`` + ``/healthz``.
* :mod:`repro.service.worker_client` — the ``repro work --connect URL``
  node: wraps the existing persistent worker pool, leases task batches,
  heartbeats, and reports outcomes back.

See docs/SERVICE.md for the architecture, endpoint contract, shard
semantics, and failure model.
"""

from repro.service.coordinator import Coordinator
from repro.service.httpbase import HttpEndpoint, parse_bind
from repro.service.leases import LeaseQueue
from repro.service.sharding import assign_shard, parse_shard, shard_partition
from repro.service.worker_client import CoordinatorClient, run_worker

__all__ = [
    "Coordinator",
    "CoordinatorClient",
    "HttpEndpoint",
    "LeaseQueue",
    "assign_shard",
    "parse_bind",
    "parse_shard",
    "run_worker",
    "shard_partition",
]
