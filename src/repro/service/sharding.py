"""Deterministic corpus sharding for ``repro audit --shard i/n``.

Splitting a corpus across n machines needs a partition that is:

* **disjoint and exhaustive** — every file lands on exactly one shard,
  so n shard audits merged together equal one whole-corpus audit;
* **coordination-free** — each machine computes its own subset from
  nothing but the corpus and its shard spec (the shared cache directory
  already tolerates concurrent writers, so shards need no locking);
* **stable under renames** — assignment is a pure function of the file
  *content*, never its path, so moving/renaming a file keeps it (and
  its cache entries, which are content-addressed the same way) on the
  same shard, and adding or removing files never reshuffles the rest.

The assignment is ``sha256(salt ‖ content) mod n``.  Two files with
identical content land on the same shard — which is exactly right: they
share one result-cache entry, so co-locating them means one computes it
and the other hits the cache.

Shard specs are written ``i/n`` with 1-based ``i`` (``--shard 2/4`` =
the second of four shards); internally assignments are 0-based.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, TypeVar

__all__ = ["assign_shard", "parse_shard", "shard_partition"]

T = TypeVar("T")

#: Domain separator: shard assignment must not collide with the other
#: sha256 keyings in the codebase (cache keys, CNF fingerprints).
_SALT = b"repro-shard\x00"


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse ``"i/n"`` into 0-based ``(index, count)``.

    >>> parse_shard("2/4")
    (1, 4)
    """
    index_text, sep, count_text = spec.partition("/")
    try:
        if not sep:
            raise ValueError(spec)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"invalid shard spec {spec!r} (want I/N, e.g. 2/4)")
    if count < 1:
        raise ValueError(f"invalid shard spec {spec!r}: shard count must be >= 1")
    if not 1 <= index <= count:
        raise ValueError(
            f"invalid shard spec {spec!r}: index must be between 1 and {count}"
        )
    return index - 1, count


def assign_shard(content: str | bytes, count: int) -> int:
    """The 0-based shard owning ``content`` in an ``count``-way split.

    Pure content hash: independent of filename, corpus composition, and
    every analyzer option, so all participants agree without talking.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if isinstance(content, str):
        content = content.encode()
    digest = hashlib.sha256(_SALT + content).digest()
    return int.from_bytes(digest[:8], "big") % count


def shard_partition(
    items: Iterable[tuple[T, str]], index: int, count: int
) -> list[T]:
    """Filter ``(item, content)`` pairs down to shard ``index`` of ``count``.

    Preserves input order; ``index`` is 0-based (as returned by
    :func:`parse_shard`).
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} out of range for count {count}")
    return [item for item, content in items if assign_shard(content, count) == index]
