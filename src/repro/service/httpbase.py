"""Shared stdlib HTTP endpoint base for repro's long-running servers.

Both the daemon's metrics endpoint (``repro watch --serve-metrics``) and
the audit coordinator (``repro serve``) need the same machinery: a
``ThreadingHTTPServer`` on a daemon thread, clean start/close semantics,
quiet request logging, broken-pipe-tolerant replies, and an
ephemeral-port fallback when the requested port is taken (a server that
outlives a stale predecessor should come up reachable, not crash).
:class:`HttpEndpoint` owns all of that; subclasses implement one
:meth:`~HttpEndpoint.handle` method mapping ``(method, path, body)`` to
a response triple.

Responses can be returned (``(status, content_type, body)``) or raised
(:class:`HttpError`), so deep handler code can abort a request without
threading status codes through every return value.
"""

from __future__ import annotations

import errno
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["HttpEndpoint", "HttpError", "parse_bind"]


def parse_bind(spec: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """Parse ``PORT``, ``:PORT``, or ``HOST:PORT`` into ``(host, port)``.

    An empty host binds loopback, not all interfaces: an audit service's
    endpoints should not be network-visible unless asked for explicitly.
    """
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        port_text = spec
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid bind address {spec!r} (want [HOST]:PORT)")
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid port {port} (want 0-65535)")
    return host or default_host, port


class HttpError(Exception):
    """Raise inside :meth:`HttpEndpoint.handle` to abort with a status.

    The body is a JSON object (``{"error": message}``) so programmatic
    clients never have to sniff between prose and payloads.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class HttpEndpoint:
    """A threaded HTTP server on a daemon thread; subclass and handle.

    Usable as a context manager; :meth:`close` shuts the listener down
    cleanly (pending requests finish, the socket is released).  If the
    requested port is taken, an ephemeral port (``port == 0``) is bound
    instead and :attr:`fell_back` is set — the actual address is always
    :attr:`host`::attr:`port`.
    """

    #: Thread name, overridden by subclasses for debuggability.
    thread_name = "repro-http-endpoint"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.requested_port = port
        #: True when ``port`` was taken and an ephemeral one was bound.
        self.fell_back = False
        handler = self._make_handler()
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            if port == 0 or exc.errno not in (errno.EADDRINUSE, errno.EACCES):
                raise
            self._server = ThreadingHTTPServer((host, 0), handler)
            self.fell_back = True
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name=self.thread_name, daemon=True
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "HttpEndpoint":
        self._thread.start()
        return self

    def close(self) -> None:
        # shutdown() blocks on serve_forever()'s exit handshake, which
        # never happens for a server that was constructed but not
        # started — skip it then (server_close alone frees the socket).
        if self._thread.is_alive():
            self._server.shutdown()
            self._thread.join(timeout=5)
        self._server.server_close()

    def __enter__(self) -> "HttpEndpoint":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- subclass API -------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes) -> tuple[int, str, bytes]:
        """Map one request to ``(status, content_type, body)``.

        ``path`` has the query string stripped; ``body`` is the raw
        request body (empty for GET).  Raise :class:`HttpError` to abort.
        """
        raise NotImplementedError

    @staticmethod
    def json_reply(payload, status: int = 200) -> tuple[int, str, bytes]:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        return status, "application/json", body

    @staticmethod
    def read_json(body: bytes) -> dict:
        """Parse a JSON-object request body (400 on anything else)."""
        try:
            payload = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "expected a JSON object body")
        return payload

    # -- plumbing -----------------------------------------------------------

    def _make_handler(self):
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def _dispatch(self) -> None:
                path = self.path.split("?", 1)[0]
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                try:
                    status, content_type, payload = outer.handle(
                        self.command, path, body
                    )
                except HttpError as exc:
                    status, content_type, payload = outer.json_reply(
                        {"error": exc.message}, status=exc.status
                    )
                except Exception as exc:  # noqa: BLE001 - server must survive
                    status, content_type, payload = outer.json_reply(
                        {"error": f"{type(exc).__name__}: {exc}"}, status=500
                    )
                self._reply(status, content_type, payload)

            do_GET = _dispatch  # noqa: N815 - http.server API
            do_POST = _dispatch  # noqa: N815
            do_DELETE = _dispatch  # noqa: N815

            def _reply(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                try:
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # client went away mid-response

            def log_message(self, format: str, *args) -> None:  # noqa: A002
                pass  # request traffic must not spam the server's stderr

        return Handler
