"""Task leasing with timeout-based re-queue and exactly-once completion.

The distributed failure model in one structure: the coordinator hands a
task to a worker node as a *lease* with a deadline, not a transfer of
ownership.  A node that completes in time settles the task; a node that
vanishes (crash, network partition, SIGKILL mid-batch) simply stops
heartbeating, its leases expire, and the tasks return to the front of
the queue for the next node.  Because verdicts are deterministic, a
"zombie" node that finishes *after* its lease expired is harmless: the
first result to arrive wins, every later one is rejected, so the merged
stream carries exactly one record per task no matter how ugly the race.

This is the same leasing idea the in-process scheduler applies to its
pipelined worker pipes (a timed-out worker's queued tasks are requeued,
the head task is settled once), lifted to a shared abstraction the HTTP
coordinator can drive over the network.

The queue is deliberately free of I/O and threads: callers decide when
:meth:`reap` runs (the coordinator reaps lazily on every lease/status
request) and what the clock is (tests inject a fake one).  All methods
take and release one internal lock, so a threaded HTTP server can call
in from any request thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["Lease", "LeaseQueue"]


@dataclass
class Lease:
    """One outstanding task lease."""

    task_id: str
    owner: str
    deadline: float


class LeaseQueue:
    """FIFO task queue with owner-scoped, expiring leases."""

    def __init__(self, timeout: float = 60.0, clock=time.monotonic) -> None:
        self.timeout = timeout
        self.clock = clock
        self._lock = threading.Lock()
        self._pending: deque[str] = deque()
        self._leases: dict[str, Lease] = {}
        self._done: set[str] = set()
        #: Tasks ever re-queued by lease expiry or owner release.
        self.requeues = 0

    # -- producers ----------------------------------------------------------

    def add(self, task_id: str) -> None:
        with self._lock:
            if task_id in self._done or task_id in self._leases:
                return
            self._pending.append(task_id)

    # -- consumers ----------------------------------------------------------

    def lease(self, owner: str, max_tasks: int = 1) -> list[str]:
        """Lease up to ``max_tasks`` pending tasks to ``owner``.

        Expired leases are reaped first, so a task abandoned by a dead
        node is re-leasable the moment anyone asks for work.
        """
        with self._lock:
            self._reap_locked()
            leased: list[str] = []
            deadline = self.clock() + self.timeout
            while self._pending and len(leased) < max_tasks:
                task_id = self._pending.popleft()
                self._leases[task_id] = Lease(task_id, owner, deadline)
                leased.append(task_id)
            return leased

    def complete(self, task_id: str) -> bool:
        """Settle a task; True only for the *first* completion.

        Results are deterministic, so a completion from an expired (or
        even unknown) lease is accepted when the task is still open —
        rejecting it would only throw away finished work.  Duplicates
        and completions for never-enqueued ids return False.
        """
        with self._lock:
            if task_id in self._done:
                return False
            if task_id in self._leases:
                del self._leases[task_id]
            elif task_id in self._pending:
                self._pending.remove(task_id)
            else:
                return False
            self._done.add(task_id)
            return True

    def extend(self, owner: str) -> int:
        """Heartbeat: push every lease of ``owner`` out by one timeout."""
        with self._lock:
            deadline = self.clock() + self.timeout
            count = 0
            for lease in self._leases.values():
                if lease.owner == owner:
                    lease.deadline = deadline
                    count += 1
            return count

    def release(self, owner: str) -> list[str]:
        """Return all of ``owner``'s unfinished leases to the queue front
        (a draining node hands its work back instead of letting it age
        out)."""
        with self._lock:
            released = [
                lease.task_id
                for lease in self._leases.values()
                if lease.owner == owner
            ]
            for task_id in released:
                del self._leases[task_id]
                self._pending.appendleft(task_id)
            self.requeues += len(released)
            return released

    def reap(self) -> list[str]:
        """Re-queue every expired lease; returns the reclaimed task ids."""
        with self._lock:
            return self._reap_locked()

    def _reap_locked(self) -> list[str]:
        now = self.clock()
        expired = [
            lease.task_id
            for lease in self._leases.values()
            if lease.deadline <= now
        ]
        # Front of the queue: an abandoned task has already waited one
        # full lease; it should not also wait behind the whole backlog.
        for task_id in expired:
            del self._leases[task_id]
            self._pending.appendleft(task_id)
        self.requeues += len(expired)
        return expired

    # -- introspection ------------------------------------------------------

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def leased_count(self) -> int:
        with self._lock:
            return len(self._leases)

    @property
    def done_count(self) -> int:
        with self._lock:
            return len(self._done)

    @property
    def outstanding(self) -> int:
        """Tasks not yet settled (pending + leased)."""
        with self._lock:
            return len(self._pending) + len(self._leases)

    def owner_of(self, task_id: str) -> str | None:
        with self._lock:
            lease = self._leases.get(task_id)
            return lease.owner if lease else None
