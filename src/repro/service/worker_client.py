"""The ``repro work --connect URL`` worker node.

A node is the existing batch-audit engine wearing a network face: it
registers with a coordinator, leases batches of file-level tasks, runs
them through the local persistent worker pool (same per-file timeout,
crash isolation, and caching as ``repro audit``), and reports one JSON
outcome record per task.  Everything rides stdlib ``urllib`` — a node
needs nothing but Python and a reachable coordinator.

Observability: the engine fills a node-local
:class:`~repro.obs.MetricsRegistry`, and every heartbeat / lease /
release request piggybacks a cumulative ``registry.snapshot()`` that the
coordinator delta-merges into node-labelled and fleet-summed series on
its own ``/metrics`` endpoint — no extra connections, no push gateway.

Liveness protocol: a daemon heartbeat thread pings the coordinator at a
quarter of the lease timeout, which extends every lease the node holds.
A node that dies (or loses the network) simply stops heartbeating; its
leases expire on the coordinator and the tasks re-queue for other nodes.
The node never has to do anything *right* to fail safely — dying is
enough.

Shutdown: SIGTERM/SIGINT set the stop event, the in-flight engine batch
drains (undispatched tasks come back as ``skipped`` and are handed back
to the coordinator via ``/api/workers/release``), and the node exits 0.
A coordinator-initiated drain looks identical, delivered through the
``draining`` flag on lease responses.
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.engine import AuditEngine, AuditTask, EngineConfig, ResultCache
from repro.engine.cache import policy_fingerprint
from repro.obs import MetricsRegistry

__all__ = ["CoordinatorClient", "WorkerConfig", "run_worker"]


class CoordinatorClient:
    """Thin JSON-over-HTTP client for the coordinator's API."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, path: str, payload: dict | None = None) -> dict:
        """POST ``payload`` (or GET when None) and decode the JSON reply.

        4xx/5xx responses raise :class:`urllib.error.HTTPError`; callers
        translate the ones that carry protocol meaning (404 worker →
        re-register, 409 policy → fatal).
        """
        url = self.base_url + path
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            body = response.read()
        return json.loads(body.decode()) if body else {}

    def get_text(self, path: str) -> str:
        with urllib.request.urlopen(
            self.base_url + path, timeout=self.timeout
        ) as response:
            return response.read().decode()


@dataclass
class WorkerConfig:
    """Knobs for one node's lifetime."""

    node: str
    jobs: int = 1
    #: Tasks requested per lease (default: enough to keep the pool busy
    #: two-deep, matching the scheduler's pipeline depth).
    lease_max: int | None = None
    poll: float = 1.0
    timeout: float | None = None
    start_method: str | None = None
    cache: ResultCache | None = None
    #: Consecutive connection failures tolerated before giving up.
    max_errors: int = 5
    quiet: bool = False

    def batch_size(self) -> int:
        return self.lease_max if self.lease_max else max(1, self.jobs) * 2


def run_worker(
    url: str,
    websari,
    config: WorkerConfig,
    stop_event: threading.Event | None = None,
    stream=None,
) -> int:
    """Drive one node until drain or persistent failure.

    Returns the process exit code: 0 for a clean drain (coordinator
    drained, or our stop event fired), 1 when the coordinator stayed
    unreachable past ``max_errors`` consecutive attempts.
    """
    stop = stop_event if stop_event is not None else threading.Event()
    out = stream if stream is not None else sys.stderr
    client = CoordinatorClient(url)

    def say(message: str) -> None:
        if not config.quiet:
            print(f"work[{config.node}]: {message}", file=out, flush=True)

    # -- register (with retry: the coordinator may still be booting) -------
    worker_id = None
    errors = 0
    policy = policy_fingerprint(websari)
    while worker_id is None and not stop.is_set():
        try:
            reply = client.request(
                "/api/workers/register", {"node": config.node, "policy": policy}
            )
            worker_id = reply["worker_id"]
            lease_timeout = float(reply.get("lease_timeout") or 60.0)
        except urllib.error.HTTPError as exc:
            say(f"registration rejected: {exc} ({_error_detail(exc)})")
            return 1
        except (urllib.error.URLError, OSError, ValueError) as exc:
            errors += 1
            if errors >= config.max_errors:
                say(f"cannot reach coordinator at {url}: {exc}")
                return 1
            stop.wait(config.poll)
    if worker_id is None:
        return 0
    say(f"registered as {worker_id} (lease timeout {lease_timeout:g}s)")

    # Node-local registry: the engine fills it while the heartbeat/lease
    # loops piggyback cumulative snapshots onto requests they already make.
    # The coordinator delta-merges them into node-labelled + fleet-summed
    # series, so one scrape of the coordinator covers the whole fleet.
    metrics = MetricsRegistry()

    # -- heartbeat thread: liveness is decoupled from batch duration -------
    def heartbeat() -> None:
        interval = max(0.2, lease_timeout / 4)
        while not stop.wait(interval):
            try:
                client.request(
                    "/api/workers/heartbeat",
                    {"worker_id": worker_id, "metrics": metrics.snapshot()},
                )
            except (urllib.error.URLError, OSError, ValueError):
                pass  # the lease loop owns failure accounting

    threading.Thread(
        target=heartbeat, name=f"repro-work-heartbeat-{config.node}", daemon=True
    ).start()

    engine_config = EngineConfig(
        jobs=config.jobs,
        timeout=config.timeout,
        start_method=config.start_method,
        cache=config.cache,
        metrics=metrics,
        drain_event=stop,
    )
    engine = AuditEngine(websari=websari, config=engine_config)
    completed = 0
    errors = 0
    try:
        while not stop.is_set():
            try:
                lease = client.request(
                    "/api/lease",
                    {
                        "worker_id": worker_id,
                        "max": config.batch_size(),
                        "metrics": metrics.snapshot(),
                    },
                )
                errors = 0
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    say("coordinator forgot us; exiting for a clean re-register")
                    return 1
                errors += 1
                if errors >= config.max_errors:
                    say(f"coordinator keeps failing: {exc}")
                    return 1
                stop.wait(config.poll)
                continue
            except (urllib.error.URLError, OSError, ValueError) as exc:
                errors += 1
                if errors >= config.max_errors:
                    say(f"lost coordinator at {url}: {exc}")
                    return 1
                stop.wait(config.poll)
                continue

            tasks_payload = lease.get("tasks") or []
            if not tasks_payload:
                if lease.get("draining"):
                    say(f"coordinator draining; exiting after {completed} file(s)")
                    return 0
                stop.wait(config.poll)
                continue

            tasks = [
                AuditTask(
                    index=index,
                    filename=str(item["filename"]),
                    source=str(item["source"]),
                )
                for index, item in enumerate(tasks_payload)
            ]
            result = engine.run(tasks)
            for item, outcome in zip(tasks_payload, result.outcomes):
                if outcome.status == "skipped":
                    continue  # drained mid-batch; released below
                try:
                    reply = client.request(
                        "/api/result",
                        {
                            "worker_id": worker_id,
                            "task_id": item["task_id"],
                            "record": outcome.to_record(),
                        },
                    )
                    if reply.get("accepted"):
                        completed += 1
                except (urllib.error.URLError, OSError, ValueError) as exc:
                    # The lease will expire and the task re-queue; losing
                    # one result report must not kill the node.
                    say(f"failed to report {item['task_id']}: {exc}")
            say(
                f"batch of {len(tasks)} done "
                f"({result.stats.safe} safe, {result.stats.vulnerable} vulnerable, "
                f"{result.stats.failed} failed)"
            )
    finally:
        try:
            # Final snapshot rides the release: whatever the last lease
            # cycle produced reaches the fleet registry before we vanish.
            client.request(
                "/api/workers/release",
                {"worker_id": worker_id, "metrics": metrics.snapshot()},
            )
        except (urllib.error.URLError, OSError, ValueError):
            pass
    say(f"drained after {completed} file(s)")
    return 0


def _error_detail(exc: urllib.error.HTTPError) -> str:
    try:
        return json.loads(exc.read().decode()).get("error", "")
    except Exception:  # noqa: BLE001 - best-effort diagnostics
        return ""
