"""Bounded model checking: Figure-5 constraint generation, the CDCL-backed
per-assertion checker with all-counterexample enumeration, and the
xBMC0.1 location-variable encoding kept as an ablation baseline."""

from repro.bmc.checker import (
    AssertionResult,
    BMCChecker,
    BMCResult,
    check_program,
)
from repro.bmc.encoder import (
    ConstraintGenerator,
    EncodedAssertion,
    LatticeEncoding,
    bit_var_name,
)
from repro.bmc.trace import (
    CounterexampleTrace,
    TraceStep,
    ViolatingVariable,
    reconstruct_trace,
)

__all__ = [
    "AssertionResult",
    "BMCChecker",
    "BMCResult",
    "check_program",
    "ConstraintGenerator",
    "EncodedAssertion",
    "LatticeEncoding",
    "bit_var_name",
    "CounterexampleTrace",
    "TraceStep",
    "ViolatingVariable",
    "reconstruct_trace",
]
