"""xBMC0.1: the auxiliary-location-variable encoding — paper §3.3.1.

The paper's first BMC prototype added "an auxiliary variable l to record
program lines": the state is (location, all variable types), the CFG's
transition relation T(s, s') is unrolled for k steps (the longest path),
and the risk condition asks whether some step sits at an assertion
location with its condition violated.

The paper reports this version suffered "frequent system breakdowns,
primarily due to inefficiently encoding each assignment using 2·|X|
variables" — every step carries a full copy of every variable plus frame
conditions.  This module reproduces the scheme faithfully so the ABL-ENC
benchmark can measure the formula-size and solve-time gap against the
renaming encoder (xBMC1.0).  It answers SAT/UNSAT per assertion (no
counterexample enumeration — the scheme predates that machinery).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ai.instructions import (
    AIInstruction,
    AIProgram,
    AISeq,
    AIStop,
    Assertion,
    Branch,
    TypeAssign,
)
from repro.bmc.encoder import LatticeEncoding
from repro.ir.commands import Const, Expr, Join, LevelConst, VarRef
from repro.lattice import FiniteLattice, two_point_lattice
from repro.sat.cnf import CNF, VariablePool
from repro.sat.solver import CDCLSolver
from repro.sat.tseitin import FALSE, TRUE, Var, add_expr_to_cnf, conj, disj, iff

__all__ = ["LocationBMC", "LocationBMCResult"]


@dataclass
class _Node:
    """One CFG node: an atomic instruction plus successor indices."""

    instruction: AIInstruction | None  # None = halt
    successors: list[int] = field(default_factory=list)


@dataclass
class LocationBMCResult:
    """Per-assertion verdicts plus formula-size statistics."""

    #: assert_id -> True (violation exists) / False (safe).
    verdicts: dict[int, bool]
    num_steps: int
    num_locations: int
    num_vars: int
    num_clauses: int

    @property
    def safe(self) -> bool:
        return not any(self.verdicts.values())


class LocationBMC:
    """Unrolled CFG encoding with an explicit location variable."""

    def __init__(self, program: AIProgram, lattice: FiniteLattice | None = None) -> None:
        from repro.ai.diameter import ai_diameter

        self.lattice = lattice if lattice is not None else two_point_lattice()
        self.encoding = LatticeEncoding(self.lattice)
        self.nodes: list[_Node] = []
        self.variables: list[str] = []
        #: Fixed program diameter (§3.3): unrolling this many steps makes
        #: the check complete, and it is tighter than the node count on
        #: branchy programs (only the longer arm of each branch counts).
        self.diameter = ai_diameter(program)
        self._build_cfg(program)

    # -- CFG construction -------------------------------------------------

    def _build_cfg(self, program: AIProgram) -> None:
        variables: set[str] = set()

        def collect(instruction: AIInstruction) -> None:
            if isinstance(instruction, AISeq):
                for child in instruction:
                    collect(child)
            elif isinstance(instruction, TypeAssign):
                variables.add(instruction.var)
                variables.update(_vars_of(instruction.expr))
            elif isinstance(instruction, Assertion):
                variables.update(instruction.variables)
            elif isinstance(instruction, Branch):
                collect(instruction.then)
                collect(instruction.orelse)

        collect(program.body)
        self.variables = sorted(variables)

        # Lower the instruction tree to nodes; returns entry index, and
        # patches dangling exits to the continuation.
        def lower(instruction: AIInstruction, continuation: int) -> int:
            """Emit nodes for `instruction` flowing into `continuation`;
            return the entry node index."""
            if isinstance(instruction, AISeq):
                entry = continuation
                for child in reversed(list(instruction)):
                    entry = lower(child, entry)
                return entry
            if isinstance(instruction, (TypeAssign, Assertion)):
                self.nodes.append(_Node(instruction, [continuation]))
                return len(self.nodes) - 1
            if isinstance(instruction, AIStop):
                self.nodes.append(_Node(instruction, [self._halt_index]))
                return len(self.nodes) - 1
            if isinstance(instruction, Branch):
                then_entry = lower(instruction.then, continuation)
                else_entry = lower(instruction.orelse, continuation)
                self.nodes.append(_Node(instruction, [then_entry, else_entry]))
                return len(self.nodes) - 1
            raise TypeError(f"unknown AI instruction {type(instruction).__name__}")

        # Halt node first so Stop lowering can reference it.
        self.nodes.append(_Node(None, []))
        self._halt_index = 0
        entry = lower(program.body, self._halt_index)
        self.nodes[self._halt_index].successors = [self._halt_index]
        self.entry = entry

    # -- encoding ---------------------------------------------------------------

    def _loc_bits(self) -> int:
        count = max(len(self.nodes), 2)
        bits = 1
        while (1 << bits) < count:
            bits += 1
        return bits

    def _loc_expr(self, step: int, node: int, bits: int):
        parts = []
        for b in range(bits):
            var = Var(f"s{step}.loc.{b}")
            parts.append(var if (node >> b) & 1 else ~var)
        return conj(parts)

    def _var_bit(self, step: int, name: str, bit: int):
        return Var(f"s{step}.t_{name}.{bit}")

    def _expr_bit(self, step: int, expr: Expr, bit: int):
        if isinstance(expr, Const):
            return FALSE
        if isinstance(expr, LevelConst):
            return TRUE if bit in self.encoding.bits(expr.level) else FALSE
        if isinstance(expr, VarRef):
            return self._var_bit(step, expr.name, bit)
        if isinstance(expr, Join):
            return disj(self._expr_bit(step, op, bit) for op in expr.operands)
        raise TypeError(f"unknown type expression {type(expr).__name__}")

    def _violation_expr(self, step: int, assertion: Assertion):
        required_bits = self.encoding.bits(assertion.required)
        per_var = []
        for name in assertion.variables:
            leq = conj(
                ~self._var_bit(step, name, bit)
                for bit in range(self.encoding.width)
                if bit not in required_bits
            )
            strict = disj(
                ~self._var_bit(step, name, bit) for bit in sorted(required_bits)
            )
            safe = (leq & strict) if required_bits else FALSE
            per_var.append(~safe)
        return disj(per_var)

    def _transition(self, step: int, bits: int):
        """T(s_step, s_{step+1}) as a disjunction over location cases."""
        cases = []
        for index, node in enumerate(self.nodes):
            here = self._loc_expr(step, index, bits)
            nexts = disj(
                self._loc_expr(step + 1, successor, bits)
                for successor in node.successors
            )
            assigned: str | None = None
            effect = TRUE
            if isinstance(node.instruction, TypeAssign):
                assigned = node.instruction.var
                effect = conj(
                    iff(
                        self._var_bit(step + 1, assigned, bit),
                        self._expr_bit(step, node.instruction.expr, bit),
                    )
                    for bit in range(self.encoding.width)
                )
            # Frame: every other variable keeps its value — this is the
            # 2|X|-variables-per-assignment cost the paper laments.
            frame = conj(
                iff(self._var_bit(step + 1, name, bit), self._var_bit(step, name, bit))
                for name in self.variables
                if name != assigned
                for bit in range(self.encoding.width)
            )
            cases.append(here & nexts & effect & frame)
        return disj(cases)

    def run(self, max_steps: int | None = None) -> LocationBMCResult:
        bits = self._loc_bits()
        k = max_steps if max_steps is not None else self.diameter + 1

        pool = VariablePool()
        cnf = CNF()

        # Initial condition: at entry, every variable is ⊥.
        add_expr_to_cnf(self._loc_expr(0, self.entry, bits), pool, cnf)
        for name in self.variables:
            for bit in range(self.encoding.width):
                add_expr_to_cnf(~self._var_bit(0, name, bit), pool, cnf)
        # Unrolled transitions.
        for step in range(k):
            add_expr_to_cnf(self._transition(step, bits), pool, cnf)

        solver = CDCLSolver()
        solver.add_formula(cnf)

        # Per-assertion risk conditions, activated via assumptions.
        verdicts: dict[int, bool] = {}
        assertion_nodes = [
            (index, node.instruction)
            for index, node in enumerate(self.nodes)
            if isinstance(node.instruction, Assertion)
        ]
        emitted = cnf.num_clauses
        for index, assertion in assertion_nodes:
            risk = disj(
                self._loc_expr(step, index, bits) & self._violation_expr(step, assertion)
                for step in range(k + 1)
            )
            from repro.sat.tseitin import _Tseitin

            gate_lit = _Tseitin(pool, cnf).literal(risk)
            act = pool.fresh()
            cnf.add_clause((-act, gate_lit))
            for clause in cnf.clauses[emitted:]:
                solver.add_clause(clause)
            emitted = cnf.num_clauses
            result = solver.solve(assumptions=[act])
            verdicts[assertion.assert_id] = bool(result.satisfiable)

        return LocationBMCResult(
            verdicts=verdicts,
            num_steps=k,
            num_locations=len(self.nodes),
            num_vars=cnf.num_vars,
            num_clauses=cnf.num_clauses,
        )


def _vars_of(expr: Expr) -> set[str]:
    if isinstance(expr, VarRef):
        return {expr.name}
    if isinstance(expr, Join):
        out: set[str] = set()
        for op in expr.operands:
            out |= _vars_of(op)
        return out
    return set()
