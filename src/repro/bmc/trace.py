"""Counterexample traces — §3.3.2/§3.3.3.

A satisfying assignment of ``B_i`` fixes the nondeterministic branch
variables BN; tracing the (deterministic) renamed AI under those values
yields "a sequence of single assignments, which represents one
counterexample trace".  :func:`reconstruct_trace` performs that walk and
also computes the *deciding* branch literals — the minimal guard prefix
values that determine the path — which the checker negates to enumerate
the next counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ai.renaming import (
    IndexedVar,
    RenamedAssert,
    RenamedAssign,
    RenamedProgram,
    RenamedStop,
)
from repro.php.span import Span

__all__ = ["TraceStep", "ViolatingVariable", "CounterexampleTrace", "reconstruct_trace"]


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One executed single assignment on the error trace."""

    target: IndexedVar
    expr: object
    span: Span

    def __str__(self) -> str:
        return f"{self.target} = {self.expr} @ {self.span}"


@dataclass(frozen=True, slots=True)
class ViolatingVariable:
    """A variable whose type violated the assertion, with its model level."""

    var: IndexedVar
    level: object

    def __str__(self) -> str:
        return f"{self.var} = {self.level}"


@dataclass
class CounterexampleTrace:
    """One complete counterexample for one assertion."""

    assert_id: int
    function: str
    span: Span
    steps: list[TraceStep]
    violating: list[ViolatingVariable]
    #: Values of the branch variables that determined this path.
    deciding_branches: dict[str, bool]
    #: Full BN assignment from the model (for reporting).
    branch_assignment: dict[str, bool] = field(default_factory=dict)
    #: Source span of the statement behind each deciding branch variable.
    #: F(p) erases the concrete condition; the replayer maps these spans
    #: back onto the parsed source to recover a steerable input.
    branch_spans: dict[str, Span] = field(default_factory=dict)

    @property
    def violating_names(self) -> set[str]:
        return {v.var.name for v in self.violating}

    def describe(self) -> str:
        lines = [f"counterexample for assert#{self.assert_id} ({self.function}) at {self.span}"]
        if self.deciding_branches:
            path = ", ".join(
                f"{name}={'T' if value else 'F'}"
                for name, value in sorted(self.deciding_branches.items())
            )
            lines.append(f"  path: {path}")
        for step in self.steps:
            lines.append(f"  {step}")
        for violation in self.violating:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)

    def canonical(self) -> str:
        """Deterministic serialization for regression/equality checks.

        Every field that influences replay is rendered in a fixed order,
        so byte-equality of two canonical strings means the traces steer
        the replayer identically (used by the fork/spawn determinism
        tests).
        """
        parts = [
            f"assert_id={self.assert_id}",
            f"function={self.function}",
            f"span={self.span}",
            "steps=[" + "; ".join(str(step) for step in self.steps) + "]",
            "violating=[" + "; ".join(str(v) for v in self.violating) + "]",
            "deciding={"
            + ", ".join(
                f"{name}={'T' if value else 'F'}"
                for name, value in sorted(self.deciding_branches.items())
            )
            + "}",
            "assignment={"
            + ", ".join(
                f"{name}={'T' if value else 'F'}"
                for name, value in sorted(self.branch_assignment.items())
            )
            + "}",
            "branch_spans={"
            + ", ".join(
                f"{name}@{span}" for name, span in sorted(self.branch_spans.items())
            )
            + "}",
        ]
        return "\n".join(parts)


def _indexed_vars_of(expr) -> list[IndexedVar]:
    from repro.ir.commands import Join

    if isinstance(expr, IndexedVar):
        return [expr]
    if isinstance(expr, Join):
        out: list[IndexedVar] = []
        for op in expr.operands:
            out.extend(_indexed_vars_of(op))
        return out
    return []


def reconstruct_trace(
    program: RenamedProgram,
    assertion: RenamedAssert,
    branch_values: dict[str, bool],
    violating: list[ViolatingVariable],
) -> CounterexampleTrace:
    """Walk the renamed AI under fixed BN values up to ``assertion``.

    ``steps`` are the executed assignments (guard satisfied) in program
    order.  ``deciding_branches`` are the branch literals that actually
    influence the violation: the guards along the backward slice from the
    violating variables, where for each consulted guard the literals up
    to the first unsatisfied one count (an outer false literal makes the
    inner ones irrelevant).  Negating exactly this set enumerates each
    *semantically distinct* violating path once, instead of once per
    assignment of branch variables the violation never consults (which
    is what negating all of BN, the paper's literal formulation, does).
    """
    deciding: dict[str, bool] = {}

    def consume_guard(guard) -> bool:
        """Record the deciding prefix of a guard; True if fully satisfied."""
        for literal in guard:
            value = branch_values.get(literal.variable, False)
            deciding[literal.variable] = value
            if value != literal.positive:
                return False
        return True

    def guard_satisfied(guard) -> bool:
        return all(
            branch_values.get(lit.variable, False) == lit.positive for lit in guard
        )

    prefix: list[RenamedAssign] = []
    for event in program.events:
        if isinstance(event, RenamedAssert) and event is assertion:
            break
        if isinstance(event, RenamedAssign):
            prefix.append(event)

    steps = [
        TraceStep(event.target, event.expr, event.span)
        for event in prefix
        if guard_satisfied(event.guard)
    ]

    # Backward slice: which versions feed the violating variables?
    consume_guard(assertion.guard)
    relevant: set[tuple[str, int]] = {
        (violation.var.name, violation.var.index) for violation in violating
    }
    for event in reversed(prefix):
        key = (event.target.name, event.target.index)
        if key not in relevant:
            continue
        relevant.discard(key)
        if consume_guard(event.guard):
            for var in _indexed_vars_of(event.expr):
                relevant.add((var.name, var.index))
        else:
            # Skipped assignment: t_x^i = t_x^{i-1}; the value flows from
            # the previous version, and this guard decided the skip.
            relevant.add((event.target.name, event.target.index - 1))

    return CounterexampleTrace(
        assert_id=assertion.assert_id,
        function=assertion.function,
        span=assertion.span,
        steps=steps,
        violating=violating,
        deciding_branches=deciding,
        branch_assignment=dict(branch_values),
        branch_spans={
            name: program.branch_spans[name]
            for name in deciding
            if name in program.branch_spans
        },
    )
