"""Constraint generation C(c, g) — paper §3.3.2, Figure 5 (xBMC1.0).

The renamed AI is turned into boolean constraints:

=====================================  ====================================
AI command                             Constraint
=====================================  ====================================
``stop`` or empty                      ``true``
``t_x = t_e``                          ``t_x^i = g ? ρ(t_e) : t_x^{i-1}``
``assert(t_x | x∈X < T_R)``            ``g ⇒ ∧_{x∈X} ρ(t_x) < T_R``
``if b then c1 else c2``               ``C(c1, g ∧ b) ∧ C(c2, g ∧ ¬b)``
``c1; c2``                             ``C(c1,g) ∧ C(c2,g)``
=====================================  ====================================

Lattice values are encoded as bit vectors over the lattice's
**join-irreducible** elements: bit *j* of a value is 1 iff the *j*-th
irreducible lies below it.  For distributive lattices (the taint
lattice, linear orders, and their products/powersets — everything the
paper's policies use) the join is then plain bitwise OR, the order test
``t ≤ τ`` is bit-set inclusion, and each type variable of the two-point
taint lattice costs exactly one SAT variable.  Non-distributive lattices
are rejected at construction with a clear error.

SAT variable naming: branch variables are ``b<k>``; bit *j* of version
*i* of program variable *v* is ``t_<v>^<i>.<j>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ai.renaming import (
    Guard,
    IndexedVar,
    RenamedAssert,
    RenamedAssign,
    RenamedProgram,
    RenamedStop,
)
from repro.ir.commands import Const, Join, LevelConst
from repro.lattice import FiniteLattice, LatticeError
from repro.sat.cnf import CNF, VariablePool
from repro.sat.tseitin import (
    FALSE,
    TRUE,
    Expr,
    Var,
    add_expr_to_cnf,
    conj,
    disj,
    iff,
    ite,
)

__all__ = ["LatticeEncoding", "ConstraintGenerator", "EncodedAssertion", "bit_var_name"]


def bit_var_name(var: IndexedVar, bit: int) -> str:
    return f"t_{var.name}^{var.index}.{bit}"


class LatticeEncoding:
    """Bit-vector encoding of a finite distributive lattice."""

    def __init__(self, lattice: FiniteLattice) -> None:
        self.lattice = lattice
        self.irreducibles = self._join_irreducibles()
        self._bits: dict[object, frozenset[int]] = {}
        for element in lattice.elements:
            self._bits[element] = frozenset(
                j
                for j, irreducible in enumerate(self.irreducibles)
                if lattice.leq(irreducible, element)
            )
        self._check_distributive()

    @property
    def width(self) -> int:
        return len(self.irreducibles)

    def bits(self, element: object) -> frozenset[int]:
        self.lattice.check_member(element)
        return self._bits[element]

    def element_of_bits(self, bits: frozenset[int] | set[int]) -> object:
        """Decode a bit set back to the lattice element it represents."""
        return self.lattice.join_all(self.irreducibles[j] for j in bits)

    def _join_irreducibles(self) -> list[object]:
        """Elements that are not the join of the elements strictly below them."""
        lattice = self.lattice
        out = []
        for element in sorted(lattice.elements, key=repr):
            if element == lattice.bottom:
                continue
            below = [e for e in lattice.elements if lattice.lt(e, element)]
            if lattice.join_all(below) != element:
                out.append(element)
        return out

    def _check_distributive(self) -> None:
        """Bitwise-OR joins require bits(a ∨ b) = bits(a) ∪ bits(b)."""
        for a in self.lattice.elements:
            for b in self.lattice.elements:
                joined = self.lattice.join(a, b)
                if self._bits[joined] != self._bits[a] | self._bits[b]:
                    raise LatticeError(
                        "lattice is not distributive; the join-irreducible "
                        "bit encoding requires bits(a⊔b) = bits(a) ∪ bits(b) "
                        f"(failed for {a!r} ⊔ {b!r})"
                    )


@dataclass
class EncodedAssertion:
    """The boolean artifacts for one assertion."""

    event: RenamedAssert
    #: guard ∧ ¬(all-variables-safe): satisfiable iff the assertion can fail.
    violation: Expr
    #: guard ⇒ all-variables-safe: the constraint C(assert, g).
    holds: Expr
    #: Per variable: the expression "this variable violates" — used to
    #: identify violating variables from a model.
    per_var_violation: dict[IndexedVar, Expr]


class ConstraintGenerator:
    """Applies Figure 5 to a renamed program, emitting CNF incrementally.

    The generator owns a :class:`VariablePool` and a :class:`CNF`; the
    checker drives it event by event and hands the CNF to the SAT solver.
    """

    def __init__(self, program: RenamedProgram, encoding: LatticeEncoding) -> None:
        self.program = program
        self.encoding = encoding
        self.pool = VariablePool()
        self.cnf = CNF()
        self._initialized_version0: set[str] = set()
        # Reserve branch variables up front so trace reconstruction can
        # always read them from a model.
        for name in program.branch_variables:
            self.pool.named(name)

    # -- naming -------------------------------------------------------------

    def guard_expr(self, guard: Guard) -> Expr:
        literals: list[Expr] = []
        for lit in guard:
            var = Var(lit.variable)
            literals.append(var if lit.positive else ~var)
        return conj(literals)

    def bit_expr(self, var: IndexedVar, bit: int) -> Expr:
        if var.index == 0:
            self._ensure_initial(var.name)
        return Var(bit_var_name(var, bit))

    def _ensure_initial(self, name: str) -> None:
        """Initial condition I(s0): version 0 of every variable is ⊥."""
        if name in self._initialized_version0:
            return
        self._initialized_version0.add(name)
        for bit in range(self.encoding.width):
            v = self.pool.named(bit_var_name(IndexedVar(name, 0), bit))
            self.cnf.add_unit(-v)  # ⊥ has no irreducibles below it

    def type_expr_bit(self, expr, bit: int) -> Expr:
        """The boolean expression for one bit of a renamed type expression."""
        if isinstance(expr, Const):
            return FALSE  # t_n = ⊥
        if isinstance(expr, LevelConst):
            return TRUE if bit in self.encoding.bits(expr.level) else FALSE
        if isinstance(expr, IndexedVar):
            return self.bit_expr(expr, bit)
        if isinstance(expr, Join):
            return disj(self.type_expr_bit(op, bit) for op in expr.operands)
        raise TypeError(f"unknown renamed type expression {type(expr).__name__}")

    # -- per-event constraints ----------------------------------------------

    def assign_constraint(self, event: RenamedAssign) -> Expr:
        """``t_x^i = g ? ρ(t_e) : t_x^{i-1}`` bit by bit."""
        guard = self.guard_expr(event.guard)
        previous = IndexedVar(event.target.name, event.target.index - 1)
        parts: list[Expr] = []
        for bit in range(self.encoding.width):
            new_bit = self.type_expr_bit(event.expr, bit)
            old_bit = self.bit_expr(previous, bit)
            value = new_bit if guard is TRUE else ite(guard, new_bit, old_bit)
            parts.append(iff(self.bit_expr(event.target, bit), value))
        return conj(parts)

    def var_safe_expr(self, var: IndexedVar, required: object) -> Expr:
        """``t_var < required`` — strict order over the bit encoding."""
        required_bits = self.encoding.bits(required)
        leq = conj(
            ~self.bit_expr(var, bit)
            for bit in range(self.encoding.width)
            if bit not in required_bits
        )
        strict = disj(~self.bit_expr(var, bit) for bit in sorted(required_bits))
        return leq & strict if required_bits else FALSE

    def encode_assertion(self, event: RenamedAssert) -> EncodedAssertion:
        guard = self.guard_expr(event.guard)
        per_var: dict[IndexedVar, Expr] = {}
        safes: list[Expr] = []
        for var in event.variables:
            safe = self.var_safe_expr(var, event.required)
            per_var[var] = ~safe
            safes.append(safe)
        all_safe = conj(safes)
        violation = guard & ~all_safe if guard is not TRUE else ~all_safe
        holds = guard >> all_safe if guard is not TRUE else all_safe
        return EncodedAssertion(
            event=event, violation=violation, holds=holds, per_var_violation=per_var
        )

    # -- CNF emission ----------------------------------------------------------

    def add_assign(self, event: RenamedAssign) -> None:
        add_expr_to_cnf(self.assign_constraint(event), self.pool, self.cnf)

    def add_expr(self, expr: Expr) -> None:
        add_expr_to_cnf(expr, self.pool, self.cnf)

    def gate_for(self, expr: Expr) -> int:
        """Introduce a fresh gate literal equivalent to ``expr``."""
        from repro.sat.tseitin import _Tseitin  # shared transformer internals

        transformer = _Tseitin(self.pool, self.cnf)
        return transformer.literal(expr)

    def encode_all(self) -> list[EncodedAssertion]:
        """Encode every assignment constraint; return encoded assertions
        in program order (without adding their constraints to the CNF)."""
        encoded: list[EncodedAssertion] = []
        for event in self.program.events:
            if isinstance(event, RenamedAssign):
                self.add_assign(event)
            elif isinstance(event, RenamedAssert):
                encoded.append(self.encode_assertion(event))
            elif isinstance(event, RenamedStop):
                continue  # C(stop, g) := true
        return encoded

    # -- model decoding -----------------------------------------------------------

    def level_of(self, var: IndexedVar, model: dict[int, bool]) -> object:
        """Decode a variable's lattice level from a SAT model."""
        bits = set()
        for bit in range(self.encoding.width):
            name = bit_var_name(var, bit)
            if self.pool.has_name(name) and model.get(self.pool.var_of(name), False):
                bits.add(bit)
        return self.encoding.element_of_bits(bits)

    def branch_value(self, branch_variable: str, model: dict[int, bool]) -> bool:
        return model.get(self.pool.var_of(branch_variable), False)

    def formula_stats(self) -> tuple[int, int]:
        return self.cnf.num_vars, self.cnf.num_clauses
