"""The BMC engine: per-assertion checking with all-counterexample
enumeration — paper §3.3.2.

For each assertion (in program order) the checker builds

    B_i = C(prefix constraints) ∧ guard_i ∧ ¬ok_i

and hands it to the CDCL solver.  While satisfiable, the model's BN
values are traced through the AI to produce a counterexample; the
deciding BN literals are negated ("we generate the negation clause N_j
of BN"), restricting B_i, until UNSAT — at which point all
counterexamples for that assertion have been collected.

Implementation notes relative to the paper's text:

* One incremental solver instance serves the whole program: assignment
  constraints are added once, each assertion's ``guard ∧ violation`` is
  reified behind a fresh gate literal and activated via an assumption,
  and blocking clauses carry ``¬gate`` so they only constrain that
  assertion's enumeration.
* Blocking clauses negate only the *deciding* branch literals of the
  trace rather than all of BN.  Negating all of BN (the literal reading
  of the paper) enumerates the same distinct paths multiple times — once
  per assignment of branch variables that the path never consults.
* The paper says the checked assertion's constraint ``C(assert_i, g)``
  is conjoined before moving on.  Doing that for a *violated* assertion
  contradicts the assignment constraints (e.g. Figure 7: t_sid is
  unconditionally ⊤, so ``t_iq < ⊤`` is unsatisfiable) and would silence
  every later assertion in the file.  The default policy therefore adds
  the constraint only when the assertion produced no counterexamples
  (where it is implied and acts as a solver lemma); ``accumulate="always"``
  reproduces the literal reading, and the ABL-ENC benchmark shows how it
  degenerates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal

from repro.ai.renaming import RenamedAssert, RenamedProgram
from repro.bmc.encoder import ConstraintGenerator, EncodedAssertion, LatticeEncoding
from repro.lattice import FiniteLattice, two_point_lattice
from repro.obs import get_tracer
from repro.obs.ledger import SlowQueryLedger
from repro.bmc.trace import CounterexampleTrace, ViolatingVariable, reconstruct_trace
from repro.sat.cache import CachingSatSolver, SatQueryCache
from repro.sat.dpll import IncrementalDPLL
from repro.sat.portfolio import PortfolioSolver
from repro.sat.solver import CDCLSolver, SolverStats, accumulate_stats

__all__ = ["AssertionResult", "BMCResult", "BMCChecker", "check_program"]

AccumulatePolicy = Literal["never", "safe-only", "always"]
SolverBackend = Literal["cdcl", "dpll", "portfolio"]


@dataclass
class AssertionResult:
    """Verification outcome for one assertion."""

    event: RenamedAssert
    counterexamples: list[CounterexampleTrace] = field(default_factory=list)
    #: True when enumeration hit max_counterexamples before UNSAT.
    truncated: bool = False

    @property
    def safe(self) -> bool:
        return not self.counterexamples

    @property
    def assert_id(self) -> int:
        return self.event.assert_id


@dataclass
class BMCResult:
    """Verification outcome for a whole program."""

    assertions: list[AssertionResult]
    num_vars: int
    num_clauses: int
    solve_seconds: float
    #: The policy lattice the check ran over (used by grouping).
    lattice: FiniteLattice | None = None
    #: Which SAT backend produced the verdicts ("cdcl" or "dpll").
    solver_backend: str = "cdcl"
    #: SolverStats counters aggregated over every solve call of the run.
    solver_stats: dict[str, int] = field(default_factory=dict)
    #: Total solve() invocations (>= one per assertion, plus one per
    #: enumerated counterexample).
    num_solve_calls: int = 0
    #: Top-K hardest SAT queries of the run (ledger record dicts, most
    #: expensive first; see :mod:`repro.obs.ledger` for the schema).
    slow_queries: list[dict] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return all(result.safe for result in self.assertions)

    @property
    def violated(self) -> list[AssertionResult]:
        return [r for r in self.assertions if not r.safe]

    def all_counterexamples(self) -> list[CounterexampleTrace]:
        out: list[CounterexampleTrace] = []
        for result in self.assertions:
            out.extend(result.counterexamples)
        return out


class BMCChecker:
    """Drives encoding + solving for one renamed program."""

    def __init__(
        self,
        program: RenamedProgram,
        lattice: FiniteLattice | None = None,
        accumulate: AccumulatePolicy = "safe-only",
        max_counterexamples: int = 256,
        blocking: Literal["deciding", "all-bn"] = "deciding",
        solver_backend: SolverBackend = "cdcl",
        sat_cache: SatQueryCache | None = None,
        restart_strategy: str = "geometric",
        sat_seed: int = 0,
        sat_incremental: bool = True,
    ) -> None:
        self.program = program
        self.lattice = lattice if lattice is not None else two_point_lattice()
        self.encoding = LatticeEncoding(self.lattice)
        self.accumulate = accumulate
        self.max_counterexamples = max_counterexamples
        #: "deciding" negates only the branch literals the violation
        #: consults (one counterexample per semantically distinct path);
        #: "all-bn" negates every BN variable — the paper's literal
        #: formulation, which re-enumerates each path once per assignment
        #: of the irrelevant variables.  Kept for the ABL-ENUM ablation.
        self.blocking = blocking
        if solver_backend not in ("cdcl", "dpll", "portfolio"):
            raise ValueError(f"unknown solver backend {solver_backend!r}")
        self.solver_backend = solver_backend
        #: CDCL tuning knobs threaded from the CLI; ``restart_strategy``
        #: picks the restart schedule and ``sat_seed`` perturbs VSIDS
        #: tie-breaks / initial phases (0 = historical deterministic
        #: defaults).  In portfolio mode they configure the primary lane.
        self.restart_strategy = restart_strategy
        self.sat_seed = sat_seed
        #: Ablation switch: False restores the pre-incremental CDCL
        #: behaviour (backtrack-to-root between solves, linear VSIDS
        #: scan, no learned-clause sharing through the query cache) so
        #: benchmarks can measure the incremental machinery against an
        #: in-process seed-equivalent baseline.
        self.sat_incremental = sat_incremental
        #: Shared SAT-level query memo (repro.sat.cache); None disables.
        self.sat_cache = sat_cache
        self._solver_totals: dict[str, int] = {}
        self._num_solve_calls = 0
        #: Hardest queries of this check; capacity stays small because the
        #: engine merges one ledger per file into the run-wide top-K.
        self._ledger = SlowQueryLedger(capacity=8)

    def _make_solver(
        self,
    ) -> CDCLSolver | IncrementalDPLL | PortfolioSolver | CachingSatSolver:
        inner: CDCLSolver | IncrementalDPLL | PortfolioSolver
        if self.solver_backend == "dpll":
            inner = IncrementalDPLL()
        elif self.solver_backend == "portfolio":
            inner = PortfolioSolver(
                restart_strategy=self.restart_strategy, seed=self.sat_seed
            )
        else:
            inner = CDCLSolver(
                restart_strategy=self.restart_strategy,
                seed=self.sat_seed,
                incremental=self.sat_incremental,
            )
        if self.sat_cache is not None:
            return CachingSatSolver(
                inner,
                self.sat_cache,
                backend=self.solver_backend,
                share_learned=self.sat_incremental,
            )
        return inner

    def _tally_solve(self, stats: SolverStats) -> None:
        self._num_solve_calls += 1
        # Aggregation rules (sum vs max) come from SolverStats field
        # metadata, so new counters flow into the totals automatically.
        accumulate_stats(self._solver_totals, stats)

    def run(self) -> BMCResult:
        start = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("bmc.encode") as encode_span:
            generator = ConstraintGenerator(self.program, self.encoding)
            encoded_assertions = generator.encode_all()
            solver = self._make_solver()
            solver.add_formula(generator.cnf)
            encode_span.set(
                assertions=len(encoded_assertions),
                clauses=generator.cnf.num_clauses,
                vars=generator.cnf.num_vars,
            )
        emitted_clauses = generator.cnf.num_clauses

        def sync_new_clauses() -> int:
            nonlocal emitted_clauses
            for clause in generator.cnf.clauses[emitted_clauses:]:
                solver.add_clause(clause)
            emitted_clauses = generator.cnf.num_clauses
            return emitted_clauses

        results: list[AssertionResult] = []
        for encoded in encoded_assertions:
            results.append(
                self._check_one(encoded, generator, solver, sync_new_clauses)
            )

        num_vars, num_clauses = generator.formula_stats()
        return BMCResult(
            assertions=results,
            num_vars=num_vars,
            num_clauses=num_clauses,
            solve_seconds=time.perf_counter() - start,
            lattice=self.lattice,
            solver_backend=self.solver_backend,
            solver_stats=dict(self._solver_totals),
            num_solve_calls=self._num_solve_calls,
            slow_queries=self._ledger.records(),
        )

    def _check_one(
        self,
        encoded: EncodedAssertion,
        generator: ConstraintGenerator,
        solver,
        sync_new_clauses,
    ) -> AssertionResult:
        tracer = get_tracer()
        result = AssertionResult(event=encoded.event)
        gate = generator.gate_for(encoded.violation)
        sync_new_clauses()
        # A free activation literal decouples this assertion's enumeration
        # from the rest of the formula: ``act → violation`` (one
        # direction only).  Once every violating path is blocked, the
        # accumulated blocking clauses simply force ¬act — they must not
        # force the violation itself false, which the (bidirectional)
        # Tseitin gate would do and thereby silence later assertions.
        act = generator.pool.fresh()
        solver.add_clause((-act, gate))

        with tracer.span(
            "bmc.assertion", assert_id=encoded.event.assert_id
        ) as assertion_span:
            self._enumerate(encoded, generator, solver, act, result, tracer)
            assertion_span.set(
                counterexamples=len(result.counterexamples),
                safe=result.safe,
                truncated=result.truncated,
            )

        if result.counterexamples:
            # The assertion's enumeration is over and ``act`` will never
            # be assumed again: retire the gate permanently.  Fixing
            # ``¬act`` at root level makes the gate implication and every
            # blocking clause of this enumeration root-satisfied, which
            # schedules the incremental solver's lazy dead-clause sweep.
            # (A safe assertion accumulated no blocking clauses — nothing
            # to reclaim, so skip the unit and the sweep it would cause.)
            solver.add_clause((-act,))

        if self.accumulate == "always" or (
            self.accumulate == "safe-only" and result.safe
        ):
            generator.add_expr(encoded.holds)
            sync_new_clauses()
        return result

    def _enumerate(
        self,
        encoded: EncodedAssertion,
        generator: ConstraintGenerator,
        solver,
        act: int,
        result: AssertionResult,
        tracer,
    ) -> None:
        """The all-counterexamples loop for one assertion (paper §3.3.2)."""
        iteration = 0
        while True:
            with tracer.span("sat.solve", iteration=iteration) as solve_span:
                solve_start = time.perf_counter()
                solve = solver.solve(assumptions=[act])
                solve_seconds = time.perf_counter() - solve_start
            stats = solve.stats
            winner = getattr(solver, "last_winner", None)
            record = {
                "seconds": solve_seconds,
                "assert_id": encoded.event.assert_id,
                "iteration": iteration,
                "decisions": stats.decisions,
                "conflicts": stats.conflicts,
                "satisfiable": bool(solve.satisfiable),
                "backend": self.solver_backend,
                "fingerprint": getattr(solver, "last_query_key", None),
            }
            if winner is not None:
                # Portfolio mode: name the configuration that decided the
                # query, so ledger entries attribute hard solves per-lane.
                record["winner"] = winner
            self._ledger.observe(record)
            iteration += 1
            solve_span.set(
                satisfiable=solve.satisfiable,
                decisions=stats.decisions,
                propagations=stats.propagations,
                conflicts=stats.conflicts,
                learned_clauses=stats.learned_clauses,
                restarts=stats.restarts,
                max_decision_level=stats.max_decision_level,
                sat_cache_hit=stats.cache_hits > 0,
            )
            self._tally_solve(stats)
            if stats.portfolio_races and winner is not None:
                # Dynamic per-winner counters ride the same solver_stats
                # dict as the dataclass counters, so they flow into the
                # JSONL records, metrics, and reports unchanged.
                key = "portfolio_win_" + winner.replace("-", "_")
                self._solver_totals[key] = self._solver_totals.get(key, 0) + 1
            if not solve.satisfiable:
                break
            model = solve.model
            branch_values = {
                name: generator.branch_value(name, model)
                for name in self.program.branch_variables
            }
            violating = [
                ViolatingVariable(var, generator.level_of(var, model))
                for var, violation_expr in encoded.per_var_violation.items()
                if not self.lattice.lt(
                    generator.level_of(var, model), encoded.event.required
                )
            ]
            trace = reconstruct_trace(
                self.program, encoded.event, branch_values, violating
            )
            result.counterexamples.append(trace)
            if len(result.counterexamples) >= self.max_counterexamples:
                result.truncated = True
                break
            if self.blocking == "all-bn":
                negated = trace.branch_assignment  # every BN variable
            else:
                negated = trace.deciding_branches
            if not negated:
                break  # single possible path; enumeration is complete
            # Negation clause N_j over the chosen BN literals, scoped to
            # this assertion's activation literal.
            blocking = [-act]
            for name, value in negated.items():
                var = generator.pool.var_of(name)
                blocking.append(-var if value else var)
            solver.add_clause(blocking)


def check_program(
    program: RenamedProgram,
    lattice: FiniteLattice | None = None,
    accumulate: AccumulatePolicy = "safe-only",
    max_counterexamples: int = 256,
    blocking: Literal["deciding", "all-bn"] = "deciding",
    solver_backend: SolverBackend = "cdcl",
    sat_cache: SatQueryCache | None = None,
    restart_strategy: str = "geometric",
    sat_seed: int = 0,
    sat_incremental: bool = True,
) -> BMCResult:
    """Convenience wrapper: check every assertion of a renamed program."""
    checker = BMCChecker(
        program,
        lattice=lattice,
        accumulate=accumulate,
        max_counterexamples=max_counterexamples,
        blocking=blocking,
        solver_backend=solver_backend,
        sat_cache=sat_cache,
        restart_strategy=restart_strategy,
        sat_seed=sat_seed,
        sat_incremental=sat_incremental,
    )
    return checker.run()
