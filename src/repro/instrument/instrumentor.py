"""The instrumentor: splicing runtime guards into PHP source.

Two strategies, matching the paper's comparison:

* :func:`instrument_ts` — the TS strategy: every violating sink argument
  is sanitized at the *call site* (symptom).  One guard per reported
  violation.
* :func:`instrument_bmc` — the BMC strategy: each error *group*'s fixing
  variable is sanitized where its offending value is introduced (cause).
  One guard per group — the 41.0% reduction of the paper's headline.

Both operate as pure text edits against the original source, so the
output remains runnable PHP (and re-analyzable: verifying an
instrumented file reports it safe, which the tests check).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.grouping import GroupingResult
from repro.instrument.guards import GUARD_FUNCTION_NAME
from repro.php.span import Span
from repro.typestate.ts import TSReport

__all__ = ["InstrumentationResult", "instrument_ts", "instrument_bmc"]


@dataclass
class InstrumentationResult:
    """Patched source plus accounting."""

    source: str
    #: Number of guards in the paper's accounting: violations for TS,
    #: groups (fixing variables) for BMC.
    num_guards: int
    #: Number of physical text edits actually applied.
    num_edits: int
    notes: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class _Edit:
    offset: int
    #: 'insert' places text at offset; 'wrap' wraps [offset, end).
    kind: str
    text: str
    end: int = 0

    def sort_key(self) -> tuple[int, int]:
        return (self.offset, 0 if self.kind == "wrap" else 1)


def _apply_edits(source: str, edits: list[_Edit]) -> str:
    seen: set[tuple] = set()
    unique: list[_Edit] = []
    for edit in edits:
        key = (edit.kind, edit.offset, edit.end, edit.text)
        if key not in seen:
            seen.add(key)
            unique.append(edit)
    for edit in sorted(unique, key=_Edit.sort_key, reverse=True):
        if edit.kind == "insert":
            source = source[: edit.offset] + edit.text + source[edit.offset :]
        else:
            original = source[edit.offset : edit.end]
            source = (
                source[: edit.offset]
                + f"{GUARD_FUNCTION_NAME}({original})"
                + source[edit.end :]
            )
    return source


def _statement_end(source: str, span: Span) -> int:
    """Offset just after the statement at ``span`` ends.

    Normally the next ``;``.  When a ``{`` appears first, the span sits
    in the condition of a compound statement (``while ($row = ...) {``),
    and the insertion point is the start of that body so the guard runs
    each iteration, right after the assignment.
    """
    semicolon = source.find(";", span.end.offset)
    brace = source.find("{", span.end.offset)
    if semicolon == -1 and brace == -1:
        return len(source)
    if semicolon == -1:
        return brace + 1
    if brace != -1 and brace < semicolon:
        return brace + 1
    return semicolon + 1


def _statement_start(source: str, span: Span) -> int:
    """Offset just before the statement containing ``span`` begins.

    Scans backwards for the nearest statement boundary (``;``, ``{``,
    ``}``, or the ``<?php`` tag) so a guard inserted here runs after any
    earlier statements on the same line.  (A ``;`` inside a string
    literal of the *previous* statement could fool the scan; the corpus
    generator avoids that shape.)
    """
    boundary = max(
        source.rfind(";", 0, span.start.offset),
        source.rfind("{", 0, span.start.offset),
        source.rfind("}", 0, span.start.offset),
    )
    tag = source.rfind("<?php", 0, span.start.offset)
    if tag != -1:
        boundary = max(boundary, tag + len("<?php") - 1)
    return boundary + 1


def _guard_statement(target_text: str) -> str:
    return f" {target_text} = {GUARD_FUNCTION_NAME}({target_text});"


_LVALUE_RE = __import__("re").compile(
    r"^\$[A-Za-z_][A-Za-z0-9_]*(->[A-Za-z_][A-Za-z0-9_]*|\[[^\[\]]*\])*$"
)


def _assignment_target_text(source: str, span: Span) -> str | None:
    """The textual left-hand side of the assignment at ``span``.

    The introduction span of an error group covers an assignment like
    ``$this->title = $t`` or ``$sid = $_GET['sid']``; re-sanitizing that
    exact textual target in place is scope-correct even inside unfolded
    functions and methods, where the IR name (``p->title``,
    ``page@1::t``) would not be.
    """
    text = source[span.start.offset : span.end.offset]
    depth = 0
    for index, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "=" and depth == 0:
            if index + 1 < len(text) and text[index + 1] == "=":
                return None
            if index > 0 and text[index - 1] in "!<>+-*/.%&|^":
                return None
            candidate = text[:index].strip()
            return candidate if _LVALUE_RE.match(candidate) else None
    return None


def collect_ts_edits(
    source: str, report: TSReport, filename: str = "<string>"
) -> tuple[list[_Edit], list[str]]:
    """The text edits the TS strategy wants in ``filename`` (not applied)."""
    edits: list[_Edit] = []
    notes: list[str] = []
    for violation in report.violations:
        if violation.span.filename != filename:
            continue
        php_name = violation.php_name
        if violation.arg_span is not None and (
            php_name is None or "->" in violation.variable
        ):
            # Hoisted expressions and receiver-qualified names (whose
            # local spelling differs from the IR name) are sanitized by
            # wrapping the argument text in place.
            edits.append(
                _Edit(
                    offset=violation.arg_span.start.offset,
                    kind="wrap",
                    text="",
                    end=violation.arg_span.end.offset,
                )
            )
        elif php_name is not None:
            edits.append(
                _Edit(
                    offset=_statement_start(source, violation.span),
                    kind="insert",
                    text=_guard_statement(f"${php_name}"),
                )
            )
        else:
            notes.append(f"no patch point for {violation}")
    return edits, notes


def instrument_ts(source: str, report: TSReport, filename: str = "<string>") -> InstrumentationResult:
    """Symptom-site guards: sanitize each violating argument at its sink.

    A violation on a real variable inserts ``$v = sanitize($v);`` on the
    line before the sink call; a violation on a hoisted expression wraps
    the original argument text in the guard call.
    """
    edits, notes = collect_ts_edits(source, report, filename)
    patched = _apply_edits(source, edits)
    return InstrumentationResult(
        source=patched,
        num_guards=report.num_violations,
        num_edits=len(edits),
        notes=notes,
    )


def collect_bmc_edits(
    source: str, grouping: GroupingResult, filename: str = "<string>"
) -> tuple[list[_Edit], list[str]]:
    """The text edits the BMC strategy wants in ``filename`` (not applied)."""
    edits: list[_Edit] = []
    notes: list[str] = []
    for group in grouping.groups:
        spans = [s for s in group.introduction_spans if s.filename == filename]
        spans_elsewhere = [
            s for s in group.introduction_spans if s.filename != filename
        ]
        patched = False
        for span in spans:
            # Prefer the textual assignment target at the introduction
            # point — scope-correct even inside unfolded methods where
            # the IR name differs from the local spelling.
            target = _assignment_target_text(source, span)
            if target is None and group.php_name is not None and "->" not in group.fix_variable:
                target = f"${group.php_name}"
            if target is not None:
                edits.append(
                    _Edit(
                        offset=_statement_end(source, span),
                        kind="insert",
                        text=_guard_statement(target),
                    )
                )
                patched = True
        if not patched and not spans_elsewhere:
            # Hoisted expression (or no usable introduction text) and no
            # other file owns the introduction: wrap the sink argument
            # text of each trace in this file.
            for trace in group.traces:
                for span in _sink_arg_spans(trace, filename):
                    edits.append(
                        _Edit(offset=span.start.offset, kind="wrap", text="", end=span.end.offset)
                    )
                    patched = True
        if not patched and not spans_elsewhere:
            notes.append(f"no patch point for group {group.fix_variable} in {filename}")
    return edits, notes


def instrument_bmc(
    source: str, grouping: GroupingResult, filename: str = "<string>"
) -> InstrumentationResult:
    """Cause-site guards: sanitize each group's fixing variable where the
    offending value is introduced."""
    edits, notes = collect_bmc_edits(source, grouping, filename)
    patched = _apply_edits(source, edits)
    return InstrumentationResult(
        source=patched,
        num_guards=grouping.num_groups,
        num_edits=len(edits),
        notes=notes,
    )


def apply_edits(source: str, edits: list[_Edit]) -> str:
    """Apply (deduplicated) edits collected by the ``collect_*`` helpers."""
    return _apply_edits(source, edits)


def _sink_arg_spans(trace, filename: str) -> list[Span]:
    """Best-effort argument spans for a trace's sink: the defining spans
    of the temp assignments feeding the violating variables."""
    spans = []
    violating_names = trace.violating_names
    for step in trace.steps:
        if step.target.name in violating_names and step.span.filename == filename:
            spans.append(step.span)
    return spans
