"""Automatic patching: runtime guards and the source instrumentor (paper §4)."""

from repro.instrument.guards import (
    GUARD_FUNCTION_NAME,
    GUARD_PHP_SOURCE,
    html_escape,
    sanitize_value,
    sql_escape,
)
from repro.instrument.instrumentor import (
    InstrumentationResult,
    instrument_bmc,
    instrument_ts,
)

__all__ = [
    "GUARD_FUNCTION_NAME",
    "GUARD_PHP_SOURCE",
    "html_escape",
    "sanitize_value",
    "sql_escape",
    "InstrumentationResult",
    "instrument_bmc",
    "instrument_ts",
]
