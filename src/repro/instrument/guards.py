"""Runtime guards: the sanitization routine WebSSARI inserts.

WebSSARI "inserts a statement that secures the variable by treating it
with a sanitization routine.  Sanitization routines are stored in a
prelude, and users can supply their own routines" (paper §4).  This
module provides the default routine in two forms:

* :data:`GUARD_PHP_SOURCE` — a PHP definition of ``__webssari_sanitize``
  that instrumented files can carry for portability, and
* :func:`sanitize_value` — the Python implementation the mini
  interpreter binds to the same name.

The default routine neutralizes both vulnerability classes the paper's
experiments target: HTML metacharacters are entity-escaped (XSS) and
quotes/backslashes are backslash-escaped (SQL injection).
"""

from __future__ import annotations

__all__ = ["GUARD_FUNCTION_NAME", "GUARD_PHP_SOURCE", "sanitize_value", "html_escape", "sql_escape"]

GUARD_FUNCTION_NAME = "__webssari_sanitize"

GUARD_PHP_SOURCE = """function __webssari_sanitize($value) {
  $value = htmlspecialchars($value);
  $value = addslashes($value);
  return $value;
}
"""

_HTML_REPLACEMENTS = (
    ("&", "&amp;"),
    ("<", "&lt;"),
    (">", "&gt;"),
    ('"', "&quot;"),
    ("'", "&#039;"),
)


def html_escape(value: str) -> str:
    """PHP ``htmlspecialchars`` with ENT_QUOTES semantics."""
    for raw, escaped in _HTML_REPLACEMENTS:
        value = value.replace(raw, escaped)
    return value


def sql_escape(value: str) -> str:
    """PHP ``addslashes``: backslash-escape quotes, backslashes, NULs."""
    out = []
    for ch in value:
        if ch in ("'", '"', "\\"):
            out.append("\\" + ch)
        elif ch == "\0":
            out.append("\\0")
        else:
            out.append(ch)
    return "".join(out)


def sanitize_value(value: object) -> object:
    """The default runtime guard: escape HTML and SQL metacharacters.

    Non-string values pass through unchanged — they cannot carry script
    or SQL fragments in our value model.
    """
    if isinstance(value, str):
        return sql_escape(html_escape(value))
    return value
