"""The re-audit loop: poll → dirty set → engine → per-cycle JSONL.

One :class:`WatchLoop` owns a :class:`~repro.daemon.watcher.TreeWatcher`
and a long-lived verifier + cache pair.  Each cycle:

1. :meth:`TreeWatcher.poll` classifies changes; nothing dirty → the
   cycle is free (no engine run, no JSONL file).
2. Dirty files go through the ordinary
   :class:`~repro.engine.AuditEngine` — same per-file timeouts, crash
   isolation, and content-addressed caching as ``repro audit``.  With a
   :class:`~repro.engine.HotResultCache` the unchanged 99% of a tree
   never even touches the disk cache after the first cycle.
3. The cycle's JSONL stream merges the fresh outcomes with the last
   known record of every unchanged file (deleted files drop out), so
   ``repro report --diff cycle-A.jsonl cycle-B.jsonl`` between *any* two
   cycles shows exactly the verdict movement in between.

Include-aware invalidation: with an
:class:`~repro.php.parsecache.IncludeGraph` attached, each cycle scans
its dirty files' include closures, updates the graph, and adds every
transitive *includer* of a dirty (or deleted) file to the audit set —
editing a shared library re-verifies exactly the entries that splice it
instead of silently leaving them stale.  Files are audited as project
entries (their closure travels with the task), so cache keys scope to
what each entry can actually read.

Graceful shutdown: ``stop_event`` doubles as the engine's
``drain_event`` — a SIGINT/SIGTERM mid-cycle lets in-flight files
finish, marks undispatched ones ``skipped``, and the cycle trailer
carries ``interrupted: true``.  Caches need no explicit flush (both the
result cache and the SAT cache write through on every put; the include
graph snapshot is saved at the end of each dirty cycle).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.daemon.watcher import TreeWatcher
from repro.engine import AuditEngine, AuditTask, EngineConfig, EngineResult, JsonlSink
from repro.engine.cache import ResultCache
from repro.engine.worker import project_content_digest
from repro.obs import MetricsRegistry
from repro.php.errors import IncludeError
from repro.php.includes import SourceProject, scan_includes
from repro.php.parsecache import IncludeGraph

__all__ = ["CycleResult", "WatchLoop"]


class _TreeProject(SourceProject):
    """Lazy disk-backed project over the watcher's current snapshot.

    Maps normalized tree-relative paths to absolute ones and reads file
    text on first access only — a cycle that audits two entries reads
    two closures, not the whole tree.  Read races (file vanished since
    the poll) surface as ``OSError`` from :meth:`source`, handled per
    entry by the caller.
    """

    def __init__(self, abs_by_rel: dict[str, str]) -> None:
        super().__init__()
        self._abs_by_rel = abs_by_rel

    def has(self, path: str) -> bool:
        return self.normalize(path) in self._abs_by_rel

    def source(self, path: str) -> str:
        normalized = self.normalize(path)
        if normalized not in self._files and normalized in self._abs_by_rel:
            self._files[normalized] = Path(self._abs_by_rel[normalized]).read_text()
        return self._files[normalized]

    def paths(self) -> list[str]:
        return sorted(self._abs_by_rel)

    def __len__(self) -> int:
        return len(self._abs_by_rel)


@dataclass
class CycleResult:
    """What one non-idle cycle did."""

    number: int
    dirty: list[str]
    deleted: list[str]
    result: EngineResult
    #: The cycle's JSONL stream (None when no out_dir is configured).
    stream_path: Path | None
    interrupted: bool
    #: Files audited only because the include graph named them as
    #: transitive includers of something dirty (subset of ``dirty``).
    invalidated: list[str] = field(default_factory=list)


class WatchLoop:
    """Re-audit a tree forever (or cycle by cycle, under a test driver)."""

    def __init__(
        self,
        root: str | Path,
        websari,
        *,
        cache: ResultCache | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        start_method: str | None = None,
        interval: float = 2.0,
        debounce: float = 0.5,
        out_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
        stop_event: threading.Event | None = None,
        clock=time.time,
        pattern: str = "*.php",
        quiet: bool = True,
        stream=None,
        include_graph: IncludeGraph | None = None,
    ) -> None:
        self.watcher = TreeWatcher(root, pattern=pattern, debounce=debounce, clock=clock)
        self.websari = websari
        self.cache = cache
        #: Persisted includer→included edges; None disables reverse-graph
        #: invalidation (dirty set stays per-file).
        self.include_graph = include_graph
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.start_method = start_method
        self.interval = interval
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.metrics = metrics
        self.stop_event = stop_event if stop_event is not None else threading.Event()
        self.quiet = quiet
        self.stream = stream if stream is not None else sys.stderr
        #: Completed (non-idle) cycles; cycle JSONL files are numbered by it.
        self.cycles = 0
        #: Total polls, idle ones included.
        self.polls = 0
        self.last_dirty = 0
        self.last_cycle_seconds = 0.0
        #: Includers pulled in by the graph in the last cycle / in total.
        self.last_invalidated = 0
        self.includers_invalidated = 0
        #: Last known JSON record per live path (feeds every cycle stream).
        self._records: dict[str, dict] = {}

    # -- path mapping -------------------------------------------------------

    def _rel(self, path: str) -> str:
        """Watcher (absolute-ish) path → normalized tree-relative path —
        the namespace the include graph and task entries live in."""
        return SourceProject.normalize(os.path.relpath(path, str(self.watcher.root)))

    def _abs(self, rel: str) -> str:
        """Inverse of :meth:`_rel` (matches the watcher's path spelling)."""
        return str(Path(self.watcher.root) / rel)

    # -- one cycle ----------------------------------------------------------

    def run_cycle(self) -> CycleResult | None:
        """Poll once; audit and emit a stream if anything changed.

        Returns None for an idle poll.  Drives everything through
        injectable clocks, so tests step cycles without real sleeps.
        """
        self.polls += 1
        delta = self.watcher.poll()
        if self.metrics is not None:
            self.metrics.counter(
                "repro_watch_polls_total", "tree polls by outcome"
            ).inc(outcome="dirty" if delta else "idle")
            self.metrics.gauge(
                "repro_watch_tracked_files", "files in the current snapshot"
            ).set(self.watcher.tracked)
        if not delta:
            return None

        for path in delta.gone:
            self._records.pop(path, None)

        # Reverse-graph invalidation: every tracked file that transitively
        # includes something dirty (or deleted) must re-audit too — its
        # spliced program changed even though its own bytes did not.
        tracked = set(self.watcher.paths())
        invalidated: list[str] = []
        if self.include_graph is not None:
            changed_rel = {self._rel(p) for p in delta.dirty + delta.gone}
            for rel in sorted(self.include_graph.includers_of(changed_rel)):
                includer = self._abs(rel)
                if includer in tracked and includer not in delta.dirty:
                    invalidated.append(includer)
            for path in delta.gone:
                self.include_graph.remove_file(self._rel(path))
        dirty = sorted(set(delta.dirty) | set(invalidated))

        project = _TreeProject({self._rel(path): path for path in sorted(tracked)})
        parse_cache = getattr(self.websari, "parse_cache", None)
        do_parse = parse_cache.parse if parse_cache is not None else None
        closure_keys = getattr(self.websari, "closure_keys", True)
        whole_tree: dict[str, str] | None = None
        whole_digest: str | None = None

        tasks: list[AuditTask] = []
        for path in dirty:
            entry = self._rel(path)
            try:
                scan = scan_includes(project, entry, parse_hook=do_parse)
                standalone = (
                    scan.closure == {entry}
                    and not scan.missing
                    and not scan.unresolved
                )
                if closure_keys and standalone:
                    # No include machinery in play: a plain content-keyed
                    # task, sharing cache entries with `repro audit` of
                    # the same tree.  (An unparsable entry lands here too
                    # — its verdict depends only on its own bytes.)
                    task = AuditTask(
                        index=len(tasks),
                        filename=path,
                        source=project.source(entry),
                    )
                elif closure_keys and not scan.widened:
                    files = {p: project.source(p) for p in sorted(scan.closure)}
                    task = AuditTask(
                        index=len(tasks), filename=path, project_files=files, entry=entry
                    )
                else:
                    # Whole-tree fallback: closure keying off, or the scan
                    # could not bound this entry's dependencies.  The tree
                    # snapshot and its digest are computed once per cycle.
                    if whole_tree is None:
                        whole_tree = {p: project.source(p) for p in project.paths()}
                        whole_digest = project_content_digest(whole_tree)
                    task = AuditTask(
                        index=len(tasks),
                        filename=path,
                        project_files=whole_tree,
                        entry=entry,
                        closure_widened=scan.widened,
                        project_digest=whole_digest if closure_keys else None,
                    )
            except (OSError, IncludeError) as exc:
                # Raced away between poll and read; it will be reported
                # deleted next poll.  Drop any stale record now.
                self._records.pop(path, None)
                self._say(f"watch: {path}: {exc} (skipping this cycle)")
                continue
            tasks.append(task)
            if self.include_graph is not None:
                for scanned, targets in scan.includes_by_file.items():
                    self.include_graph.update_file(
                        scanned, targets, scan.digests.get(scanned)
                    )
        if self.include_graph is not None:
            self.include_graph.save()

        self.cycles += 1
        # The engine writes into a fresh per-cycle registry that is folded
        # into the long-lived daemon registry afterwards — the exact
        # snapshot/merge path fleet aggregation uses, so daemon metrics and
        # coordinator metrics accumulate identically.  Watch-level
        # counters/gauges below still hit self.metrics directly (live).
        cycle_metrics = MetricsRegistry() if self.metrics is not None else None
        config = EngineConfig(
            jobs=self.jobs,
            timeout=self.timeout,
            start_method=self.start_method,
            cache=self.cache,
            metrics=cycle_metrics,
            drain_event=self.stop_event,
        )
        result = AuditEngine(websari=self.websari, config=config).run(tasks)
        if self.metrics is not None and cycle_metrics is not None:
            self.metrics.merge_snapshot(cycle_metrics.snapshot())
        skipped = [o for o in result.outcomes if o.status == "skipped"]
        interrupted = bool(skipped) or self.stop_event.is_set()
        for outcome in result.outcomes:
            if outcome.status == "skipped":
                continue  # keep the last known record, if any
            self._records[outcome.filename] = outcome.to_record()

        stream_path = self._write_stream(result, interrupted, invalidated)
        self.last_dirty = len(dirty)
        self.last_cycle_seconds = result.stats.wall_seconds
        self.last_invalidated = len(invalidated)
        self.includers_invalidated += len(invalidated)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_watch_cycles_total", "completed re-audit cycles"
            ).inc()
            self.metrics.gauge(
                "repro_watch_dirty_files", "dirty files in the last cycle"
            ).set(len(dirty))
            self.metrics.gauge(
                "repro_watch_cycle_seconds", "engine wall seconds of the last cycle"
            ).set(result.stats.wall_seconds)
            if invalidated:
                self.metrics.counter(
                    "repro_watch_includers_invalidated_total",
                    "files re-audited because they include a dirty file",
                ).inc(len(invalidated))
        stats = result.stats
        self._say(
            f"watch: cycle {self.cycles}: {len(dirty)} dirty"
            + (f" ({len(invalidated)} via includes)" if invalidated else "")
            + f", {len(delta.gone)} gone; {stats.safe} safe, "
            f"{stats.vulnerable} vulnerable, {stats.failed} failed "
            f"({stats.cache_hits} cached)"
            + (" [interrupted]" if interrupted else "")
        )
        return CycleResult(
            number=self.cycles,
            dirty=dirty,
            deleted=delta.gone,
            result=result,
            stream_path=stream_path,
            interrupted=interrupted,
            invalidated=invalidated,
        )

    def _write_stream(
        self, result: EngineResult, interrupted: bool, invalidated: list[str]
    ) -> Path | None:
        """One merged JSONL per cycle: fresh records for dirty files plus
        carried-over records for everything unchanged, then the engine
        trailer — the same shape ``repro audit --jsonl`` writes, so
        ``repro report`` (and ``--diff``) consume cycles directly."""
        if self.out_dir is None:
            return None
        path = self.out_dir / f"cycle-{self.cycles:06d}.jsonl"
        with JsonlSink(path) as sink:
            for filename in sorted(self._records):
                sink.write_file(self._records[filename])
            trailer = result.stats.as_dict()
            trailer["cycle"] = self.cycles
            trailer["watched_files"] = self.watcher.tracked
            if invalidated:
                trailer["includers_invalidated"] = len(invalidated)
            if interrupted:
                trailer["interrupted"] = True
            sink.write_stats(trailer)
        return path

    # -- the daemon ---------------------------------------------------------

    def run_forever(self) -> int:
        """Cycle until ``stop_event`` is set; always exits 0 on a drain."""
        while not self.stop_event.is_set():
            self.run_cycle()
            if self.stop_event.wait(self.interval):
                break
        return 0

    def health(self) -> dict:
        """JSON payload for the metrics server's ``/healthz`` endpoint."""
        return {
            "status": "draining" if self.stop_event.is_set() else "ok",
            "cycles": self.cycles,
            "polls": self.polls,
            "tracked_files": self.watcher.tracked,
            "last_dirty": self.last_dirty,
            "last_cycle_seconds": round(self.last_cycle_seconds, 6),
            "includers_invalidated": self.includers_invalidated,
            "interval": self.interval,
        }

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(message, file=self.stream)
