"""The re-audit loop: poll → dirty set → engine → per-cycle JSONL.

One :class:`WatchLoop` owns a :class:`~repro.daemon.watcher.TreeWatcher`
and a long-lived verifier + cache pair.  Each cycle:

1. :meth:`TreeWatcher.poll` classifies changes; nothing dirty → the
   cycle is free (no engine run, no JSONL file).
2. Dirty files go through the ordinary
   :class:`~repro.engine.AuditEngine` — same per-file timeouts, crash
   isolation, and content-addressed caching as ``repro audit``.  With a
   :class:`~repro.engine.HotResultCache` the unchanged 99% of a tree
   never even touches the disk cache after the first cycle.
3. The cycle's JSONL stream merges the fresh outcomes with the last
   known record of every unchanged file (deleted files drop out), so
   ``repro report --diff cycle-A.jsonl cycle-B.jsonl`` between *any* two
   cycles shows exactly the verdict movement in between.

Graceful shutdown: ``stop_event`` doubles as the engine's
``drain_event`` — a SIGINT/SIGTERM mid-cycle lets in-flight files
finish, marks undispatched ones ``skipped``, and the cycle trailer
carries ``interrupted: true``.  Caches need no explicit flush (both the
result cache and the SAT cache write through on every put).
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.daemon.watcher import TreeWatcher
from repro.engine import AuditEngine, AuditTask, EngineConfig, EngineResult, JsonlSink
from repro.engine.cache import ResultCache
from repro.obs import MetricsRegistry

__all__ = ["CycleResult", "WatchLoop"]


@dataclass
class CycleResult:
    """What one non-idle cycle did."""

    number: int
    dirty: list[str]
    deleted: list[str]
    result: EngineResult
    #: The cycle's JSONL stream (None when no out_dir is configured).
    stream_path: Path | None
    interrupted: bool


class WatchLoop:
    """Re-audit a tree forever (or cycle by cycle, under a test driver)."""

    def __init__(
        self,
        root: str | Path,
        websari,
        *,
        cache: ResultCache | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        start_method: str | None = None,
        interval: float = 2.0,
        debounce: float = 0.5,
        out_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
        stop_event: threading.Event | None = None,
        clock=time.time,
        pattern: str = "*.php",
        quiet: bool = True,
        stream=None,
    ) -> None:
        self.watcher = TreeWatcher(root, pattern=pattern, debounce=debounce, clock=clock)
        self.websari = websari
        self.cache = cache
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.start_method = start_method
        self.interval = interval
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.metrics = metrics
        self.stop_event = stop_event if stop_event is not None else threading.Event()
        self.quiet = quiet
        self.stream = stream if stream is not None else sys.stderr
        #: Completed (non-idle) cycles; cycle JSONL files are numbered by it.
        self.cycles = 0
        #: Total polls, idle ones included.
        self.polls = 0
        self.last_dirty = 0
        self.last_cycle_seconds = 0.0
        #: Last known JSON record per live path (feeds every cycle stream).
        self._records: dict[str, dict] = {}

    # -- one cycle ----------------------------------------------------------

    def run_cycle(self) -> CycleResult | None:
        """Poll once; audit and emit a stream if anything changed.

        Returns None for an idle poll.  Drives everything through
        injectable clocks, so tests step cycles without real sleeps.
        """
        self.polls += 1
        delta = self.watcher.poll()
        if self.metrics is not None:
            self.metrics.counter(
                "repro_watch_polls_total", "tree polls by outcome"
            ).inc(outcome="dirty" if delta else "idle")
            self.metrics.gauge(
                "repro_watch_tracked_files", "files in the current snapshot"
            ).set(self.watcher.tracked)
        if not delta:
            return None

        for path in delta.gone:
            self._records.pop(path, None)
        dirty = delta.dirty
        tasks: list[AuditTask] = []
        for path in dirty:
            try:
                source = Path(path).read_text()
            except OSError as exc:
                # Raced away between poll and read; it will be reported
                # deleted next poll.  Drop any stale record now.
                self._records.pop(path, None)
                self._say(f"watch: {path}: {exc} (skipping this cycle)")
                continue
            tasks.append(AuditTask(index=len(tasks), filename=path, source=source))

        self.cycles += 1
        # The engine writes into a fresh per-cycle registry that is folded
        # into the long-lived daemon registry afterwards — the exact
        # snapshot/merge path fleet aggregation uses, so daemon metrics and
        # coordinator metrics accumulate identically.  Watch-level
        # counters/gauges below still hit self.metrics directly (live).
        cycle_metrics = MetricsRegistry() if self.metrics is not None else None
        config = EngineConfig(
            jobs=self.jobs,
            timeout=self.timeout,
            start_method=self.start_method,
            cache=self.cache,
            metrics=cycle_metrics,
            drain_event=self.stop_event,
        )
        result = AuditEngine(websari=self.websari, config=config).run(tasks)
        if self.metrics is not None and cycle_metrics is not None:
            self.metrics.merge_snapshot(cycle_metrics.snapshot())
        skipped = [o for o in result.outcomes if o.status == "skipped"]
        interrupted = bool(skipped) or self.stop_event.is_set()
        for outcome in result.outcomes:
            if outcome.status == "skipped":
                continue  # keep the last known record, if any
            self._records[outcome.filename] = outcome.to_record()

        stream_path = self._write_stream(result, interrupted)
        self.last_dirty = len(dirty)
        self.last_cycle_seconds = result.stats.wall_seconds
        if self.metrics is not None:
            self.metrics.counter(
                "repro_watch_cycles_total", "completed re-audit cycles"
            ).inc()
            self.metrics.gauge(
                "repro_watch_dirty_files", "dirty files in the last cycle"
            ).set(len(dirty))
            self.metrics.gauge(
                "repro_watch_cycle_seconds", "engine wall seconds of the last cycle"
            ).set(result.stats.wall_seconds)
        stats = result.stats
        self._say(
            f"watch: cycle {self.cycles}: {len(dirty)} dirty, "
            f"{len(delta.gone)} gone; {stats.safe} safe, "
            f"{stats.vulnerable} vulnerable, {stats.failed} failed "
            f"({stats.cache_hits} cached)"
            + (" [interrupted]" if interrupted else "")
        )
        return CycleResult(
            number=self.cycles,
            dirty=dirty,
            deleted=delta.gone,
            result=result,
            stream_path=stream_path,
            interrupted=interrupted,
        )

    def _write_stream(self, result: EngineResult, interrupted: bool) -> Path | None:
        """One merged JSONL per cycle: fresh records for dirty files plus
        carried-over records for everything unchanged, then the engine
        trailer — the same shape ``repro audit --jsonl`` writes, so
        ``repro report`` (and ``--diff``) consume cycles directly."""
        if self.out_dir is None:
            return None
        path = self.out_dir / f"cycle-{self.cycles:06d}.jsonl"
        with JsonlSink(path) as sink:
            for filename in sorted(self._records):
                sink.write_file(self._records[filename])
            trailer = result.stats.as_dict()
            trailer["cycle"] = self.cycles
            trailer["watched_files"] = self.watcher.tracked
            if interrupted:
                trailer["interrupted"] = True
            sink.write_stats(trailer)
        return path

    # -- the daemon ---------------------------------------------------------

    def run_forever(self) -> int:
        """Cycle until ``stop_event`` is set; always exits 0 on a drain."""
        while not self.stop_event.is_set():
            self.run_cycle()
            if self.stop_event.wait(self.interval):
                break
        return 0

    def health(self) -> dict:
        """JSON payload for the metrics server's ``/healthz`` endpoint."""
        return {
            "status": "draining" if self.stop_event.is_set() else "ok",
            "cycles": self.cycles,
            "polls": self.polls,
            "tracked_files": self.watcher.tracked,
            "last_dirty": self.last_dirty,
            "last_cycle_seconds": round(self.last_cycle_seconds, 6),
            "interval": self.interval,
        }

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(message, file=self.stream)
