"""Pull-based metrics endpoint for long-running watches.

A thin subclass of the shared :class:`~repro.service.httpbase.HttpEndpoint`
base (stdlib ``ThreadingHTTPServer`` on a daemon thread, ephemeral-port
fallback — the same machinery the ``repro serve`` coordinator runs on),
serving:

* ``GET /metrics`` (and ``/``) — the live
  :meth:`~repro.obs.MetricsRegistry.render` Prometheus text snapshot;
* ``GET /healthz`` — a JSON liveness payload from an injectable callable
  (the watch loop reports cycle counters and drain state through it).

Scrapes are safe during an active audit cycle: the registry's sample
renderers snapshot their state under the registry lock, so a scrape
concurrent with worker-outcome recording never sees a mid-mutation dict.
If the requested port is taken, the server falls back to an ephemeral
port (``port == 0``) and exposes the actual one via :attr:`port` — a
daemon that outlives a stale predecessor should come up scrapeable, not
crash.
"""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_QUANTILES, PROMETHEUS_CONTENT_TYPE
from repro.service.httpbase import HttpEndpoint, parse_bind

__all__ = ["MetricsServer", "parse_bind", "PROMETHEUS_CONTENT_TYPE"]


class MetricsServer(HttpEndpoint):
    """Serve a registry over HTTP from a daemon thread."""

    thread_name = "repro-metrics-server"

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        health=None,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ) -> None:
        self.registry = registry
        self.health = health if health is not None else (lambda: {"status": "ok"})
        self.quantiles = tuple(quantiles)
        super().__init__(host, port)

    def handle(self, method: str, path: str, body: bytes) -> tuple[int, str, bytes]:
        if method != "GET":
            return self.json_reply({"error": "method not allowed"}, status=405)
        if path in ("/metrics", "/"):
            payload = self.registry.render(quantiles=self.quantiles).encode()
            return 200, PROMETHEUS_CONTENT_TYPE, payload
        if path == "/healthz":
            payload = (json.dumps(self.health(), sort_keys=True) + "\n").encode()
            return 200, "application/json", payload
        return 404, "text/plain; charset=utf-8", b"not found\n"
