"""Pull-based metrics endpoint for long-running watches.

A stdlib-only HTTP server (``http.server.ThreadingHTTPServer``) on a
daemon thread, serving:

* ``GET /metrics`` (and ``/``) — the live
  :meth:`~repro.obs.MetricsRegistry.render` Prometheus text snapshot;
* ``GET /healthz`` — a JSON liveness payload from an injectable callable
  (the watch loop reports cycle counters and drain state through it).

Scrapes are safe during an active audit cycle: the registry's sample
renderers snapshot their state under the registry lock, so a scrape
concurrent with worker-outcome recording never sees a mid-mutation dict.
If the requested port is taken, the server falls back to an ephemeral
port (``port == 0``) and exposes the actual one via :attr:`port` — a
daemon that outlives a stale predecessor should come up scrapeable, not
crash.
"""

from __future__ import annotations

import errno
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import MetricsRegistry

__all__ = ["MetricsServer", "parse_bind"]


def parse_bind(spec: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """Parse ``PORT``, ``:PORT``, or ``HOST:PORT`` into ``(host, port)``.

    An empty host binds loopback, not all interfaces: an audit daemon's
    metrics should not be network-visible unless asked for explicitly.
    """
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        port_text = spec
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid metrics address {spec!r} (want [HOST]:PORT)")
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid metrics port {port} (want 0-65535)")
    return host or default_host, port


class MetricsServer:
    """Serve a registry over HTTP from a daemon thread.

    Usable as a context manager; :meth:`close` shuts the listener down
    cleanly (pending requests finish, the socket is released).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        health=None,
    ) -> None:
        self.registry = registry
        self.health = health if health is not None else (lambda: {"status": "ok"})
        self.requested_port = port
        #: True when ``port`` was taken and an ephemeral one was bound.
        self.fell_back = False
        handler = self._make_handler()
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            if port == 0 or exc.errno not in (errno.EADDRINUSE, errno.EACCES):
                raise
            self._server = ThreadingHTTPServer((host, 0), handler)
            self.fell_back = True
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        # shutdown() blocks on serve_forever()'s exit handshake, which
        # never happens for a server that was constructed but not
        # started — skip it then (server_close alone frees the socket).
        if self._thread.is_alive():
            self._server.shutdown()
            self._thread.join(timeout=5)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _make_handler(self):
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = outer.registry.render().encode()
                    self._reply(200, "text/plain; version=0.0.4; charset=utf-8", body)
                elif path == "/healthz":
                    body = (json.dumps(outer.health(), sort_keys=True) + "\n").encode()
                    self._reply(200, "application/json", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")

            def _reply(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                try:
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # scraper went away mid-response

            def log_message(self, format: str, *args) -> None:  # noqa: A002
                pass  # scrape traffic must not spam the daemon's stderr

        return Handler
