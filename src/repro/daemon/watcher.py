"""mtime-polling snapshot differ: what changed since the last poll?

No inotify/kqueue dependency — a poll walks the tree and stats every
matching file, which is portable and cheap at the corpus sizes the paper
targets (stat is ~1 µs; 10k files poll in ~10 ms).  Each file is reduced
to a :class:`FileStamp` (mtime_ns, size, inode); two consecutive
snapshots diff into a :class:`TreeDelta`:

* **created / deleted** — path present in only one snapshot;
* **modified** — same path, different stamp (covers truncate-and-rewrite,
  in-place edit, and delete-then-recreate between polls, which changes
  the inode);
* **moved** — a deleted path and a created path with the *same* stamp
  (inode + size + mtime) pair up as a rename.

Robustness rules, each covered by ``tests/test_daemon_watch.py``:

* A file whose mtime falls inside the ``debounce`` window (an editor or
  ``rsync`` may still be writing it) is deferred: the previous stamp is
  kept, so the change surfaces on a later poll once the file is quiet.
* Files that cannot be stat'ed or read (permission loss, dangling
  symlink) drop out of the snapshot — i.e. they are reported deleted
  rather than fed to the engine where the read would fail.
* Directory symlink loops are broken by a visited ``(st_dev, st_ino)``
  set, so a self-referential tree terminates in one pass.
"""

from __future__ import annotations

import fnmatch
import os
import stat as stat_module
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FileStamp", "TreeDelta", "TreeWatcher", "diff_snapshots"]


@dataclass(frozen=True)
class FileStamp:
    """Identity of one file's content at one instant (no content read)."""

    mtime_ns: int
    size: int
    inode: int


@dataclass
class TreeDelta:
    """Classification of one poll's changes against the previous poll."""

    created: list[str] = field(default_factory=list)
    modified: list[str] = field(default_factory=list)
    deleted: list[str] = field(default_factory=list)
    #: ``(old_path, new_path)`` pairs detected as renames.
    moved: list[tuple[str, str]] = field(default_factory=list)

    @property
    def dirty(self) -> list[str]:
        """Paths needing (re-)audit this cycle, sorted and deduplicated.

        A moved file is dirty under its new path: verdicts are content
        functions but records embed the filename, so the cache key (which
        hashes the filename) misses and the file is re-verified once.
        """
        paths = set(self.created) | set(self.modified)
        paths.update(new for _, new in self.moved)
        return sorted(paths)

    @property
    def gone(self) -> list[str]:
        """Paths that no longer exist under their old name."""
        paths = set(self.deleted)
        paths.update(old for old, _ in self.moved)
        return sorted(paths)

    def __bool__(self) -> bool:
        return bool(self.created or self.modified or self.deleted or self.moved)


def diff_snapshots(
    old: dict[str, FileStamp], new: dict[str, FileStamp]
) -> TreeDelta:
    """Classify the transition between two snapshots (move-aware)."""
    delta = TreeDelta()
    created = sorted(set(new) - set(old))
    deleted = sorted(set(old) - set(new))
    for path in sorted(set(old) & set(new)):
        if old[path] != new[path]:
            delta.modified.append(path)
    # Rename detection: an identical stamp disappearing at one path and
    # appearing at another is overwhelmingly a move (same inode, size,
    # and mtime).  Ambiguous stamps (hard links) pair greedily in sorted
    # order; leftovers stay plain created/deleted.
    by_stamp: dict[FileStamp, list[str]] = {}
    for path in deleted:
        by_stamp.setdefault(old[path], []).append(path)
    for path in created:
        candidates = by_stamp.get(new[path])
        if candidates:
            delta.moved.append((candidates.pop(0), path))
        else:
            delta.created.append(path)
    matched = {old_path for old_path, _ in delta.moved}
    delta.deleted.extend(p for p in deleted if p not in matched)
    return delta


class TreeWatcher:
    """Stateful poller: each :meth:`poll` diffs against the last one.

    ``clock`` is injectable (defaults to ``time.time``) so tests drive
    the debounce window deterministically with ``os.utime``-controlled
    mtimes and a fake clock — no real sleeps anywhere in the test suite.
    """

    def __init__(
        self,
        root: str | Path,
        pattern: str = "*.php",
        debounce: float = 0.0,
        clock=time.time,
    ) -> None:
        self.root = Path(root)
        self.pattern = pattern
        self.debounce = debounce
        self._clock = clock
        self._snapshot: dict[str, FileStamp] = {}

    @property
    def tracked(self) -> int:
        """Files in the last committed snapshot."""
        return len(self._snapshot)

    def paths(self) -> list[str]:
        """Paths in the last committed snapshot, sorted — the watch
        loop's project universe when it builds include closures."""
        return sorted(self._snapshot)

    # -- snapshotting -------------------------------------------------------

    def snapshot(self) -> dict[str, FileStamp]:
        """Stat every matching file under the root right now."""
        stamps: dict[str, FileStamp] = {}
        visited: set[tuple[int, int]] = set()
        self._walk(self.root, stamps, visited)
        return stamps

    def _walk(
        self,
        directory: Path,
        stamps: dict[str, FileStamp],
        visited: set[tuple[int, int]],
    ) -> None:
        try:
            dir_stat = os.stat(directory)
        except OSError:
            return  # directory vanished or became unreadable mid-poll
        identity = (dir_stat.st_dev, dir_stat.st_ino)
        if identity in visited:
            return  # symlink loop (or bind-mount alias): already walked
        visited.add(identity)
        try:
            with os.scandir(directory) as it:
                entries = sorted(it, key=lambda e: e.name)
        except OSError:
            return
        for entry in entries:
            path = Path(entry.path)
            try:
                if entry.is_dir(follow_symlinks=True):
                    self._walk(path, stamps, visited)
                    continue
                if not fnmatch.fnmatch(entry.name, self.pattern):
                    continue
                st = entry.stat(follow_symlinks=True)
            except OSError:
                continue  # dangling symlink / stat-permission loss
            if not stat_module.S_ISREG(st.st_mode):
                continue
            if not os.access(path, os.R_OK):
                continue  # unreadable = invisible (surfaces as deleted)
            stamps[str(path)] = FileStamp(st.st_mtime_ns, st.st_size, st.st_ino)

    # -- polling ------------------------------------------------------------

    def poll(self) -> TreeDelta:
        """Snapshot, debounce, diff against (and replace) the baseline."""
        current = self.snapshot()
        if self.debounce > 0:
            cutoff_ns = int((self._clock() - self.debounce) * 1e9)
            committed: dict[str, FileStamp] = {}
            for path, stamp in current.items():
                previous = self._snapshot.get(path)
                if stamp != previous and stamp.mtime_ns > cutoff_ns:
                    # Possibly mid-write: pretend this poll never saw the
                    # change (keep the old stamp; brand-new files stay
                    # invisible) so it lands whole on a later poll.
                    if previous is not None:
                        committed[path] = previous
                    continue
                committed[path] = stamp
            current = committed
        delta = diff_snapshots(self._snapshot, current)
        self._snapshot = current
        return delta
