"""Incremental re-audit daemon (``repro watch``).

The paper's deployment story re-runs WebSSARI per release; this
subsystem closes the loop for live trees: a long-running watcher polls a
directory for changed ``.php`` files and pushes only the dirty set
through the batch-audit engine, so an idle cycle over N files costs N
stat calls and a changed file costs one verification.

* :class:`~repro.daemon.watcher.TreeWatcher` — mtime-polling snapshot
  differ (no inotify dependency): created / modified / deleted / moved
  classification, debounce for in-progress writes, symlink-loop and
  permission-loss tolerance.
* :class:`~repro.daemon.loop.WatchLoop` — the re-audit loop: dirty set →
  ``repro.engine`` scheduler with a process-lifetime-hot
  :class:`~repro.engine.cache.HotResultCache` and the persistent SAT
  query cache, one merged JSONL stream per cycle (``repro report
  --diff`` works between any two cycles), graceful signal drain.
* :class:`~repro.daemon.metrics_server.MetricsServer` — stdlib HTTP
  endpoint on a daemon thread serving the live
  :class:`~repro.obs.MetricsRegistry` in Prometheus text format plus a
  ``/healthz`` JSON probe.

See docs/DAEMON.md for the full operational story.
"""

from repro.daemon.loop import CycleResult, WatchLoop
from repro.daemon.metrics_server import MetricsServer
from repro.daemon.watcher import FileStamp, TreeDelta, TreeWatcher, diff_snapshots

__all__ = [
    "CycleResult",
    "FileStamp",
    "MetricsServer",
    "TreeDelta",
    "TreeWatcher",
    "WatchLoop",
    "diff_snapshots",
]
